"""Tests for netlist serialization and structural validation."""

import pytest

from repro.errors import ValidationError
from repro.netlist.circuit import Circuit
from repro.netlist.parser import parse_netlist
from repro.netlist.validate import validate_circuit
from repro.netlist.writer import element_to_line, write_netlist


class TestWriter:
    def test_roundtrip_preserves_values(self, tmp_path):
        original = parse_netlist("""
        Vin in 0 ac 1
        R1 in out 1k
        C1 out 0 1n
        G1 out 0 in 0 2m
        """)
        text = write_netlist(original)
        reparsed = parse_netlist(text)
        assert len(reparsed) == len(original)
        assert reparsed["R1"].value == pytest.approx(1e3)
        assert reparsed["C1"].value == pytest.approx(1e-9)
        assert reparsed["G1"].gm == pytest.approx(2e-3)

    def test_write_to_file(self, tmp_path):
        circuit = Circuit("f")
        circuit.add_resistor("R1", "a", "0", 1e3)
        path = tmp_path / "out.sp"
        text = write_netlist(circuit, path)
        assert path.read_text() == text
        assert ".end" in text

    def test_conductor_written_as_resistor(self):
        circuit = Circuit("g")
        circuit.add_conductor("gds", "a", "0", 1e-4)
        line = element_to_line(circuit["gds"])
        assert line.split()[-1] == "10k"

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            element_to_line(object())

    def test_controlled_sources_serialized(self):
        circuit = Circuit("cs")
        circuit.add_vcvs("E1", "a", "0", "b", "0", 10.0)
        circuit.add_cccs("F1", "a", "0", "V1", 2.0)
        circuit.add_ccvs("H1", "b", "0", "V1", 100.0)
        circuit.add_voltage_source("V1", "b", "0", 0.0)
        circuit.add_resistor("R1", "a", "b", 1.0)
        text = write_netlist(circuit)
        assert "E1 a 0 b 0 10" in text
        assert "F1 a 0 V1 2" in text


class TestValidation:
    def test_valid_circuit_passes(self, simple_rc):
        circuit, __ = simple_rc
        report = validate_circuit(circuit)
        assert report.ok
        assert report.errors == []

    def test_empty_circuit_fails(self):
        report = validate_circuit(Circuit("empty"), raise_on_error=False)
        assert not report.ok
        with pytest.raises(ValidationError):
            validate_circuit(Circuit("empty"))

    def test_unreachable_node_detected(self):
        circuit = Circuit("island")
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_resistor("R2", "x", "y", 1e3)  # floating island
        report = validate_circuit(circuit, raise_on_error=False)
        assert not report.ok
        assert any("no conducting path" in message for message in report.errors)

    def test_dangling_node_warning(self):
        circuit = Circuit("dangling")
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_capacitor("C1", "a", "b", 1e-12)  # b touched once
        report = validate_circuit(circuit, raise_on_error=False)
        assert report.ok
        assert any("single element terminal" in message
                   for message in report.warnings)

    def test_missing_controlled_source_reference(self):
        circuit = Circuit("ctl")
        circuit.add_cccs("F1", "a", "0", "Vmissing", 2.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        report = validate_circuit(circuit, raise_on_error=False)
        assert not report.ok
        assert any("controlling source" in message for message in report.errors)

    def test_zero_sources_warning(self):
        circuit = Circuit("zero")
        circuit.add_voltage_source("vin", "a", "0", 0.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        report = validate_circuit(circuit, raise_on_error=False)
        assert report.ok
        assert any("zero AC value" in message for message in report.warnings)

    def test_library_circuits_validate(self, ota_circuit, miller_circuit,
                                        ua741_circuit):
        for circuit, __ in (ota_circuit, miller_circuit, ua741_circuit):
            assert validate_circuit(circuit).ok
