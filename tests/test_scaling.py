"""Post-layout-scale dispatch behavior: cutoff, crossover and streaming.

Companions to ``benchmarks/bench_scaling.py`` that must hold on every run
(no reduced mode): the ``REPRO_DENSE_CUTOFF`` override actually flips the
dense↔sparse dispatch and is snapshotted per engine construction, the
sparse path beats the dense path in wall-clock at n ≥ 512 on the RC mesh,
and the streaming parameter-sweep iterator reproduces the materialized
solve block for block.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import build_rc_mesh
from repro.engine.sweep import SweepEngine
from repro.mna.builder import build_mna_system
from repro.netlist.elements import Capacitor, Resistor


@pytest.fixture(scope="module")
def small_mesh():
    circuit, spec = build_rc_mesh(8)          # n = 66
    return build_mna_system(circuit), spec


class TestDenseCutoffDispatch:
    """REPRO_DENSE_CUTOFF flips dispatch, snapshotted at construction."""

    def test_env_override_flips_dispatch(self, small_mesh, monkeypatch):
        system, __ = small_mesh
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "100000")
        assert SweepEngine(system).is_dense
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "10")
        assert not SweepEngine(system).is_dense

    def test_cutoff_snapshot_at_construction(self, small_mesh, monkeypatch):
        system, __ = small_mesh
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "100000")
        engine = SweepEngine(system)
        assert engine.dense_cutoff == 100000
        # Changing the environment later must not flip a live engine...
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "10")
        assert engine.is_dense
        # ...while a freshly constructed engine reads the new value.
        assert not SweepEngine(system).is_dense

    def test_explicit_method_ignores_cutoff(self, small_mesh, monkeypatch):
        system, __ = small_mesh
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "10")
        assert SweepEngine(system, method="dense").is_dense
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "100000")
        assert not SweepEngine(system, method="sparse").is_dense

    def test_both_dispatches_solve_identical_grid(self, small_mesh,
                                                  monkeypatch):
        system, __ = small_mesh
        s = 2j * np.pi * np.logspace(2, 8, 5)
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "100000")
        dense = SweepEngine(system).solve_sweep(s, system.rhs)
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "10")
        sparse = SweepEngine(system).solve_sweep(s, system.rhs)
        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        assert float(np.max(np.abs(dense - sparse) / norms)) <= 1e-10


class TestScalingCrossover:
    """The ordered sparse path wins in wall-clock at post-layout sizes."""

    def test_sparse_beats_dense_at_512(self):
        circuit, __ = build_rc_mesh(16, 32)   # n = 514
        system = build_mna_system(circuit)
        assert system.dimension >= 512
        s = 2j * np.pi * np.logspace(2.0, 8.0, 3)

        start = time.perf_counter()
        dense = SweepEngine(system, method="dense").solve_sweep(
            s, system.rhs)
        dense_seconds = time.perf_counter() - start

        start = time.perf_counter()
        sparse = SweepEngine(system, method="sparse").solve_sweep(
            s, system.rhs)
        sparse_seconds = time.perf_counter() - start

        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        assert float(np.max(np.abs(dense - sparse) / norms)) <= 1e-8
        # The bench measures ~10x here; even a heavily loaded CI machine
        # has to show the crossover itself.
        assert sparse_seconds < dense_seconds, (sparse_seconds,
                                                dense_seconds)


class TestScalingCurveRunner:
    """The bench's experiment runner holds its invariants at tiny sizes."""

    def test_runner_invariants(self):
        from repro.reporting.experiments import run_scaling_curve

        result = run_scaling_curve(num_frequencies=3, targets=(20, 40))
        assert len(result.points) == 6        # 3 families x 2 targets
        assert result.max_deviation <= 1e-8, result.describe()
        for point in result.points:
            assert point.ordered_fill <= point.natural_fill, point.describe()
            assert point.speedup > 0.0
        for family in ("mesh", "tree", "bus"):
            curve = result.family_points(family)
            assert [p.family for p in curve] == [family] * 2
            assert curve[0].dimension <= curve[1].dimension
        mesh = result.family_points("mesh")
        crossover = result.crossover_dimension("mesh")
        assert crossover is None or crossover in {p.dimension for p in mesh}
        assert "crossover" in result.describe()


class TestStreamingParamSweep:
    """iter_param_sweep streams what solve_param_sweep materializes."""

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_blocks_match_materialized(self, method):
        circuit, __ = build_rc_mesh(5)        # n = 27
        system = build_mna_system(circuit)
        names = [element.name for element in circuit
                 if isinstance(element, (Resistor, Capacitor))][:5]
        rng = np.random.default_rng(42)
        scales = 1.0 + 0.1 * rng.standard_normal((6, len(names)))
        s = 2j * np.pi * np.logspace(2, 8, 4)

        engine = SweepEngine(system, method=method)
        stacked = engine.solve_param_sweep(s, names, scales, system.rhs)
        blocks = list(SweepEngine(system, method=method).iter_param_sweep(
            s, names, scales, system.rhs))
        assert [sample for sample, __ in blocks] == list(range(len(scales)))
        for sample, block in blocks:
            assert block.shape == (len(s), system.dimension)
            assert np.array_equal(block, stacked[sample]), (method, sample)

    def test_dense_frequency_axis_chunks(self, monkeypatch):
        # Force the frequency-chunked dense branch (len(s) > budget) and
        # check it still reproduces the unchunked block bit-for-bit.
        import repro.engine.sweep as sweep_module

        circuit, __ = build_rc_mesh(4)        # n = 18
        system = build_mna_system(circuit)
        names = [element.name for element in circuit
                 if isinstance(element, (Resistor, Capacitor))][:3]
        scales = np.array([[1.0, 1.1, 0.9], [0.95, 1.0, 1.05]])
        s = 2j * np.pi * np.logspace(2, 8, 7)

        reference = SweepEngine(system, method="dense").solve_param_sweep(
            s, names, scales, system.rhs)
        monkeypatch.setattr(sweep_module, "sweep_chunk_size", lambda n: 3)
        chunked = list(SweepEngine(system, method="dense").iter_param_sweep(
            s, names, scales, system.rhs))
        for sample, block in chunked:
            assert np.array_equal(block, reference[sample]), sample
