"""Tests for the circuit library builders."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.circuits.cascode import build_cascode_amplifier
from repro.circuits.filters import build_sallen_key_lowpass, build_tow_thomas_biquad
from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.ota import build_positive_feedback_ota
from repro.circuits.rc_ladder import build_rc_ladder, rc_ladder_denominator_coefficients
from repro.circuits.ua741 import build_ua741
from repro.errors import NetlistError
from repro.netlist.transform import to_admittance_form
from repro.netlist.validate import validate_circuit
from repro.nodal.admittance import build_nodal_formulation
from repro.nodal.sampler import NetworkFunctionSampler


class TestRcLadder:
    def test_structure(self):
        circuit, spec = build_rc_ladder(4)
        assert len(circuit.elements_of_type(type(circuit["R1"]))) == 4
        assert spec.output == "n4"
        assert validate_circuit(circuit).ok

    def test_scalar_and_list_values(self):
        circuit, __ = build_rc_ladder(3, resistances=2e3, capacitances=[1e-9] * 3)
        assert circuit["R2"].value == pytest.approx(2e3)

    def test_invalid_arguments(self):
        with pytest.raises(NetlistError):
            build_rc_ladder(0)
        with pytest.raises(NetlistError):
            build_rc_ladder(3, resistances=[1e3, 1e3])

    def test_denominator_recursion_against_known_forms(self):
        # 1 stage: 1 + sRC
        assert rc_ladder_denominator_coefficients([1e3], [1e-9]) == pytest.approx(
            [1.0, 1e-6])
        # 2 equal stages: 1 + 3 sRC + (sRC)^2
        coefficients = rc_ladder_denominator_coefficients([1e3, 1e3],
                                                          [1e-9, 1e-9])
        assert coefficients == pytest.approx([1.0, 3e-6, 1e-12])

    def test_recursion_matches_ac_simulation(self):
        resistances = [1.5e3, 3.3e3, 820.0]
        capacitances = [2.2e-9, 150e-12, 680e-12]
        circuit, spec = build_rc_ladder(3, resistances, capacitances)
        coefficients = rc_ladder_denominator_coefficients(resistances,
                                                          capacitances)
        analysis = ACAnalysis(circuit, spec)
        for frequency in (1e3, 1e5, 1e7):
            s = 2j * math.pi * frequency
            expected = 1.0 / sum(c * s**i for i, c in enumerate(coefficients))
            assert analysis.value_at(s) == pytest.approx(expected, rel=1e-9)

    def test_mismatched_lists_rejected_in_recursion(self):
        with pytest.raises(NetlistError):
            rc_ladder_denominator_coefficients([1e3], [1e-9, 1e-9])


class TestOta:
    def test_degree_estimate_is_nine(self, ota_circuit):
        circuit, spec = ota_circuit
        formulation = build_nodal_formulation(to_admittance_form(circuit), spec)
        assert formulation.dimension == 9
        assert formulation.max_polynomial_degree() == 9

    def test_differential_gain_positive_feedback_boost(self):
        """Cross-coupled load must raise the DC gain vs the same OTA without it."""
        boosted, spec = build_positive_feedback_ota(feedback_ratio=0.9)
        weak, __ = build_positive_feedback_ota(feedback_ratio=0.1)
        s = 2j * math.pi * 10.0
        gain_boosted = abs(NetworkFunctionSampler(
            to_admittance_form(boosted), spec).transfer_value(s))
        gain_weak = abs(NetworkFunctionSampler(
            to_admittance_form(weak), spec).transfer_value(s))
        assert gain_boosted > gain_weak

    def test_consecutive_coefficient_spread(self, ota_circuit):
        """The 10^6–10^12 per-power spread that breaks unscaled interpolation."""
        from repro.interpolation.reference import generate_reference

        circuit, spec = ota_circuit
        reference = generate_reference(circuit, spec)
        logs = [c.log10() for c in reference.coefficients("denominator")
                if not c.is_zero()]
        ratios = [logs[i] - logs[i + 1] for i in range(len(logs) - 1)]
        assert max(ratios) > 5.0


class TestUa741:
    def test_size_and_validation(self, ua741_circuit):
        circuit, spec = ua741_circuit
        assert len(circuit) > 100
        assert len(circuit.nodes) > 35
        assert validate_circuit(circuit).ok

    def test_degree_bound_is_large(self, ua741_circuit):
        circuit, spec = ua741_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        assert sampler.max_polynomial_degree() >= 30

    def test_dc_gain_and_bandwidth_are_plausible(self, ua741_circuit):
        circuit, spec = ua741_circuit
        analysis = ACAnalysis(circuit, spec)
        dc_gain = abs(analysis.value_at(2j * math.pi * 0.1))
        assert dc_gain > 1e4            # > 80 dB open-loop gain
        unity = abs(analysis.value_at(2j * math.pi * 1e6))
        assert unity < 10.0             # gain has rolled off near 1 MHz

    def test_load_override(self):
        circuit, __ = build_ua741(load_resistance=10e3, load_capacitance=50e-12)
        assert circuit["RL"].value == pytest.approx(10e3)
        assert circuit["CL"].value == pytest.approx(50e-12)


class TestOtherCircuits:
    def test_miller_ota_gain_and_pole(self, miller_circuit):
        circuit, spec = miller_circuit
        analysis = ACAnalysis(circuit, spec)
        dc_gain = abs(analysis.value_at(2j * math.pi * 1.0))
        high = abs(analysis.value_at(2j * math.pi * 1e9))
        assert dc_gain > 100.0
        assert high < dc_gain / 10.0

    def test_cascode_gain(self):
        circuit, spec = build_cascode_amplifier()
        analysis = ACAnalysis(circuit, spec)
        assert abs(analysis.value_at(2j * math.pi * 10.0)) > 100.0

    def test_sallen_key_is_second_order_lowpass(self):
        circuit, spec = build_sallen_key_lowpass()
        analysis = ACAnalysis(circuit, spec)
        dc = abs(analysis.value_at(2j * math.pi * 1.0))
        mid = abs(analysis.value_at(2j * math.pi * 10e3))
        high = abs(analysis.value_at(2j * math.pi * 1e6))
        assert dc == pytest.approx(1.0, rel=0.05)
        assert high < mid < dc
        # Second-order rolloff: ~40 dB/decade in the decade above the corner
        # (far above that the finite-gm buffer's feedthrough floor takes over).
        next_decade = abs(analysis.value_at(2j * math.pi * 100e3))
        assert 20 * math.log10(mid / next_decade) > 30.0

    def test_tow_thomas_lowpass_shape(self):
        circuit, spec = build_tow_thomas_biquad()
        analysis = ACAnalysis(circuit, spec)
        dc = abs(analysis.value_at(2j * math.pi * 1.0))
        high = abs(analysis.value_at(2j * math.pi * 1e6))
        assert dc > 10.0 * high

    def test_all_builders_are_admittance_compatible(self):
        builders = [build_positive_feedback_ota, build_miller_ota,
                    build_cascode_amplifier, build_sallen_key_lowpass,
                    build_tow_thomas_biquad, build_ua741]
        for builder in builders:
            circuit, spec = builder()
            admittance = to_admittance_form(circuit)
            formulation = build_nodal_formulation(admittance, spec)
            assert formulation.dimension >= 1
