"""Fault-injection harness for the resilient solve layer.

Chaos wrappers that corrupt the ensemble engine's inputs at precisely chosen
samples — without touching library code — so tests can assert the two
resilience properties of ISSUE 7:

* a **transient** fault (a kernel that fails once and then works) recovers
  **bit-identically** to a fault-free run;
* a **permanent** fault (a sample whose stamped matrix is singular or
  non-finite at every frequency) degrades to an **accurate quarantine
  report** naming exactly the injected samples, with every other sample's
  response untouched to the last bit.

The injection points are module-level names the engine looks up at call
time, patched inside context managers:

* :func:`ensemble_faults` replaces
  ``repro.montecarlo.engine.ValueProgram`` with a factory returning a
  :class:`ChaosProgram` — a transparent proxy whose :meth:`dense_parts`
  corrupts the chosen samples' stamped ``(G, C)`` matrices;
* :func:`failing_kernel` replaces
  ``repro.engine.resilience.batched_solve`` with a wrapper that raises
  :class:`~repro.errors.SingularMatrixError` on its N-th call and passes
  every other call through untouched;
* :func:`parallel_faults` installs a **process-level** fault plan for the
  supervised multiprocess driver — SIGKILL a worker mid-shard, hang it past
  the heartbeat timeout, or crash the attempt — shipped to workers inside
  the pickled payload, so it works under fork and spawn alike.
"""

from __future__ import annotations

import contextlib

import numpy as np

import repro.engine.resilience as resilience
import repro.montecarlo.engine as ensemble_engine
import repro.montecarlo.parallel as parallel_engine
from repro.errors import SingularMatrixError

#: Supported per-sample fault kinds.
FAULT_KINDS = ("singular", "nan", "near_singular")


def inject_dense_fault(constant, dynamic, kind, epsilon=1e-14):
    """Corrupt one sample's stamped ``(G, C)`` parts in place.

    ``singular`` duplicates row 0 into row 1 of *both* parts, so
    ``G + s·C`` has two identical rows — exactly singular at every
    frequency.  ``nan`` poisons one conductance entry.  ``near_singular``
    makes row 1 a ``(1 + ε)`` multiple of row 0: solvable, but with a
    condition number of order ``1/ε``.
    """
    if kind == "singular":
        constant[1, :] = constant[0, :]
        dynamic[1, :] = dynamic[0, :]
    elif kind == "nan":
        constant[0, 0] = np.nan
    elif kind == "near_singular":
        constant[1, :] = constant[0, :] * (1.0 + epsilon)
        dynamic[1, :] = dynamic[0, :] * (1.0 + epsilon)
    else:
        raise ValueError(f"unknown fault kind {kind!r}; "
                         f"expected one of {FAULT_KINDS}")


class ChaosProgram:
    """Transparent :class:`~repro.montecarlo.program.ValueProgram` proxy
    that corrupts chosen samples' dense stamped parts.

    ``faults`` maps sample index → fault kind (one of :data:`FAULT_KINDS`).
    Every other attribute — ``dimension``, ``sparse_values``, … — is
    forwarded to the wrapped program untouched, so the engine cannot tell
    the difference until it looks at the corrupted matrices.

    With ``ensemble_values`` (the full ``(M, E)`` value matrix of the run)
    the fault indices are **global**: each row of the slice this program is
    handed is mapped back to its ensemble index by exact byte match, so a
    sharded run — checkpointed or multiprocess, where each shard sees only
    its own rows — corrupts exactly the same samples as an unsharded one.
    (Values are drawn up front and shipped bit-exactly through shared
    memory, so byte-identity is guaranteed.)  Without it, indices are
    positions within whatever slice ``dense_parts`` receives.
    """

    def __init__(self, program, faults, epsilon=1e-14,
                 ensemble_values=None):
        self._program = program
        self._faults = dict(faults)
        self._epsilon = epsilon
        self._row_index = None
        if ensemble_values is not None:
            rows = np.ascontiguousarray(np.asarray(ensemble_values,
                                                   dtype=float))
            self._row_index = {rows[i].tobytes(): i
                               for i in range(rows.shape[0])}

    def __getattr__(self, name):
        return getattr(self._program, name)

    def _global_index(self, values, position):
        if self._row_index is None:
            return position
        row = np.ascontiguousarray(values[position]).tobytes()
        return self._row_index.get(row, -1)

    def dense_parts(self, values):
        constant, dynamic = self._program.dense_parts(values)
        constant = constant.copy()
        dynamic = dynamic.copy()
        for position in range(constant.shape[0]):
            kind = self._faults.get(self._global_index(values, position))
            if kind is not None:
                inject_dense_fault(constant[position], dynamic[position],
                                   kind, self._epsilon)
        return constant, dynamic


@contextlib.contextmanager
def ensemble_faults(faults, epsilon=1e-14, ensemble_values=None):
    """Corrupt chosen ensemble samples inside the ``with`` block.

    Patches the ``ValueProgram`` name the ensemble engine instantiates, so
    any :func:`~repro.montecarlo.engine.ensemble_sweep` call in the block
    sees a :class:`ChaosProgram` with the given ``faults`` mapping.  Pass
    ``ensemble_values`` to make the indices global across sharded runs
    (see :class:`ChaosProgram`).  The patch is inherited by worker
    processes forked inside the block, so it also covers multiprocess
    ensembles under the default Linux start method.
    """
    original = ensemble_engine.ValueProgram

    class _ChaosFactory:
        @staticmethod
        def from_circuit(circuit, space):
            return ChaosProgram(original.from_circuit(circuit, space),
                                faults, epsilon,
                                ensemble_values=ensemble_values)

    ensemble_engine.ValueProgram = _ChaosFactory
    try:
        yield
    finally:
        ensemble_engine.ValueProgram = original


@contextlib.contextmanager
def parallel_faults(plan):
    """Install a process-level fault plan for the supervised driver.

    ``plan`` maps shard index → action spec, where an action is ``"kill"``
    (SIGKILL the worker mid-shard), ``"kill_after"`` (SIGKILL *after* the
    shard solved but before any write-back or completion message — the
    at-most-once worst case for streaming accumulators: the supervisor must
    re-dispatch and fold the shard exactly once), ``"hang"`` (stop
    heartbeating and sleep past the deadline) or ``"crash"`` (raise inside
    the worker).  A bare string fires on **every** attempt of that shard (a
    poisoned shard); a list is indexed by attempt number, so ``["kill"]``
    fails attempt 1 only and lets the re-dispatch succeed.

    :func:`repro.montecarlo.parallel.run_shards` snapshots the plan into
    the worker payload at call time, so it reaches workers through the
    pickled payload regardless of start method.
    """
    original = parallel_engine._FAULT_PLAN
    parallel_engine._FAULT_PLAN = dict(plan)
    try:
        yield
    finally:
        parallel_engine._FAULT_PLAN = original


@contextlib.contextmanager
def failing_kernel(nth=1):
    """Make the resilient layer's batched LAPACK kernel fail transiently.

    The patched kernel raises :class:`SingularMatrixError` on its ``nth``
    call (1-based) and behaves normally on every other call — the shape of
    a transient backend failure.  Yields a dict whose ``"count"`` entry
    tracks how many calls the kernel received.
    """
    original = resilience.batched_solve
    state = {"count": 0}

    def chaos(stack, rhs):
        state["count"] += 1
        if state["count"] == nth:
            raise SingularMatrixError("injected transient kernel failure")
        return original(stack, rhs)

    resilience.batched_solve = chaos
    try:
        yield state
    finally:
        resilience.batched_solve = original
