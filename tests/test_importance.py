"""Statistical validation of importance-sampled rare-failure yield.

The contract under test (ISSUE 10):

* on a **moderate**-failure-rate spec, the importance-sampled yield agrees
  with plain Monte Carlo within combined binomial confidence intervals —
  the weighting is a variance trade, never a bias;
* on a **synthetic 1-D** spec (one gaussian axis, monotone response) the
  estimator recovers the known analytic tail probability
  ``P(z > z*) = ½·erfc(z*/√2)`` at sample counts where plain MC would see
  a handful of failures at best;
* a **degenerate** proposal (all failure mass on a few dominant weights)
  surfaces through the failure-region ESS diagnostic rather than a
  silently wrong estimate;
* proposals are **seeded**: same seed, same bits — and the auto-aimed
  shift direction agrees with the rank-1 screening attribution that
  validates the MC engine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import (YieldSpec, importance_shift_from_screening,
                            importance_yield, monte_carlo_analysis,
                            variance_attribution, yield_analysis)
from repro.circuits.rc_ladder import build_rc_ladder
from repro.errors import ValidationError
from repro.montecarlo import ParameterSpace

FREQUENCIES = np.logspace(1, 6, 24)


def _normal_tail(z):
    """``P(Z > z)`` for a standard normal."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


@pytest.fixture(scope="module")
def ladder():
    circuit, spec = build_rc_ladder(4)
    names = [element.name for element in circuit
             if type(element).__name__ in ("Resistor", "Capacitor")][:5]
    space = ParameterSpace(circuit, {name: 0.1 for name in names})
    return circuit, spec, space


@pytest.fixture(scope="module")
def one_axis():
    """A single gaussian tolerance axis — the synthetic 1-D testbed."""
    circuit, spec = build_rc_ladder(3)
    name = [element.name for element in circuit
            if type(element).__name__ == "Resistor"][0]
    space = ParameterSpace(circuit, {name: 0.1})
    return circuit, spec, space, name


class TestSamplerWeights:
    """The raw (values, weights) contract of ParameterSpace.importance_sample."""

    def test_mean_weight_near_one(self, one_axis):
        __, __, space, __ = one_axis
        __, weights = space.importance_sample(50_000, seed=2, shift=1.5,
                                              mixture=0.1)
        # E_q[p/q] = 1 exactly; with one axis at a moderate shift the
        # sample mean has standard error ~0.014 at this count.
        assert weights.mean() == pytest.approx(1.0, abs=0.1)

    def test_zero_shift_unit_scale_weights_are_one(self, ladder):
        __, __, space = ladder
        __, weights = space.importance_sample(256, seed=2)
        np.testing.assert_allclose(weights, 1.0, rtol=1e-12)

    def test_seeded_determinism(self, ladder):
        __, __, space = ladder
        first = space.importance_sample(512, seed=11, shift=2.0, mixture=0.2)
        second = space.importance_sample(512, seed=11, shift=2.0,
                                         mixture=0.2)
        np.testing.assert_array_equal(first[0], second[0])
        np.testing.assert_array_equal(first[1], second[1])

    def test_recovers_analytic_gaussian_tail(self, one_axis):
        """z-space ground truth: P(z > 3) from 10⁵ shifted draws."""
        __, __, space, __ = one_axis
        values, weights = space.importance_sample(100_000, seed=5,
                                                  shift=3.0, mixture=0.05)
        nominal = space.nominal_values[0]
        z = (values[:, 0] / nominal - 1.0) / (0.1 / 3.0)
        z_star = 3.0
        estimate = float((weights * (z > z_star)).mean())
        exact = _normal_tail(z_star)
        standard_error = float((weights * (z > z_star)).std()
                               / math.sqrt(len(weights)))
        assert abs(estimate - exact) < 4.0 * standard_error
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_validation_errors(self, ladder):
        __, __, space = ladder
        with pytest.raises(ValidationError):
            space.importance_sample(0)
        with pytest.raises(ValidationError):
            space.importance_sample(2.5)
        with pytest.raises(ValidationError):
            space.importance_sample(8, scale=0.0)
        with pytest.raises(ValidationError):
            space.importance_sample(8, mixture=1.0)
        with pytest.raises(ValidationError):
            space.importance_sample(8, shift={"nope": 1.0})


class TestAgainstPlainMonteCarlo:
    """IS and plain MC are estimators of the same number."""

    def test_moderate_failure_rate_within_binomial_ci(self, ladder):
        circuit, spec, space = ladder
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                      samples=2000, seed=4)
        magnitudes = result.ensemble.magnitudes_db()
        pivot = int(np.argmax(magnitudes.std(axis=0)))
        column = magnitudes[:, pivot]
        # ~1.2 sigma below the mean: a moderate ~12% failure rate both
        # estimators resolve comfortably.
        threshold = float(column.mean() - 1.2 * column.std())
        ys = YieldSpec(name="gain", minimum_gain_db=threshold,
                       at_frequency=float(FREQUENCIES[pivot]))
        plain = yield_analysis(result, ys)
        p_plain = 1.0 - plain.fraction
        se_plain = math.sqrt(p_plain * (1.0 - p_plain) / plain.total)

        weighted = importance_yield(circuit, spec, FREQUENCIES, ys, space,
                                    samples=2000, seed=9, magnitude=1.5)
        p_weighted = weighted.failure_probability
        se_weighted = weighted.failure_standard_error
        assert not weighted.failure_diagnostics().degenerate
        combined = math.hypot(se_plain, se_weighted)
        assert abs(p_weighted - p_plain) < 4.0 * combined

    def test_rare_tail_recovered_on_one_axis_circuit(self, one_axis):
        """Full-pipeline 1-D analytic check: the response at a passband
        frequency is monotone in the single resistor axis, so the exact
        failure probability is a normal tail at the threshold's z-score."""
        circuit, spec, space, name = one_axis
        frequencies = FREQUENCIES
        base = monte_carlo_analysis(circuit, spec, frequencies, space,
                                    samples=400, seed=1)
        magnitudes = base.ensemble.magnitudes_db()
        pivot = int(np.argmax(magnitudes.std(axis=0)))

        # Invert the deterministic z → |H|_dB map by bisection to place the
        # threshold at exactly z* = 3.2 (p_exact ≈ 6.9e-4), far beyond what
        # 4000 plain samples resolve.
        from repro.montecarlo import ensemble_sweep

        def magnitude_at(z):
            multiplier = 1.0 + (0.1 / 3.0) * z
            values = space.nominal_values[None, :] * multiplier
            run = ensemble_sweep(circuit, spec, frequencies, space,
                                 values=values)
            return float(run.magnitudes_db()[0, pivot])

        z_star = 3.2
        threshold = magnitude_at(z_star)
        increasing = magnitude_at(z_star + 0.1) > threshold
        exact = _normal_tail(z_star)
        ys = (YieldSpec(name="tail", maximum_gain_db=threshold,
                        at_frequency=float(frequencies[pivot]))
              if increasing else
              YieldSpec(name="tail", minimum_gain_db=threshold,
                        at_frequency=float(frequencies[pivot])))

        result = importance_yield(circuit, spec, frequencies, ys, space,
                                  samples=4000, seed=7, magnitude=3.2,
                                  mixture=0.1)
        diagnostics = result.failure_diagnostics()
        assert not diagnostics.degenerate
        assert diagnostics.ess > 100.0
        assert abs(result.failure_probability - exact) \
            < 4.0 * result.failure_standard_error
        assert result.failure_probability == pytest.approx(exact, rel=0.35)
        # The self-normalized variant estimates the same tail.
        assert result.failure_probability_normalized == pytest.approx(
            exact, rel=0.5)


class TestDegeneracyDiagnostics:
    """Bad proposals must be flagged, not silently mis-estimated."""

    def test_no_failures_is_degenerate(self, ladder):
        circuit, spec, space = ladder
        impossible = YieldSpec(name="gain", minimum_gain_db=-1e6,
                               at_frequency=float(FREQUENCIES[1]))
        result = importance_yield(circuit, spec, FREQUENCIES, impossible,
                                  space, samples=200, seed=3, magnitude=1.0)
        diagnostics = result.failure_diagnostics()
        assert diagnostics.degenerate
        assert "no weighted samples" in diagnostics.reason
        assert result.failure_probability == 0.0

    def test_dominant_weight_is_degenerate(self, one_axis):
        """One sample carrying nearly all the failure mass must be flagged
        (max-weight share, the classic silent IS failure mode)."""
        circuit, spec, space, __ = one_axis
        from repro.montecarlo import ensemble_sweep

        values = space.sample_values(64, seed=1)
        weights = np.ones(64)
        weights[3] = 1e6
        everything_fails = YieldSpec(name="gain", minimum_gain_db=1e6,
                                     at_frequency=float(FREQUENCIES[4]))
        streaming = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values, store_responses=False,
                                   shard_size=16, weights=weights,
                                   yield_specs=everything_fails).yields
        diagnostics = streaming.failure_diagnostics()
        assert diagnostics.degenerate
        assert diagnostics.max_weight_share > 0.9
        assert diagnostics.ess < 10.0

    def test_ess_floor_reason_is_reported(self, ladder):
        circuit, spec, space = ladder
        impossible = YieldSpec(name="gain", minimum_gain_db=-1e6,
                               at_frequency=float(FREQUENCIES[1]))
        result = importance_yield(circuit, spec, FREQUENCIES, impossible,
                                  space, samples=64, seed=3, magnitude=1.0)
        # Overall weights stay healthy even when the failure set is empty.
        assert not result.diagnostics().degenerate


class TestScreeningAimedShift:
    """The auto-aimed proposal follows the screened failure direction."""

    def test_shift_magnitude_and_determinism(self, ladder):
        circuit, spec, space = ladder
        shift = importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                                space, magnitude=3.0)
        vector = np.array([shift[name] for name in space.names])
        assert np.linalg.norm(vector) == pytest.approx(3.0)
        again = importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                                space, magnitude=3.0)
        assert shift == again

    def test_direction_flips_sign(self, ladder):
        circuit, spec, space = ladder
        low = importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                              space, direction="low")
        high = importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                               space, direction="high")
        for name in space.names:
            assert low[name] == pytest.approx(-high[name])
        with pytest.raises(ValueError, match="direction"):
            importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                            space, direction="sideways")

    def test_agrees_with_variance_attribution(self, ladder):
        """Cross-check against the rank-1 attribution: both rank axes by
        (slope × sampling unit)², so the largest |shift| component names
        the axis with the largest predicted variance share."""
        circuit, spec, space = ladder
        shift = importance_shift_from_screening(circuit, spec, FREQUENCIES,
                                                space)
        dominant_shift = max(shift, key=lambda name: abs(shift[name]))
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                      samples=512, seed=2)
        entries = variance_attribution(result)
        dominant_predicted = max(entries,
                                 key=lambda entry: entry.predicted_share)
        assert dominant_shift == dominant_predicted.name

    def test_importance_yield_seeded_determinism(self, ladder):
        circuit, spec, space = ladder
        ys = YieldSpec(name="gain", minimum_gain_db=-100.0,
                       at_frequency=float(FREQUENCIES[4]))
        first = importance_yield(circuit, spec, FREQUENCIES, ys, space,
                                 samples=256, seed=12)
        second = importance_yield(circuit, spec, FREQUENCIES, ys, space,
                                  samples=256, seed=12)
        assert first.failure_probability == second.failure_probability
        assert first.streaming.fail_weight == second.streaming.fail_weight
        assert first.shift == second.shift
