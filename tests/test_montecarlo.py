"""Tests for the Monte Carlo / tolerance-analysis subsystem (PR 5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import (
    YieldSpec,
    corner_analysis,
    monte_carlo_analysis,
    variance_attribution,
    yield_analysis,
)
from repro.circuits.miller_ota import build_miller_ota
from repro.engine.session import AnalysisSession
from repro.engine.sweep import SweepEngine
from repro.errors import FormulationError, NetlistError, SingularMatrixError
from repro.linalg.dense import batched_dense_lu, batched_solve
from repro.mna.builder import build_mna_system
from repro.montecarlo import (
    ParameterSpace,
    Tolerance,
    ValueProgram,
    ensemble_sweep,
    rebuild_sweep,
)
from repro.netlist.circuit import Circuit
from repro.netlist.elements import Resistor
from repro.nodal.reduce import TransferSpec


@pytest.fixture
def toleranced_rc():
    """Two-pole RC with ±10 % tolerances on every passive."""
    circuit = Circuit("rc2")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_resistor("R2", "mid", "out", 2.2e3)
    circuit.add_capacitor("C2", "out", "0", 470e-12)
    for name in ("R1", "C1", "R2", "C2"):
        circuit.replace(circuit[name].with_tolerance(0.1))
    return circuit, TransferSpec(inputs=["vin"], output="out")


FREQUENCIES = np.logspace(1, 7, 13)


class TestTolerance:
    def test_metadata_on_elements(self):
        resistor = Resistor("R1", "a", "0", 1e3).with_tolerance(0.05)
        assert resistor.tolerance == Tolerance(0.05, "gaussian")
        assert resistor.with_tolerance(None).tolerance is None
        uniform = resistor.with_tolerance(Tolerance(0.01, "uniform"))
        assert uniform.tolerance.distribution == "uniform"

    def test_invalid_tolerances_rejected(self):
        with pytest.raises(NetlistError):
            Tolerance(0.0)
        with pytest.raises(NetlistError):
            Tolerance(1.5)
        with pytest.raises(NetlistError):
            Tolerance(0.1, "triangular")

    def test_tolerance_changes_fingerprint(self, toleranced_rc):
        circuit, __ = toleranced_rc
        stripped = circuit.copy()
        stripped.replace(stripped["R1"].with_tolerance(None))
        assert (AnalysisSession.fingerprint(circuit)
                != AnalysisSession.fingerprint(stripped))

    def test_value_scaling_preserves_tolerance(self, toleranced_rc):
        circuit, __ = toleranced_rc
        scaled = circuit.with_value_scaled("R1", 2.0)
        assert scaled["R1"].value == 2e3
        assert scaled["R1"].tolerance == Tolerance(0.1)


class TestParameterSpace:
    def test_axes_from_element_metadata(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        assert space.names == ["R1", "C1", "R2", "C2"]
        assert len(space) == 4
        np.testing.assert_allclose(space.nominal_values,
                                   [1e3, 1e-9, 2.2e3, 470e-12])

    def test_explicit_tolerances_override(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit, {"R1": 0.01})
        fractions = {axis.name: axis.tolerance.fraction
                     for axis in space.axes}
        assert fractions["R1"] == 0.01
        assert fractions["C1"] == 0.1

    def test_empty_and_invalid_spaces_rejected(self, simple_rc):
        circuit, __ = simple_rc
        with pytest.raises(NetlistError, match="empty"):
            ParameterSpace(circuit)
        with pytest.raises(NetlistError, match="unknown element"):
            ParameterSpace(circuit, {"Rnone": 0.1})
        with pytest.raises(NetlistError, match="cannot carry"):
            ParameterSpace(circuit, {"vin": 0.1})

    def test_sampling_deterministic_per_seed(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        first = space.sample_values(16, seed=7)
        second = space.sample_values(16, seed=7)
        other = space.sample_values(16, seed=8)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)
        assert first.shape == (16, 4)
        assert (first > 0).all()

    def test_distributions(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit, {
            "R1": Tolerance(0.1, "uniform"),
            "C1": Tolerance(0.1, "corner"),
        })
        multipliers = space.sample_multipliers(500, seed=1)
        uniform = multipliers[:, space.names.index("R1")]
        corner = multipliers[:, space.names.index("C1")]
        assert uniform.min() >= 0.9 and uniform.max() <= 1.1
        assert set(np.round(corner, 12)) == {0.9, 1.1}

    def test_corner_values_full_factorial(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        corners = space.corner_multipliers()
        assert corners.shape == (16, 4)          # 2^4 factorial
        assert {round(m, 12) for m in corners.ravel()} == {0.9, 1.1}

    def test_corner_values_large_space_falls_back(self):
        circuit = Circuit("ladder")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        previous = "in"
        for index in range(14):
            node = f"n{index}"
            circuit.add_resistor(f"R{index}", previous, node, 1e3)
            circuit.replace(circuit[f"R{index}"].with_tolerance(0.05))
            previous = node
        space = ParameterSpace(circuit)
        corners = space.corner_multipliers()
        assert corners.shape == (2 * 14 + 2, 14)  # extremes + one-at-a-time

    @pytest.mark.parametrize("method", ["sobol", "lhs"])
    def test_qmc_same_seeded_determinism_contract(self, toleranced_rc,
                                                  method):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        first = space.sample_values(64, seed=7, method=method)
        second = space.sample_values(64, seed=7, method=method)
        other = space.sample_values(64, seed=8, method=method)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)
        assert first.shape == (64, 4)
        assert (first > 0).all()
        # Band coverage: multipliers live inside the 3-sigma/flat band.
        multipliers = first / space.nominal_values[None, :]
        assert multipliers.min() > 0.5 and multipliers.max() < 1.5

    @pytest.mark.parametrize("method", ["sobol", "lhs"])
    def test_qmc_dimension_prefix_consistent(self, toleranced_rc, method):
        # Adding tolerance axes must not change the draws of the axes that
        # were already there (each dimension derives randomization from its
        # own [seed, dimension] child stream).
        circuit = Circuit("bare-rc2")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "mid", 1e3)
        circuit.add_capacitor("C1", "mid", "0", 1e-9)
        circuit.add_resistor("R2", "mid", "out", 2.2e3)
        circuit.add_capacitor("C2", "out", "0", 470e-12)
        narrow = ParameterSpace(circuit, {"R1": 0.1, "C1": 0.1})
        wide = ParameterSpace(circuit, {"R1": 0.1, "C1": 0.1,
                                        "R2": 0.1, "C2": 0.1})
        assert wide.names[:2] == narrow.names
        narrow_draw = narrow.sample_multipliers(32, seed=5, method=method)
        wide_draw = wide.sample_multipliers(32, seed=5, method=method)
        assert np.array_equal(wide_draw[:, :2], narrow_draw)

    def test_sobol_count_prefix_consistent(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        short = space.sample_multipliers(32, seed=5, method="sobol")
        long = space.sample_multipliers(128, seed=5, method="sobol")
        assert np.array_equal(long[:32], short)

    def test_qmc_stratification_beats_random(self, toleranced_rc):
        # The point of QMC: one-dimensional projections cover the band
        # evenly.  With 64 LHS samples every one of 64 strata is hit exactly
        # once; Sobol at a power of two does the same.
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit, {"R1": Tolerance(0.1, "uniform")})
        for method in ("sobol", "lhs"):
            multipliers = space.sample_multipliers(64, seed=2, method=method)
            u = (multipliers[:, 0] - 0.9) / 0.2   # back to [0, 1)
            counts = np.bincount(np.clip((u * 64).astype(int), 0, 63),
                                 minlength=64)
            assert counts.max() == 1, method

    def test_qmc_rejects_unknown_method_and_oversized_sobol(self,
                                                            toleranced_rc):
        from repro.montecarlo.qmc import SOBOL_MAX_DIMS

        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        with pytest.raises(NetlistError, match="unknown sampling method"):
            space.sample_multipliers(8, seed=0, method="halton")
        circuit = Circuit("wide")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        previous = "in"
        for index in range(SOBOL_MAX_DIMS + 1):
            node = f"n{index}"
            circuit.add_resistor(f"R{index}", previous, node, 1e3)
            circuit.replace(circuit[f"R{index}"].with_tolerance(0.05))
            previous = node
        wide = ParameterSpace(circuit)
        with pytest.raises(NetlistError, match="sobol sampling supports"):
            wide.sample_multipliers(8, seed=0, method="sobol")
        # LHS has no dimension cap.
        assert wide.sample_multipliers(8, seed=0, method="lhs").shape == (
            8, SOBOL_MAX_DIMS + 1)

    def test_qmc_ensemble_end_to_end(self, toleranced_rc):
        # QMC values flow through the vectorized engine exactly like random
        # ones: pass them via values=, bit-identical to the rebuild path.
        circuit, spec = toleranced_rc
        space = ParameterSpace(circuit)
        values = space.sample_values(8, seed=4, method="sobol")
        vectorized = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=values, solver="lu")
        rebuilt = rebuild_sweep(circuit, spec, FREQUENCIES, space,
                                values=values)
        assert np.array_equal(vectorized.responses, rebuilt.responses)

    def test_apply_rebuilds_values(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        values = space.sample_values(1, seed=3)[0]
        perturbed = space.apply(values)
        for name, value in zip(space.names, values):
            element = perturbed[name]
            assert element.value == value
        with pytest.raises(NetlistError):
            space.apply(values[:2])

    def test_admittance_scales_invert_resistors(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        values = space.nominal_values[None, :] * 2.0
        scales = space.admittance_scales(values)
        assert scales[0, space.names.index("R1")] == pytest.approx(0.5)
        assert scales[0, space.names.index("C1")] == pytest.approx(2.0)


class TestValueProgram:
    def test_dense_parts_bit_identical_to_rebuild(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        program = ValueProgram.from_circuit(circuit, space)
        values = space.sample_values(5, seed=11)
        constant_stack, dynamic_stack = program.dense_parts(values)
        for sample in range(5):
            rebuilt = build_mna_system(space.apply(values[sample]))
            constant, dynamic = rebuilt.dense_parts()
            assert np.array_equal(constant_stack[sample], constant), sample
            assert np.array_equal(dynamic_stack[sample], dynamic), sample

    def test_rhs_matches_builder(self, toleranced_rc):
        circuit, __ = toleranced_rc
        space = ParameterSpace(circuit)
        program = ValueProgram.from_circuit(circuit, space)
        assert np.array_equal(program.rhs, build_mna_system(circuit).rhs)

    def test_shape_validation(self, toleranced_rc):
        circuit, __ = toleranced_rc
        program = ValueProgram.from_circuit(circuit,
                                            ParameterSpace(circuit))
        with pytest.raises(FormulationError):
            program.axis_parameters(np.ones((3, 2)))


class TestEnsembleSweep:
    def test_lu_arm_bit_identical_to_rebuild(self, toleranced_rc):
        circuit, spec = toleranced_rc
        vectorized = ensemble_sweep(circuit, spec, FREQUENCIES, samples=9,
                                    seed=5, solver="lu")
        reference = rebuild_sweep(circuit, spec, FREQUENCIES,
                                  values=vectorized.values, solver="lu")
        assert np.array_equal(vectorized.responses, reference.responses)

    def test_lapack_arm_batch_invariant(self, toleranced_rc):
        circuit, spec = toleranced_rc
        vectorized = ensemble_sweep(circuit, spec, FREQUENCIES, samples=9,
                                    seed=5, solver="lapack")
        one_at_a_time = rebuild_sweep(circuit, spec, FREQUENCIES,
                                      values=vectorized.values,
                                      solver="lapack")
        assert np.array_equal(vectorized.responses, one_at_a_time.responses)

    def test_workers_do_not_change_bits(self, toleranced_rc):
        circuit, spec = toleranced_rc
        single = ensemble_sweep(circuit, spec, FREQUENCIES, samples=9,
                                seed=5, workers=1)
        threaded = ensemble_sweep(circuit, spec, FREQUENCIES, samples=9,
                                  seed=5, workers=4)
        assert np.array_equal(single.responses, threaded.responses)

    def test_sparse_fallback_close_to_rebuild(self, toleranced_rc):
        circuit, spec = toleranced_rc
        vectorized = ensemble_sweep(circuit, spec, FREQUENCIES, samples=4,
                                    seed=5, method="sparse")
        assert vectorized.solver == "sparse"
        reference = rebuild_sweep(circuit, spec, FREQUENCIES,
                                  values=vectorized.values)
        scale = np.maximum(np.abs(reference.responses),
                           np.finfo(float).tiny)
        deviation = np.max(np.abs(vectorized.responses
                                  - reference.responses) / scale)
        assert deviation <= 1e-9

    def test_explicit_values_and_validation(self, toleranced_rc):
        circuit, spec = toleranced_rc
        space = ParameterSpace(circuit)
        values = space.corner_values()
        result = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                values=values)
        assert result.responses.shape == (16, len(FREQUENCIES))
        with pytest.raises(FormulationError):
            ensemble_sweep(circuit, spec, FREQUENCIES, space,
                           values=values[:, :2])
        with pytest.raises(FormulationError):
            ensemble_sweep(circuit, spec, FREQUENCIES, space,
                           solver="cholesky")

    def test_singular_member_raises(self):
        # An RC divider whose only path to the output opens when R2's
        # conductance collapses: force a value that shorts nothing but
        # makes the matrix singular is hard to construct linearly, so use
        # a current source into a node whose only ground path is the
        # toleranced resistor driven to an extreme is still regular; the
        # reliable singular case is a zero-valued conductance sample.
        circuit = Circuit("sing")
        circuit.add_current_source("iin", "0", "n1", 1.0)
        circuit.add_conductor("Gload", "n1", "0", 1e-3)
        circuit.replace(circuit["Gload"].with_tolerance(0.5))
        space = ParameterSpace(circuit)
        values = np.array([[0.0]])
        with pytest.raises(SingularMatrixError):
            ensemble_sweep(circuit, "n1", np.array([0.0]), space,
                           values=values, solver="lu")
        with pytest.raises(SingularMatrixError):
            ensemble_sweep(circuit, "n1", np.array([0.0]), space,
                           values=values, solver="lapack")


class TestBatchedSolve:
    def test_matches_lu_solver(self):
        rng = np.random.default_rng(0)
        stack = rng.standard_normal((6, 9, 9)) + 1j * rng.standard_normal(
            (6, 9, 9))
        rhs = rng.standard_normal(9) + 1j * rng.standard_normal(9)
        fast = batched_solve(stack, rhs)
        reference = batched_dense_lu(stack.copy()).solve(rhs)
        np.testing.assert_allclose(fast, reference, rtol=1e-10)

    def test_batch_invariance(self):
        rng = np.random.default_rng(1)
        stack = rng.standard_normal((8, 7, 7)) + 1j * rng.standard_normal(
            (8, 7, 7))
        rhs = rng.standard_normal((8, 7)) + 1j * rng.standard_normal((8, 7))
        together = batched_solve(stack, rhs)
        alone = np.array([batched_solve(stack[k:k + 1], rhs[k:k + 1])[0]
                          for k in range(8)])
        assert np.array_equal(together, alone)

    def test_singular_raises_with_index(self):
        stack = np.stack([np.eye(3, dtype=complex),
                          np.zeros((3, 3), dtype=complex)])
        with pytest.raises(SingularMatrixError, match="matrix 1"):
            batched_solve(stack, np.ones(3))

    def test_shape_validation(self):
        from repro.errors import LinAlgError
        with pytest.raises(LinAlgError):
            batched_solve(np.zeros((2, 3, 4)), np.ones(3))
        with pytest.raises(LinAlgError):
            batched_solve(np.zeros((2, 3, 3), dtype=complex), np.ones(4))


class TestParamBatchEngine:
    """The generic affine parameter-batch APIs on formulation + sweep engine."""

    def test_assemble_param_batch_matches_rebuild(self):
        circuit, spec = build_miller_ota()
        names = ["M1.gm", "M2.gds", "Cc", "CL"]
        space = ParameterSpace(circuit, {name: 0.2 for name in names})
        system = build_mna_system(circuit)
        values = space.sample_values(4, seed=2)
        scales = space.admittance_scales(values)
        s = 2j * math.pi * FREQUENCIES
        stack = system.assemble_param_batch(s, space.names, scales)
        assert stack.shape == (4, len(s), system.dimension,
                               system.dimension)
        for sample in range(4):
            rebuilt = build_mna_system(space.apply(values[sample]))
            expected = rebuilt.assemble_batch(s)
            np.testing.assert_allclose(stack[sample], expected, rtol=1e-12,
                                       atol=1e-30)
        with pytest.raises(ValueError):
            system.assemble_param_batch(s, space.names, scales[:, :1])

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_solve_param_sweep_matches_rebuild(self, method):
        circuit, spec = build_miller_ota()
        names = ["M1.gm", "M2.gds", "Cc", "CL"]
        space = ParameterSpace(circuit, {name: 0.2 for name in names})
        system = build_mna_system(circuit)
        engine = SweepEngine(system, method=method)
        values = space.sample_values(3, seed=4)
        s = 2j * math.pi * FREQUENCIES
        solutions = engine.solve_param_sweep(s, space.names,
                                             space.admittance_scales(values),
                                             system.rhs)
        assert solutions.shape == (3, len(s), system.dimension)
        for sample in range(3):
            rebuilt = build_mna_system(space.apply(values[sample]))
            expected = SweepEngine(rebuilt, method=method).solve_sweep(
                s, rebuilt.rhs)
            np.testing.assert_allclose(solutions[sample], expected,
                                       rtol=1e-9, atol=1e-30)
        if method == "sparse":
            assert engine.refactorization_count > 0

    def test_stamp_columns_cached(self):
        circuit, __ = build_miller_ota()
        system = build_mna_system(circuit)
        names = ["M1.gm", "Cc"]
        first = system.stamp_columns(names)
        second = system.stamp_columns(names)
        assert first is second


class TestAnalysisLayer:
    def test_monte_carlo_envelope_brackets_nominal(self, toleranced_rc):
        circuit, spec = toleranced_rc
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES,
                                      samples=64, seed=9)
        envelope = result.envelope()
        nominal_db = 20.0 * np.log10(np.abs(result.nominal_response))
        assert (envelope.minimum_db <= nominal_db + 1e-9).all()
        assert (envelope.maximum_db >= nominal_db - 1e-9).all()
        assert (envelope.width_db() >= 0).all()
        assert (envelope.percentile_low_db
                <= envelope.percentile_high_db).all()

    def test_variance_attribution_cross_check(self, toleranced_rc):
        circuit, spec = toleranced_rc
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES,
                                      samples=256, seed=2)
        entries = result.attribution()
        assert {entry.name for entry in entries} == {"R1", "C1", "R2", "C2"}
        shares = np.array([entry.share for entry in entries])
        predicted = np.array([entry.predicted_share for entry in entries])
        # The regression model explains a near-linear circuit almost fully,
        # and the rank-1 first-order prediction agrees on the shares.
        assert shares.sum() == pytest.approx(1.0, abs=0.15)
        assert entries == sorted(entries, key=lambda e: e.share,
                                 reverse=True)
        np.testing.assert_allclose(predicted, shares, atol=0.1)

    def test_corner_analysis_brackets_ensemble(self, toleranced_rc):
        circuit, spec = toleranced_rc
        corners = corner_analysis(circuit, spec, FREQUENCIES)
        assert corners.values.shape[0] == 16
        assert (corners.worst_low_db <= corners.worst_high_db).all()

    def test_yield_analysis(self, toleranced_rc):
        circuit, spec = toleranced_rc
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES,
                                      samples=32, seed=1)
        passing = YieldSpec(name="dc", minimum_gain_db=-3.0,
                            at_frequency=10.0)
        failing = YieldSpec(name="impossible", minimum_gain_db=60.0,
                            at_frequency=10.0)
        report = yield_analysis(result, [passing, failing])
        assert report.total == 32
        assert report.per_spec["dc"] == 32
        assert report.per_spec["impossible"] == 0
        assert report.passed == 0 and report.fraction == 0.0
        alone = result.yield_against(passing)
        assert alone.fraction == 1.0
        with pytest.raises(ValueError, match="at_frequency"):
            yield_analysis(result, YieldSpec(minimum_gain_db=0.0))

    def test_session_memoizes_whole_result(self, toleranced_rc):
        circuit, spec = toleranced_rc
        session = AnalysisSession()
        space = ParameterSpace(circuit)
        first = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                     samples=16, seed=3, session=session)
        hits_before = session.hits
        second = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                      samples=16, seed=3, session=session)
        assert second is first
        assert session.hits > hits_before
        third = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                     samples=16, seed=4, session=session)
        assert third is not first
        sessionless = monte_carlo_analysis(circuit, spec, FREQUENCIES,
                                           space, samples=16, seed=3)
        assert np.array_equal(sessionless.responses, first.responses)
        assert session.invalidate(circuit) > 0
