"""Tests for the interned symbolic kernel (PR 4).

Covers the four kernel pillars:

* packed-monomial interning and the Term merge fast path,
* the minor-memoized determinant engine (legacy parity, numerical
  correctness against ``repro.linalg`` on every library circuit, cache-hit
  and numerator/denominator-sharing accounting, distinct-work budgets),
* vectorized term valuation (bit-parity with ``Term.value``, deterministic
  tie ordering),
* the AnalysisSession symbolic caches.
"""

import math
import zlib

import numpy as np
import pytest

from repro.circuits import (
    build_cascode_amplifier,
    build_miller_ota,
    build_positive_feedback_ota,
    build_rc_ladder,
    build_sallen_key_lowpass,
    build_tow_thomas_biquad,
    build_ua741_macro,
)
from repro.engine.session import AnalysisSession
from repro.errors import SymbolicError
from repro.linalg.det import determinant
from repro.netlist.transform import to_admittance_form
from repro.nodal.admittance import build_nodal_formulation
from repro.symbolic.determinant import symbolic_determinant
from repro.symbolic.generation import (
    select_significant_terms,
    symbolic_network_function,
)
from repro.symbolic.kernel import (
    DeterminantEngine,
    SymbolInterner,
    TermValuation,
    sum_term_values,
)
from repro.symbolic.matrix import build_symbolic_nodal
from repro.symbolic.symbols import CircuitSymbol
from repro.symbolic.terms import SymbolicExpression, Term
from repro.xfloat import XFloat

#: Every circuit in the library at symbolic-analysis scale.  (The
#: transistor-level µA741 is represented by its behavioral macromodel — the
#: full macro's flat determinant is precisely what the paper says cannot be
#: expanded.)
LIBRARY_CIRCUITS = [
    ("rc-ladder-3", lambda: build_rc_ladder(
        3, [1e3, 2.2e3, 4.7e3], [1e-9, 470e-12, 220e-12])),
    ("positive-feedback-ota", build_positive_feedback_ota),
    ("miller-ota", build_miller_ota),
    ("cascode", build_cascode_amplifier),
    ("sallen-key", build_sallen_key_lowpass),
    ("tow-thomas", build_tow_thomas_biquad),
    ("ua741-macro", build_ua741_macro),
]


def _multiset(expression):
    return sorted((term.symbols, term.s_power, term.coefficient)
                  for term in expression.terms)


def _structure(expression):
    return sorted((term.symbols, term.s_power) for term in expression.terms)


class TestInterner:
    def test_ids_follow_sorted_names(self):
        interner = SymbolInterner(["gb", "ga", "gc"])
        assert interner.names == ("ga", "gb", "gc")
        assert interner.id_of("gb") == 1

    def test_encode_decode_roundtrip_with_repetition(self):
        interner = SymbolInterner(["a", "b", "c"])
        mono = interner.encode_names(("c", "a", "c"))
        assert interner.decode(mono) == ("a", "c", "c")
        # Decoded tuples are cached and shared.
        assert interner.decode(mono) is interner.decode(mono)

    def test_monomial_product_is_integer_addition(self):
        interner = SymbolInterner(["a", "b"])
        ab = interner.encode_names(("a", "b"))
        b = interner.encode_names(("b",))
        assert interner.decode(ab + b) == ("a", "b", "b")

    def test_late_interning_falls_back_to_sorting(self):
        interner = SymbolInterner(["b", "d"])
        mono = interner.encode_names(("d", "a"))  # "a" interned late
        assert interner.decode(mono) == ("a", "d")

    def test_chunked_decode_beyond_one_chunk(self):
        names = [f"g{index:03d}" for index in range(40)]
        interner = SymbolInterner(names)
        mono = interner.encode_names(("g000", "g017", "g039"))
        assert interner.decode(mono) == ("g000", "g017", "g039")


class TestTermFastPaths:
    def test_multiply_merges_without_resort(self):
        a = Term(("ga", "gc"), 1, 2.0)
        b = Term(("gb", "gd"), 0, -1.5)
        product = a.multiply(b)
        assert product.symbols == ("ga", "gb", "gc", "gd")
        assert product.s_power == 1
        assert product.coefficient == -3.0

    def test_post_init_sorts_only_when_needed(self):
        assert Term(("b", "a"), 0).symbols == ("a", "b")
        assert Term(["c", "a"], 0).symbols == ("a", "c")
        assert Term(("a", "a", "b"), 0).symbols == ("a", "a", "b")

    def test_from_sorted_skips_scan(self):
        term = Term.from_sorted(("a", "b"), 1, 3.0)
        assert term == Term(("a", "b"), 1, 3.0)


class TestDeterminantParity:
    """Interned and legacy kernels produce the same expressions."""

    def test_random_matrices_match_legacy(self):
        rng = np.random.default_rng(42)
        for __ in range(4):
            size = 5
            entries = {}
            for row in range(size):
                for col in range(size):
                    if rng.random() < 0.8:
                        terms = [
                            Term((f"m{row}{col}x{k}",),
                                 int(rng.random() < 0.4),
                                 float(rng.integers(-3, 4)) or 1.0)
                            for k in range(rng.integers(1, 3))
                        ]
                        entries[(row, col)] = SymbolicExpression(terms)
            legacy = symbolic_determinant(entries, size, kernel="legacy")
            interned = symbolic_determinant(entries, size, kernel="interned")
            assert _multiset(legacy) == _multiset(interned)

    @pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS)
    def test_network_functions_match_legacy(self, name, builder):
        circuit, spec = builder()
        if name == "ua741-macro":
            pytest.skip("covered by benchmarks/bench_sdg.py (seconds-long)")
        if name == "positive-feedback-ota":
            pytest.skip("full expansion infeasible on either kernel; "
                        "covered by the principal-minor cross-check")
        legacy = symbolic_network_function(circuit, spec, kernel="legacy",
                                           max_terms=2_000_000)
        interned = symbolic_network_function(circuit, spec, kernel="interned",
                                             max_terms=2_000_000)
        assert _structure(legacy.numerator) == _structure(interned.numerator)
        assert _structure(legacy.denominator) == _structure(interned.denominator)
        for kind in ("numerator", "denominator"):
            expression = getattr(interned, kind)
            for power in range(expression.max_s_power() + 1):
                a = legacy.coefficient_value(kind, power)
                b = interned.coefficient_value(kind, power)
                if a.is_zero() and b.is_zero():
                    continue
                assert not (a.is_zero() or b.is_zero())
                assert float(abs(a - b) / abs(a)) <= 1e-9

    def test_unknown_kernel_rejected(self):
        with pytest.raises(SymbolicError):
            symbolic_determinant({}, 1, kernel="quantum")
        circuit, spec = build_miller_ota()
        with pytest.raises(SymbolicError):
            symbolic_network_function(circuit, spec, kernel="quantum")


class TestNumericCrossCheck:
    """Property test: the symbolic determinant evaluated at random ``s``
    equals the numeric determinant of the stamped nodal matrix."""

    @pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS)
    def test_determinant_matches_linalg(self, name, builder):
        circuit, spec = builder()
        admittance = to_admittance_form(circuit)
        nodal = build_symbolic_nodal(admittance, spec)
        formulation = build_nodal_formulation(admittance, spec)
        if name in ("ua741-macro", "positive-feedback-ota"):
            # Exact expansion of the full matrix is seconds-long (macro) or
            # infeasible (OTA); cross-check a leading principal minor
            # instead (same stamps, same engine).
            size = 6
            entries = {key: value for key, value in nodal.entries.items()
                       if key[0] < size and key[1] < size}
            symbolic = symbolic_determinant(entries, size,
                                            max_terms=2_000_000)

            def numeric_det(s):
                dense = formulation.assemble(s).to_dense()[:size, :size]
                return determinant(dense)
        else:
            symbolic = symbolic_determinant(nodal.entries, nodal.dimension,
                                            max_terms=2_000_000)

            def numeric_det(s):
                return determinant(formulation.assemble(s))

        rng = np.random.default_rng(zlib.crc32(name.encode()))
        for __ in range(3):
            log_magnitude = rng.uniform(4.0, 8.0)
            angle = rng.uniform(0.2, math.pi - 0.2)
            s = 10.0**log_magnitude * complex(math.cos(angle),
                                              math.sin(angle))
            mantissa, exponent = numeric_det(s)
            expected = complex(mantissa) * 10.0**exponent
            value = symbolic.evaluate(nodal.table, s)
            assert value == pytest.approx(expected, rel=1e-6), (name, s)


class TestEngineAccounting:
    def test_minor_memo_hits_and_numerator_sharing(self):
        circuit, spec = build_miller_ota()
        transfer = symbolic_network_function(circuit, spec)
        stats = transfer.kernel_stats
        assert stats is not None
        assert stats.minor_hits > 0
        assert 0.0 < stats.hit_rate < 1.0
        assert stats.distinct_terms > 0
        # The Cramer numerator differs from the denominator in one column:
        # its expansion must hit the denominator's memoized minors.
        assert "denominator" in stats.phases
        numerator_phases = [phase for phase in stats.phases
                            if phase.startswith("numerator:")]
        assert numerator_phases
        hits = sum(stats.phases[phase][0] for phase in numerator_phases)
        assert hits > 0
        # The memoized engine forms far fewer products than the flat
        # expansion materializes terms.
        legacy = symbolic_network_function(circuit, spec, kernel="legacy")
        assert _structure(legacy.denominator) == _structure(transfer.denominator)

    def test_engine_shared_between_determinant_calls(self):
        circuit, spec = build_miller_ota()
        admittance = to_admittance_form(circuit)
        nodal = build_symbolic_nodal(admittance, spec)
        engine, excitation = nodal.determinant_engine()
        indices = tuple(range(nodal.dimension))
        engine.determinant_terms(indices, indices)
        misses_after_denominator = engine.stats.minor_misses
        # Same determinant again: answered entirely by the memo.
        engine.determinant_terms(indices, indices)
        assert engine.stats.minor_misses == misses_after_denominator

    def test_budget_counts_distinct_work_not_expansions(self):
        # Reusing a memoized minor charges nothing: an engine whose budget
        # exactly equals one expansion's distinct work can expand the same
        # determinant (and the heavily-shared Cramer numerator) again.
        circuit, spec = build_miller_ota()
        admittance = to_admittance_form(circuit)
        nodal = build_symbolic_nodal(admittance, spec)
        probe, __ = nodal.determinant_engine()
        indices = tuple(range(nodal.dimension))
        probe.determinant_terms(indices, indices)
        distinct = probe.stats.distinct_terms

        # 1.5x headroom: the in-flight check also counts to-be-cancelled
        # groups, but a re-charged second expansion would need a full 2x.
        engine, __ = nodal.determinant_engine(max_terms=distinct
                                              + distinct // 2)
        engine.determinant_terms(indices, indices)
        engine.determinant_terms(indices, indices)  # free: pure memo hit
        assert engine.stats.distinct_terms == distinct

    def test_budget_error_reports_both_counts(self):
        size = 7
        entries = {}
        for row in range(size):
            for col in range(size):
                entries[(row, col)] = SymbolicExpression(
                    [Term((f"x{row}{col}",), 0)])
        with pytest.raises(SymbolicError) as excinfo:
            symbolic_determinant(entries, size, max_terms=50)
        message = str(excinfo.value)
        assert "distinct terms" in message
        assert "expanded term products" in message

    def test_combine_false_uses_flat_expansion(self):
        entries = {
            (0, 0): SymbolicExpression([Term(("a",), 0)]),
            (0, 1): SymbolicExpression([Term(("a",), 0)]),
            (1, 0): SymbolicExpression([Term(("a",), 0)]),
            (1, 1): SymbolicExpression([Term(("a",), 0)]),
        }
        flat = symbolic_determinant(entries, 2, combine=False)
        assert len(flat) == 2  # a·a - a·a, uncombined
        combined = symbolic_determinant(entries, 2)
        assert combined.is_zero()


class TestVectorizedValuation:
    def test_bit_parity_with_term_value(self):
        circuit, spec = build_miller_ota()
        transfer = symbolic_network_function(circuit, spec)
        terms = transfer.denominator.terms[:500]
        valuation = TermValuation(terms, transfer.table)
        for index, term in enumerate(terms):
            scalar = term.value(transfer.table)
            bulk = valuation.value(index)
            assert scalar.mantissa == bulk.mantissa
            assert scalar.exponent == bulk.exponent

    def test_zero_coefficient_and_zero_symbol(self):
        table = {"g": CircuitSymbol("g", "conductance", 0.0),
                 "h": CircuitSymbol("h", "conductance", 2.0)}
        terms = [Term(("g",), 0), Term(("h",), 0, 0.0), Term(("h",), 0, -3.0)]
        valuation = TermValuation(terms, table)
        assert valuation.value(0).is_zero()
        assert valuation.value(1).is_zero()
        assert float(valuation.value(2)) == pytest.approx(-6.0)
        assert float(valuation.total()) == pytest.approx(-6.0)

    def test_missing_symbol_raises(self):
        with pytest.raises(SymbolicError):
            TermValuation([Term(("nope",), 0)], {})

    def test_sum_matches_sequential_xfloat_chain(self):
        table = {f"g{i}": CircuitSymbol(f"g{i}", "conductance",
                                        (-1.0)**i * 10.0**(-3 * i))
                 for i in range(8)}
        terms = [Term((f"g{i}",), 0) for i in range(8)]
        sequential = XFloat.zero()
        for term in terms:
            sequential = sequential + term.value(table)
        bulk = sum_term_values(terms, table)
        assert bulk.mantissa == sequential.mantissa
        assert bulk.exponent == sequential.exponent

    def test_order_breaks_ties_deterministically(self):
        table = {"ga": CircuitSymbol("ga", "conductance", 1e-3),
                 "gb": CircuitSymbol("gb", "conductance", 1e-3),
                 "gc": CircuitSymbol("gc", "conductance", 1e-2)}
        forward = [Term(("ga",), 0), Term(("gb",), 0), Term(("gc",), 0)]
        backward = list(reversed(forward))
        order_a = TermValuation(forward, table).order()
        order_b = TermValuation(backward, table).order()
        names_a = [forward[i].symbols for i in order_a]
        names_b = [backward[i].symbols for i in order_b]
        assert names_a == names_b == [("gc",), ("ga",), ("gb",)]

    def test_select_reuses_valuation_and_matches_scalar(self):
        table = {f"g{i}": CircuitSymbol(f"g{i}", "conductance", 10.0**-i)
                 for i in range(6)}
        terms = [Term((f"g{i}",), 0) for i in range(6)]
        reference = XFloat(sum(10.0**-i for i in range(6)), 0)
        valuation = TermValuation(terms, table)
        kept, total = select_significant_terms(terms, table, reference, 0.05,
                                               valuation=valuation)
        scalar_kept, scalar_total = select_significant_terms(
            terms, table, reference, 0.05, method="scalar")
        assert total == scalar_total == 6
        assert [t.symbols for t in kept] == [t.symbols for t in scalar_kept]


class TestSessionSymbolicCaches:
    def test_transfer_cached_by_content(self):
        session = AnalysisSession()
        circuit, spec = build_miller_ota()
        first = session.symbolic_transfer(circuit, spec)
        hits_before = session.hits
        again = session.symbolic_transfer(circuit.copy("copy"), spec)
        assert again is first
        assert session.hits > hits_before

    def test_network_function_delegates_to_session(self):
        session = AnalysisSession()
        circuit, spec = build_miller_ota()
        first = symbolic_network_function(circuit, spec, session=session)
        again = symbolic_network_function(circuit, spec, session=session)
        assert again is first

    def test_determinant_shares_engine_with_transfer(self):
        session = AnalysisSession()
        circuit, spec = build_miller_ota()
        denominator = session.symbolic_determinant(circuit, spec)
        engine, __ = session.symbolic_engine(circuit, spec)
        misses = engine.stats.minor_misses
        transfer = session.symbolic_transfer(circuit, spec)
        # The transfer's denominator re-used every memoized minor.
        assert engine.stats.minor_misses > misses  # numerator minors only
        assert _multiset(transfer.denominator) == _multiset(denominator)
        phase_hits, phase_misses = engine.stats.phases["denominator"]
        assert phase_misses == 0 and phase_hits >= 1

    def test_mutation_misses_the_cache(self):
        session = AnalysisSession()
        circuit, spec = build_miller_ota()
        first = session.symbolic_transfer(circuit, spec)
        mutated = circuit.copy("mutated")
        mutated.replace(type(mutated["CL"])("CL", "vout", "0", 9e-12))
        second = session.symbolic_transfer(mutated, spec)
        assert second is not first

    def test_invalidate_drops_symbolic_entries(self):
        session = AnalysisSession()
        circuit, spec = build_miller_ota()
        session.symbolic_transfer(circuit, spec)
        assert session.invalidate(circuit) > 0
