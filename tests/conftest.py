"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="regenerate the committed golden snapshots in tests/golden/ "
             "instead of asserting against them",
    )

from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.ota import build_positive_feedback_ota
from repro.circuits.rc_ladder import build_rc_ladder
from repro.circuits.ua741 import build_ua741
from repro.netlist.circuit import Circuit
from repro.nodal.reduce import TransferSpec


@pytest.fixture(scope="session")
def rc_ladder_3():
    """3-stage RC ladder with non-uniform values (circuit, spec, R list, C list)."""
    resistances = [1e3, 2.2e3, 4.7e3]
    capacitances = [1e-9, 470e-12, 220e-12]
    circuit, spec = build_rc_ladder(3, resistances, capacitances)
    return circuit, spec, resistances, capacitances


@pytest.fixture(scope="session")
def ota_circuit():
    """Positive-feedback OTA (Fig. 1) circuit and spec."""
    return build_positive_feedback_ota()


@pytest.fixture(scope="session")
def miller_circuit():
    """Two-stage Miller OTA circuit and spec."""
    return build_miller_ota()


@pytest.fixture(scope="session")
def ua741_circuit():
    """µA741 small-signal macro circuit and spec (session-scoped: it is big)."""
    return build_ua741()


@pytest.fixture
def simple_rc():
    """Single-pole RC low-pass: R=1k, C=1n driven by Vin, output 'out'."""
    circuit = Circuit("rc")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit, TransferSpec(inputs=["vin"], output="out")


@pytest.fixture
def frequencies_decade():
    """Log frequency grid, 1 Hz – 100 MHz, 5 points per decade."""
    return np.logspace(0, 8, 41)
