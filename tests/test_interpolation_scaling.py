"""Tests for scale factors, valid regions and the Eq. 11-16 bookkeeping."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interpolation.regions import (
    ValidRegion,
    coefficient_log10,
    error_level,
    find_valid_region,
)
from repro.interpolation.scaling import (
    MACHINE_DIGITS,
    ScaleFactors,
    backward_update,
    denormalize_coefficients,
    forward_update,
    gap_update,
    initial_scale_factors,
    normalize_coefficient,
)
from repro.xfloat import XFloat


class TestScaleFactors:
    def test_defaults_and_properties(self):
        factors = ScaleFactors()
        assert factors.frequency == 1.0
        assert factors.conductance == 1.0
        assert factors.per_power_ratio == 1.0
        factors = ScaleFactors(1e9, 1e3)
        assert factors.log10_frequency == pytest.approx(9.0)
        assert factors.log10_conductance == pytest.approx(3.0)
        assert factors.max_factor() == pytest.approx(1e9)

    def test_positive_required(self):
        with pytest.raises(InterpolationError):
            ScaleFactors(frequency=-1.0)
        with pytest.raises(InterpolationError):
            ScaleFactors(conductance=0.0)

    def test_with_ratio_applied_splits_evenly(self):
        factors = ScaleFactors(1e6, 1e2).with_ratio_applied(1e4)
        assert factors.frequency == pytest.approx(1e8)
        assert factors.conductance == pytest.approx(1.0)
        # The per-power ratio grew by exactly q.
        assert factors.per_power_ratio == pytest.approx(1e8)
        with pytest.raises(InterpolationError):
            ScaleFactors().with_ratio_applied(-2.0)

    def test_initial_scale_heuristic(self, simple_rc):
        circuit, __ = simple_rc
        factors = initial_scale_factors(circuit)
        assert factors.frequency == pytest.approx(1.0 / 1e-9)
        assert factors.conductance == pytest.approx(1.0 / 1e-3)

    def test_initial_scale_without_caps(self):
        from repro.netlist.circuit import Circuit

        circuit = Circuit("r-only")
        circuit.add_resistor("R1", "a", "0", 1e3)
        factors = initial_scale_factors(circuit)
        assert factors.frequency == 1.0


class TestNormalization:
    def test_normalize_denormalize_roundtrip(self):
        factors = ScaleFactors(frequency=1e10, conductance=1e4)
        original = XFloat(-3.3, -150)
        normalized = normalize_coefficient(original, power=7,
                                           admittance_order=40, factors=factors)
        values = np.array([complex(normalized.mantissa)], dtype=complex)
        recovered = denormalize_coefficients(values, normalized.exponent,
                                             factors, 40)
        # power index 0 in the array corresponds to power 0; redo with aligned
        # arrays instead:
        expected_log = original.log10()
        assert normalized.log10() == pytest.approx(
            expected_log + 7 * 10 + (40 - 7) * 4)

    def test_denormalize_array(self):
        factors = ScaleFactors(frequency=1e9, conductance=1e3)
        # p'_i = p_i * f^i * g^(M-i) with M = 2; choose p = [1, 1, 1]
        normalized = [1e3 * 1e3, 1e9 * 1e3, 1e18]
        values = np.array(normalized, dtype=complex) / 1e6
        coefficients = denormalize_coefficients(values, 6, factors, 2)
        for coefficient in coefficients:
            assert coefficient.log10() == pytest.approx(0.0, abs=1e-9)

    def test_denormalize_preserves_sign_and_zero(self):
        factors = ScaleFactors()
        values = np.array([1.0, -2.0, 0.0], dtype=complex)
        coefficients = denormalize_coefficients(values, 0, factors, 2)
        assert coefficients[0].sign() == 1.0
        assert coefficients[1].sign() == -1.0
        assert coefficients[2].is_zero()

    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=1, max_value=60),
           st.floats(min_value=-200, max_value=200),
           st.floats(min_value=0.1, max_value=15.0),
           st.floats(min_value=-3.0, max_value=9.0))
    @settings(max_examples=150, deadline=None)
    def test_property_roundtrip(self, power, order, log_value, log_f, log_g):
        if power > order:
            power = order
        factors = ScaleFactors(10.0**log_f, 10.0**log_g)
        original = XFloat.from_log10(log_value, 1.0)
        normalized = normalize_coefficient(original, power, order, factors)
        # Build a one-entry array located at index `power`.
        values = np.zeros(power + 1, dtype=complex)
        values[power] = normalized.mantissa
        recovered = denormalize_coefficients(values, normalized.exponent,
                                             factors, order)[power]
        assert recovered.log10() == pytest.approx(original.log10(), abs=1e-6)


class TestUpdates:
    def test_forward_update_places_last_at_top(self):
        factors = ScaleFactors(1e10, 1e4)
        # last valid at index 12 with log10 -5, max at index 3 with log10 0.
        updated, q = forward_update(factors, 12, -5.0, 3, 0.0, tuning_r=0.0)
        # Solve: q^(12-3) = 10^(13 + 0 - (-5)) => q = 10^2
        assert math.log10(q) == pytest.approx(2.0)
        assert updated.per_power_ratio == pytest.approx(
            factors.per_power_ratio * q)

    def test_forward_update_degenerate_region(self):
        factors = ScaleFactors()
        updated, q = forward_update(factors, 5, 0.0, 5, 0.0)
        assert q == pytest.approx(10.0**MACHINE_DIGITS)

    def test_backward_update_gives_q_below_one(self):
        factors = ScaleFactors(1e10, 1e4)
        updated, q = backward_update(factors, 13, -4.0, 20, 0.0, tuning_r=0.0)
        # q^(13-20) = 10^(13+4) => log10 q = -17/7
        assert math.log10(q) == pytest.approx(-17.0 / 7.0)
        assert q < 1.0
        assert updated.per_power_ratio < factors.per_power_ratio

    def test_gap_update_geometric_mean(self):
        low = ScaleFactors(1e8, 1e4)
        high = ScaleFactors(1e12, 1e2)
        mid = gap_update(low, high)
        assert mid.frequency == pytest.approx(1e10)
        assert mid.conductance == pytest.approx(1e3)

    def test_tuning_r_increases_step(self):
        factors = ScaleFactors()
        __, q0 = forward_update(factors, 10, -6.0, 2, 0.0, tuning_r=0.0)
        __, q3 = forward_update(factors, 10, -6.0, 2, 0.0, tuning_r=3.0)
        assert q3 > q0


class TestRegions:
    def test_coefficient_log10(self):
        logs = coefficient_log10([1.0, 10.0, 0.0], common_exponent=2)
        assert logs[0] == pytest.approx(2.0)
        assert logs[1] == pytest.approx(3.0)
        assert logs[2] == -math.inf

    def test_error_level(self):
        assert error_level([1.0, 1e3]) == pytest.approx(3.0 - MACHINE_DIGITS)

    def test_find_valid_region_basic(self):
        # Coefficients decaying by 1e-4 per power: with sigma=6 the threshold
        # is max*1e-7, so only the first two powers qualify as a contiguous
        # region around the maximum at index 0.
        values = np.array([1.0, 1e-4, 1e-8, 1e-12])
        region = find_valid_region(values, significant_digits=6)
        assert region.max_index == 0
        assert (region.start, region.end) == (0, 1)
        assert region.indices == [0, 1]
        assert region.width == 2
        assert region.contains(1)
        assert not region.contains(2)
        assert region.threshold_log10 == pytest.approx(-7.0)
        assert region.error_level_log10 == pytest.approx(-13.0)
        assert region.mask == [True, True, False, False]

    def test_region_is_contiguous_around_max(self):
        values = np.array([1e-20, 1e-3, 1.0, 1e-2, 1e-30, 1e-5])
        region = find_valid_region(values, significant_digits=6)
        assert region.max_index == 2
        assert (region.start, region.end) == (1, 3)
        # index 5 is above the threshold but separated by index 4: not in the
        # contiguous region, still flagged in the mask.
        assert region.mask[5] is True or region.mask[5] == True  # noqa: E712
        assert not region.contains(5)

    def test_all_zero_raises(self):
        with pytest.raises(InterpolationError):
            find_valid_region(np.zeros(4))

    def test_sigma_validation(self):
        with pytest.raises(InterpolationError):
            find_valid_region(np.ones(3), significant_digits=0)
        with pytest.raises(InterpolationError):
            find_valid_region(np.ones(3), significant_digits=13)

    def test_higher_sigma_narrows_region(self):
        values = np.array([1.0, 1e-5, 1e-9])
        wide = find_valid_region(values, significant_digits=2)
        narrow = find_valid_region(values, significant_digits=6)
        assert wide.width >= narrow.width
