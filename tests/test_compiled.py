"""Tests for the compiled transfer-model layer (PR 8).

Covers the full lowering chain: :func:`compile_transfer_model` structure
and error paths, nominal / perturbed parity against the symbolic
evaluator, grid semantics (scalar ``s``, DC, mixed grids, zero and
negative slot values), the matrix-solve-free ensemble consumers in
:mod:`repro.montecarlo.compiled` cross-checked against the matrix-engine
:func:`~repro.montecarlo.engine.ensemble_sweep`, and the bit-parity
regression pinning :meth:`Polynomial.evaluate_many` to its pre-compiled
implementation.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.montecarlo import corner_analysis, monte_carlo_analysis
from repro.circuits.ua741 import UA741_MACRO_TOLERANCED, build_ua741_macro
from repro.errors import (FormulationError, SingularEvaluationError,
                          SymbolicError)
from repro.interpolation.polynomial import Polynomial
from repro.montecarlo import (ParameterSpace, compiled_corner_analysis,
                              compiled_ensemble_sweep, compiled_monte_carlo,
                              ensemble_sweep)
from repro.netlist.circuit import Circuit
from repro.nodal.reduce import TransferSpec
from repro.symbolic import (CompiledTransferModel, compile_transfer_model,
                            symbolic_network_function)
from repro.xfloat import XFloat

_PROBE_S = [2j * math.pi * f for f in (13.0, 997.0, 1.1e4, 2.3e5, 5.7e6)]

FREQUENCIES = np.logspace(1, 7, 13)


def _relative(reference, candidate):
    scale = np.maximum(np.maximum(np.abs(reference), np.abs(candidate)),
                       np.finfo(float).tiny)
    return float(np.max(np.abs(candidate - reference) / scale))


@pytest.fixture
def toleranced_rc():
    """Two-pole RC with ±10 % tolerances on every passive."""
    circuit = Circuit("rc2")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_resistor("R2", "mid", "out", 2.2e3)
    circuit.add_capacitor("C2", "out", "0", 470e-12)
    for name in ("R1", "C1", "R2", "C2"):
        circuit.replace(circuit[name].with_tolerance(0.1))
    return circuit, TransferSpec(inputs=["vin"], output="out")


# --------------------------------------------------------------------------- #
# compile-time structure and error paths
# --------------------------------------------------------------------------- #


class TestCompileStructure:
    def test_default_free_set_is_every_table_symbol(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        model = compile_transfer_model(transfer)
        assert isinstance(model, CompiledTransferModel)
        assert model.free_names == tuple(sorted(transfer.table))
        assert model.num_free == len(transfer.table)
        np.testing.assert_array_equal(
            model.nominal_values,
            [transfer.table[name].value for name in model.free_names])

    def test_explicit_free_set_fixes_slot_order(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile(free_symbols=["C1", "R1"])
        assert model.free_names == ("C1", "R1")
        assert model.slot_index("R1") == 1
        assert model.slot_index("C1") == 0

    def test_term_counts_survive_the_fold(self, miller_circuit):
        circuit, spec = miller_circuit
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile()
        assert model.term_count() == transfer.term_count()
        n_groups, d_groups = model.group_count()
        assert 0 < n_groups <= model.term_count()[0]
        assert 0 < d_groups <= model.term_count()[1]
        assert "CompiledTransferModel" in repr(model)

    def test_binding_collapses_groups(self, miller_circuit):
        """Fewer free symbols → more compile-time folding, fewer groups."""
        circuit, spec = miller_circuit
        transfer = symbolic_network_function(circuit, spec)
        wide = transfer.compile()
        narrow = transfer.compile(free_symbols=["CL"])
        assert sum(narrow.group_count()) < sum(wide.group_count())

    def test_transfer_compile_is_cached_per_free_set(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        assert transfer.compile() is transfer.compile()
        assert transfer.compile(["R1"]) is transfer.compile(["R1"])
        assert transfer.compile(["R1"]) is not transfer.compile()

    def test_unknown_free_symbol_rejected(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        with pytest.raises(SymbolicError, match="missing from the transfer"):
            compile_transfer_model(transfer, free_symbols=["Rnone"])

    def test_duplicate_free_symbols_rejected(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        with pytest.raises(SymbolicError, match="duplicate"):
            compile_transfer_model(transfer, free_symbols=["R1", "R1"])

    def test_missing_slot_named_in_error(self, simple_rc):
        circuit, spec = simple_rc
        model = symbolic_network_function(circuit, spec).compile(["R1"])
        with pytest.raises(SymbolicError, match="'C1' is not a free slot"):
            model.slot_index("C1")

    def test_bad_value_shapes_rejected(self, simple_rc):
        circuit, spec = simple_rc
        model = symbolic_network_function(circuit, spec).compile(["R1"])
        with pytest.raises(SymbolicError, match="values must be"):
            model.evaluate(np.ones((2, 3)), _PROBE_S)
        with pytest.raises(SymbolicError, match="values must be"):
            model.evaluate(np.ones((2, 1, 1)), _PROBE_S)


# --------------------------------------------------------------------------- #
# evaluation parity against the symbolic evaluator
# --------------------------------------------------------------------------- #


class TestEvaluateParity:
    @pytest.mark.parametrize("fixture", ["simple_rc", "miller_circuit"])
    def test_nominal_matches_symbolic_evaluate(self, fixture, request):
        circuit, spec = request.getfixturevalue(fixture)
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile()
        expected = np.array([transfer.evaluate(s) for s in _PROBE_S])
        got = model.evaluate_nominal(np.array(_PROBE_S))
        assert _relative(expected, got) <= 1e-9, fixture

    def test_perturbed_values_match_rebuilt_transfer(self, simple_rc):
        """Moving a free value equals regenerating the circuit there."""
        import dataclasses

        circuit, spec = simple_rc
        model = symbolic_network_function(circuit, spec).compile(["R1", "C1"])
        moved = circuit.copy()
        moved.replace(dataclasses.replace(circuit["R1"], value=1.3e3))
        rebuilt = symbolic_network_function(moved, spec)
        values = np.array([1.0 / 1.3e3, 1e-9])   # R enters as a conductance
        expected = np.array([rebuilt.evaluate(s) for s in _PROBE_S])
        got = model.evaluate(values, np.array(_PROBE_S))
        assert _relative(expected, got) <= 1e-9

    def test_macro_nominal_parity(self):
        circuit, spec = build_ua741_macro()
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile()
        expected = np.array([transfer.evaluate(s) for s in _PROBE_S])
        got = model.evaluate_nominal(np.array(_PROBE_S))
        assert _relative(expected, got) <= 1e-9


class TestGridSemantics:
    def test_scalar_s_and_vector_values_squeeze(self, simple_rc):
        circuit, spec = simple_rc
        model = symbolic_network_function(circuit, spec).compile()
        s = _PROBE_S[1]
        scalar = model.evaluate(model.nominal_values, s)
        assert np.ndim(scalar) == 0
        grid = model.evaluate(model.nominal_values[None, :], np.array([s]))
        assert grid.shape == (1, 1)
        assert scalar == grid[0, 0]

    def test_dc_point_matches_symbolic(self, simple_rc):
        circuit, spec = simple_rc
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile()
        dc = model.evaluate_nominal(0.0)
        assert dc == pytest.approx(transfer.evaluate(0.0), rel=1e-12)
        # Mixed grid: the DC column slots in alongside the AC points.
        mixed = model.evaluate_nominal(np.array([0.0, _PROBE_S[0]]))
        assert mixed[0] == pytest.approx(dc, rel=1e-12)
        assert mixed[1] == pytest.approx(transfer.evaluate(_PROBE_S[0]),
                                         rel=1e-9)

    def test_dc_singular_denominator_raises(self):
        """A purely capacitive divider has no DC path: D(0) = 0."""
        circuit = Circuit("cap-divider")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_capacitor("C1", "in", "out", 1e-9)
        circuit.add_capacitor("C2", "out", "0", 1e-9)
        spec = TransferSpec(inputs=["vin"], output="out")
        model = symbolic_network_function(circuit, spec).compile()
        with pytest.raises(SingularEvaluationError, match="s=0"):
            model.evaluate_nominal(0.0)
        # The AC grid is fine.
        value = model.evaluate_nominal(_PROBE_S[1])
        assert value == pytest.approx(0.5, rel=1e-9)

    def test_zero_slot_value_kills_terms(self, simple_rc):
        """C1 = 0 turns the RC pole into a wire: H = 1 at every s."""
        circuit, spec = simple_rc
        model = symbolic_network_function(circuit, spec).compile(["C1"])
        flat = model.evaluate(np.array([0.0]), np.array(_PROBE_S))
        np.testing.assert_allclose(flat, 1.0, rtol=1e-12)

    def test_negative_transconductance_sign_tracked(self):
        import dataclasses

        from repro.netlist.elements import VCCS

        circuit = Circuit("gm-stage")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("Rs", "in", "g", 1e3)
        circuit.add_capacitor("Cg", "g", "0", 2e-12)
        circuit.add_vccs("Gm", "out", "0", "g", "0", 1.5e-3)
        circuit.add_resistor("Ro", "out", "0", 5e4)
        circuit.add_capacitor("Co", "out", "0", 1e-12)
        spec = TransferSpec(inputs=["vin"], output="out")
        names = [element.name for element in circuit
                 if isinstance(element, VCCS)]
        transfer = symbolic_network_function(circuit, spec)
        model = transfer.compile(names)
        flipped = np.array([-transfer.table[name].value for name in names])
        moved = circuit.copy()
        for name in names:
            element = moved[name]
            moved.replace(dataclasses.replace(element, gm=-element.gm))
        rebuilt = symbolic_network_function(moved, spec)
        expected = np.array([rebuilt.evaluate(s) for s in _PROBE_S])
        got = model.evaluate(flipped, np.array(_PROBE_S))
        assert _relative(expected, got) <= 1e-9


# --------------------------------------------------------------------------- #
# the matrix-solve-free ensemble consumers
# --------------------------------------------------------------------------- #


class TestCompiledEnsemble:
    def test_matches_matrix_ensemble_sample_by_sample(self, toleranced_rc):
        circuit, spec = toleranced_rc
        space = ParameterSpace(circuit)
        values = space.sample_values(32, seed=11)
        matrix = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                values=values)
        compiled = compiled_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                           values=values)
        assert compiled.solver == "compiled"
        assert compiled.responses.shape == matrix.responses.shape
        np.testing.assert_array_equal(compiled.values, values)
        assert _relative(matrix.responses, compiled.responses) <= 1e-9

    def test_macro_ensemble_parity(self):
        circuit, spec = build_ua741_macro()
        space = ParameterSpace(circuit)
        assert sorted(space.names) == sorted(UA741_MACRO_TOLERANCED)
        values = space.sample_values(16, seed=5)
        frequencies = np.logspace(0, 8, 17)
        matrix = ensemble_sweep(circuit, spec, frequencies, space,
                                values=values)
        compiled = compiled_ensemble_sweep(circuit, spec, frequencies, space,
                                           values=values)
        assert _relative(matrix.responses, compiled.responses) <= 1e-9

    def test_inductor_axis_maps_to_gyrator_load(self):
        """An RLC with a toleranced inductor routes through the .cl slot."""
        circuit = Circuit("rlc")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 50.0)
        circuit.add_inductor("L1", "out", "mid", 1e-3)
        circuit.add_capacitor("C1", "mid", "0", 1e-8)
        circuit.add_resistor("R2", "mid", "0", 1e3)
        for name in ("R1", "L1", "C1"):
            circuit.replace(circuit[name].with_tolerance(0.05))
        spec = TransferSpec(inputs=["vin"], output="mid")
        space = ParameterSpace(circuit)
        values = space.sample_values(8, seed=3)
        matrix = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                values=values)
        compiled = compiled_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                           values=values)
        assert _relative(matrix.responses, compiled.responses) <= 1e-9

    def test_default_draws_match_matrix_path(self, toleranced_rc):
        """Same (samples, seed) → same element draws as ensemble_sweep."""
        circuit, spec = toleranced_rc
        matrix = ensemble_sweep(circuit, spec, FREQUENCIES, samples=12,
                                seed=7)
        compiled = compiled_ensemble_sweep(circuit, spec, FREQUENCIES,
                                           samples=12, seed=7)
        np.testing.assert_array_equal(compiled.values, matrix.values)
        assert _relative(matrix.responses, compiled.responses) <= 1e-9

    def test_bare_output_node_accepted(self, toleranced_rc):
        circuit, __ = toleranced_rc
        result = compiled_ensemble_sweep(circuit, "out", FREQUENCIES,
                                         samples=4, seed=1)
        assert result.responses.shape == (4, len(FREQUENCIES))

    def test_sourceless_circuit_rejected(self):
        circuit = Circuit("floating")
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_capacitor("C1", "a", "0", 1e-9)
        circuit.replace(circuit["R1"].with_tolerance(0.1))
        with pytest.raises(FormulationError, match="no .*independent sources"):
            compiled_ensemble_sweep(circuit, "a", FREQUENCIES, samples=2)

    def test_bad_values_shape_rejected(self, toleranced_rc):
        circuit, spec = toleranced_rc
        space = ParameterSpace(circuit)
        with pytest.raises(FormulationError, match="values must be"):
            compiled_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=np.ones((4, 2)))

    def test_wider_model_routes_axes_to_slots(self, toleranced_rc):
        """A model compiled over *all* symbols still serves a narrow space."""
        circuit, spec = toleranced_rc
        narrowed = circuit.copy()
        for name in ("C1", "R2"):
            narrowed.replace(narrowed[name].with_tolerance(None))
        transfer = symbolic_network_function(narrowed, spec)
        wide = transfer.compile()          # every table symbol stays free
        space = ParameterSpace(narrowed)
        assert space.names == ["R1", "C2"]
        values = space.sample_values(8, seed=2)
        matrix = ensemble_sweep(narrowed, spec, FREQUENCIES, space,
                                values=values)
        compiled = compiled_ensemble_sweep(narrowed, spec, FREQUENCIES,
                                           space, values=values, model=wide)
        assert _relative(matrix.responses, compiled.responses) <= 1e-9

    def test_model_missing_a_slot_is_an_error(self, toleranced_rc):
        circuit, spec = toleranced_rc
        narrow = symbolic_network_function(circuit, spec).compile(["R1"])
        space = ParameterSpace(circuit)
        with pytest.raises(SymbolicError, match="not a free slot"):
            compiled_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    samples=2, model=narrow)


class TestCompiledConsumers:
    def test_monte_carlo_result_consumers_work(self, toleranced_rc):
        circuit, spec = toleranced_rc
        result = compiled_monte_carlo(circuit, spec, FREQUENCIES, samples=24,
                                      seed=9)
        reference = monte_carlo_analysis(circuit, spec, FREQUENCIES,
                                         samples=24, seed=9)
        assert _relative(reference.nominal_response,
                         result.nominal_response) <= 1e-9
        envelope = result.envelope()
        np.testing.assert_allclose(envelope.minimum_db,
                                   reference.envelope().minimum_db,
                                   atol=1e-7)
        attribution = result.attribution()
        assert {entry.name for entry in attribution} == {"R1", "C1", "R2",
                                                         "C2"}

    def test_corner_analysis_matches_matrix_corners(self, toleranced_rc):
        circuit, spec = toleranced_rc
        compiled = compiled_corner_analysis(circuit, spec, FREQUENCIES)
        matrix = corner_analysis(circuit, spec, FREQUENCIES)
        np.testing.assert_array_equal(compiled.values, matrix.values)
        np.testing.assert_allclose(compiled.worst_low_db,
                                   matrix.worst_low_db, atol=1e-7)
        np.testing.assert_allclose(compiled.worst_high_db,
                                   matrix.worst_high_db, atol=1e-7)

    def test_session_shares_one_compilation(self, toleranced_rc):
        from repro.engine.session import AnalysisSession

        circuit, spec = toleranced_rc
        session = AnalysisSession()
        compiled_monte_carlo(circuit, spec, FREQUENCIES, samples=8, seed=1,
                             session=session)
        compiled_corner_analysis(circuit, spec, session=session,
                                 frequencies=FREQUENCIES)
        stats = session.stats()["compiled"]
        assert stats["compiles"] == 1
        assert stats["hits"] >= 2


# --------------------------------------------------------------------------- #
# the shared polynomial grid kernel: bit-parity regression
# --------------------------------------------------------------------------- #


def _legacy_evaluate_many(polynomial, s_values):
    """Verbatim copy of the pre-compiled ``Polynomial.evaluate_many``.

    The regression contract below pins the compiled kernel to this exact
    arithmetic — any bit drift in the interpolation layer's batched
    evaluation path fails the parity assertions.
    """
    s = np.asarray(s_values, dtype=complex)
    shape = s.shape
    s = s.ravel()
    mantissas = np.zeros(s.shape, dtype=complex)
    exponents = np.zeros(s.shape, dtype=np.int64)
    zero_points = s == 0
    if zero_points.any():
        mantissa, exponent = polynomial.evaluate(0.0)
        mantissas[zero_points] = mantissa
        exponents[zero_points] = exponent
    live = ~zero_points
    if live.any():
        coefficients = polynomial.coefficients
        powers = np.array([power for power, coefficient
                           in enumerate(coefficients)
                           if not coefficient.is_zero()], dtype=float)
        if powers.size:
            log_coefficients = np.array([
                coefficient.log10() for coefficient in coefficients
                if not coefficient.is_zero()
            ])
            coefficient_phases = np.array([
                0.0 if coefficient.sign() > 0 else math.pi
                for coefficient in coefficients
                if not coefficient.is_zero()
            ])
            log_s = np.log10(np.abs(s[live]))
            arg_s = np.angle(s[live])
            log_magnitude = (log_coefficients[:, None]
                             + powers[:, None] * log_s[None, :])
            phase = (coefficient_phases[:, None]
                     + powers[:, None] * arg_s[None, :])
            peak = log_magnitude.max(axis=0)
            exponent = np.floor(peak).astype(np.int64)
            shift = log_magnitude - exponent[None, :]
            terms = np.where(shift < -300.0, 0.0, 10.0**shift)
            mantissas[live] = (terms * np.exp(1j * phase)).sum(axis=0)
            exponents[live] = exponent
    return mantissas.reshape(shape), exponents.reshape(shape)


class TestPolynomialGridBitParity:
    def _assert_bit_parity(self, polynomial, s):
        mantissas, exponents = polynomial.evaluate_many(s)
        expected_m, expected_e = _legacy_evaluate_many(polynomial, s)
        np.testing.assert_array_equal(mantissas, expected_m)
        np.testing.assert_array_equal(exponents, expected_e)

    def test_synthetic_extended_range(self):
        polynomial = Polynomial([XFloat(2.5, 80), XFloat(-1.0, -120),
                                 XFloat.zero(), XFloat(7.0, 200)])
        s = np.concatenate([np.asarray(_PROBE_S), [0.0, -3.0 + 0.0j,
                                                   1e-30 + 1e-30j]])
        self._assert_bit_parity(polynomial, s)

    @pytest.mark.parametrize("fixture", ["simple_rc", "miller_circuit"])
    def test_golden_circuit_polynomials(self, fixture, request):
        """The reference generator's polynomials stay bit-identical."""
        from repro.interpolation.reference import generate_reference

        circuit, spec = request.getfixturevalue(fixture)
        reference = generate_reference(circuit, spec)
        rational = reference.transfer_function()
        s = np.asarray(_PROBE_S + [0.0])
        for polynomial in (rational.numerator, rational.denominator):
            self._assert_bit_parity(polynomial, s)
        # And the combined rational path on top of it.
        response = rational.frequency_response(FREQUENCIES)
        assert np.isfinite(response).all()

    def test_compiled_arrays_cached_per_instance(self):
        polynomial = Polynomial([1.0, 2.0, 3.0])
        polynomial.evaluate_many(np.asarray(_PROBE_S))
        first = polynomial._compiled
        assert first is not None
        polynomial.evaluate_many(np.asarray(_PROBE_S))
        assert polynomial._compiled is first
        # Algebra returns fresh instances with their own compiled state.
        doubled = polynomial + polynomial
        assert doubled._compiled is None
