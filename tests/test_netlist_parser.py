"""Tests for the SPICE-like netlist parser."""

import pytest

from repro.errors import ParseError
from repro.netlist.elements import (
    CCCS,
    Capacitor,
    Conductor,
    CurrentSource,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.netlist.parser import parse_netlist


class TestPrimitives:
    def test_basic_rc(self):
        circuit = parse_netlist("""
        * simple RC
        Vin in 0 ac 1
        R1 in out 1k
        C1 out 0 1n
        .end
        """)
        assert len(circuit) == 3
        assert isinstance(circuit["R1"], Resistor)
        assert circuit["R1"].value == pytest.approx(1e3)
        assert circuit["C1"].value == pytest.approx(1e-9)
        assert circuit["Vin"].value == pytest.approx(1.0)

    def test_all_source_types(self):
        circuit = parse_netlist("""
        V1 a 0 ac 2
        I1 a 0 ac 1m
        G1 b 0 a 0 2m
        E1 c 0 a 0 10
        F1 d 0 V1 5
        H1 e 0 V1 100
        R1 a b 1k
        R2 c d 1k
        R3 e 0 1k
        R4 b 0 1k
        R5 d 0 1k
        """)
        assert isinstance(circuit["I1"], CurrentSource)
        assert circuit["I1"].value == pytest.approx(1e-3)
        assert isinstance(circuit["G1"], VCCS)
        assert circuit["G1"].gm == pytest.approx(2e-3)
        assert isinstance(circuit["E1"], VCVS)
        assert isinstance(circuit["F1"], CCCS)
        assert circuit["H1"].gain == pytest.approx(100.0)

    def test_inductor(self):
        circuit = parse_netlist("L1 a 0 10u\nR1 a 0 50")
        assert isinstance(circuit["L1"], Inductor)
        assert circuit["L1"].value == pytest.approx(10e-6)

    def test_title_and_comments(self):
        circuit = parse_netlist("""* my amplifier
        R1 a 0 1k  ; load
        * another comment
        C1 a 0 1p
        """)
        assert circuit.title == "my amplifier"
        assert len(circuit) == 2

    def test_continuation_lines(self):
        circuit = parse_netlist("""
        G1 out 0
        + in 0
        + 5m
        R1 out 0 1k
        Rin in 0 1k
        """)
        assert circuit["G1"].gm == pytest.approx(5e-3)

    def test_end_card_stops_parsing(self):
        circuit = parse_netlist("R1 a 0 1k\n.end\nR2 b 0 1k")
        assert "R1" in circuit
        assert "R2" not in circuit

    def test_ground_aliases(self):
        circuit = parse_netlist("R1 a GND 1k\nR2 a 0 2k")
        assert circuit["R1"].node_neg == "0"


class TestErrors:
    def test_unknown_element_letter(self):
        with pytest.raises(ParseError):
            parse_netlist("Z1 a b 1k")

    def test_missing_fields(self):
        with pytest.raises(ParseError) as excinfo:
            parse_netlist("R1 a 1k")
        assert excinfo.value.line_number is not None

    def test_continuation_without_previous_line(self):
        with pytest.raises(ParseError):
            parse_netlist("+ R1 a b 1k")

    def test_unknown_model(self):
        with pytest.raises(ParseError):
            parse_netlist("M1 d g s 0 nodef")

    def test_unterminated_subckt(self):
        with pytest.raises(ParseError):
            parse_netlist(".subckt foo a b\nR1 a b 1k")

    def test_unknown_subckt_instance(self):
        with pytest.raises(ParseError):
            parse_netlist("X1 a b missing")

    def test_bad_value(self):
        with pytest.raises(ParseError):
            parse_netlist("R1 a b notanumber")


class TestDevices:
    def test_mosfet_expansion_from_model(self):
        circuit = parse_netlist("""
        .model nch nmos (gm=1m gds=20u cgs=50f cgd=5f cdb=10f)
        Vin in 0 ac 1
        M1 out in 0 0 nch
        RL out 0 100k
        """)
        assert "M1.gm" in circuit
        assert isinstance(circuit["M1.gm"], VCCS)
        assert circuit["M1.gm"].gm == pytest.approx(1e-3)
        assert isinstance(circuit["M1.gds"], Conductor)
        assert circuit["M1.cgs"].value == pytest.approx(50e-15)
        # Zero-valued parameters are not instantiated.
        assert "M1.gmb" not in circuit
        assert "M1.cgb" not in circuit

    def test_mosfet_instance_params_override_model(self):
        circuit = parse_netlist("""
        .model nch nmos (gm=1m gds=20u cgs=50f cgd=5f)
        M1 d g 0 0 nch gm=2m
        Rg g 0 1k
        Rd d 0 10k
        """)
        assert circuit["M1.gm"].gm == pytest.approx(2e-3)

    def test_mosfet_operating_point_model(self):
        circuit = parse_netlist("""
        .model nch nmos (id=100u vov=0.2 lambda=0.1 cgs=20f cgd=2f)
        M1 d g 0 0 nch
        Rg g 0 1k
        Rd d 0 10k
        """)
        assert circuit["M1.gm"].gm == pytest.approx(2 * 100e-6 / 0.2)
        assert circuit["M1.gds"].value == pytest.approx(0.1 * 100e-6)

    def test_bjt_expansion(self):
        circuit = parse_netlist("""
        .model qn npn (beta=100 va=50 tf=0.3n cje=1p cmu=0.5p rb=100 ccs=2p)
        Q1 c b 0 qn ic=1m
        Rb b 0 10k
        Rc c 0 5k
        """)
        gm = 1e-3 / 0.02585
        assert circuit["Q1.gm"].gm == pytest.approx(gm, rel=1e-6)
        assert circuit["Q1.gpi"].value == pytest.approx(gm / 100, rel=1e-6)
        assert circuit["Q1.go"].value == pytest.approx(1e-3 / 50, rel=1e-6)
        # Base resistance creates the internal node Q1.b
        assert "Q1.gb" in circuit
        assert "Q1.b" in circuit.nodes
        assert circuit["Q1.ccs"].value == pytest.approx(2e-12)

    def test_diode_expansion(self):
        circuit = parse_netlist("""
        .model dd d (id=1m cj=2p)
        D1 a 0 dd
        Ra a 0 1k
        """)
        assert circuit["D1.gd"].value == pytest.approx(1e-3 / 0.02585, rel=1e-6)
        assert circuit["D1.cd"].value == pytest.approx(2e-12)


class TestSubcircuits:
    NETLIST = """
    .subckt divider top bottom
    R1 top mid 1k
    R2 mid bottom 1k
    C1 mid bottom 1p
    .ends
    Vin in 0 ac 1
    X1 in 0 divider
    X2 in out divider
    RL out 0 10k
    """

    def test_flattening_names_and_nodes(self):
        circuit = parse_netlist(self.NETLIST)
        assert "X1.R1" in circuit
        assert "X2.R2" in circuit
        # Internal node gets the instance prefix, ports map to actual nodes.
        assert circuit["X1.R1"].node_pos == "in"
        assert circuit["X1.R1"].node_neg == "X1.mid"
        assert circuit["X2.R2"].node_neg == "out"
        assert circuit["X1.R2"].node_neg == "0"

    def test_port_count_mismatch(self):
        with pytest.raises(ParseError):
            parse_netlist("""
            .subckt divider a b
            R1 a b 1k
            .ends
            X1 in divider
            """)

    def test_flattened_element_count(self):
        circuit = parse_netlist(self.NETLIST)
        # 2 instances x 3 elements + Vin + RL
        assert len(circuit) == 8
