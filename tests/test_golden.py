"""Golden-snapshot regression suite over the library circuits.

Committed JSON snapshots under ``tests/golden/`` pin, per circuit:

* the complex AC response over a fixed log grid (floats stored via
  ``float.hex()``, so the files round-trip exactly),
* SDG statistics (term totals, kept terms at ε = 0.1 and a content hash of
  the kept multiset) and SBG outcomes (removed element names) for the
  circuits whose exact symbolic expansion is test-budget feasible.

The suite turns the bit-parity claims of CHANGES.md into enforced checks
instead of anecdotes:

* against the snapshots, responses must match to a symmetric 1e-9 relative
  bound always, and **bit-for-bit** when ``REPRO_GOLDEN_EXACT=1`` (exactness
  across machines additionally depends on the BLAS/libm build, hence the
  opt-in; on the machine that wrote the snapshots it must hold),
* independently of any snapshot, the batched and per-point sampler paths
  are asserted bit-identical on every library circuit at test time.

Regenerate after an intentional numerical change with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.circuits import (
    build_cascode_amplifier,
    build_clock_tree,
    build_coupled_bus,
    build_miller_ota,
    build_positive_feedback_ota,
    build_rc_ladder,
    build_rc_mesh,
    build_sallen_key_lowpass,
    build_tow_thomas_biquad,
    build_ua741,
    build_ua741_macro,
)
from repro.interpolation.reference import generate_reference
from repro.netlist.transform import to_admittance_form
from repro.nodal.sampler import NetworkFunctionSampler
from repro.symbolic.sbg import simplification_before_generation
from repro.symbolic.sdg import simplification_during_generation

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: The library circuits (the RC ladder represents its family), plus one
#: mid-size generator circuit per post-layout family — all three sit above
#: the default dense cutoff, so their snapshots pin the ordered sparse
#: dispatch path end to end.
LIBRARY_CIRCUITS = [
    ("rc_ladder_5", lambda: build_rc_ladder(5)),
    ("positive_feedback_ota", build_positive_feedback_ota),
    ("ua741", build_ua741),
    ("ua741_macro", build_ua741_macro),
    ("miller_ota", build_miller_ota),
    ("cascode", build_cascode_amplifier),
    ("sallen_key", build_sallen_key_lowpass),
    ("tow_thomas", build_tow_thomas_biquad),
    ("gen_rc_mesh_14", lambda: build_rc_mesh(14)),           # n = 198
    ("gen_clock_tree_7", lambda: build_clock_tree(7)),       # n = 257
    ("gen_coupled_bus_10x20", lambda: build_coupled_bus(10, 20)),  # n = 202
]

#: Circuits small enough for exact symbolic expansion + reference generation
#: inside the test budget (the µA741 pair is symbolically infeasible /
#: seconds-long and covered by benchmarks/bench_sdg.py).
SYMBOLIC_CIRCUITS = {"rc_ladder_5", "miller_ota", "cascode", "sallen_key",
                     "tow_thomas"}

BODE_FREQUENCIES = np.logspace(0.0, 8.0, 25)
SDG_EPSILON = 0.1
SBG_EPSILON = 0.05

_EXACT = os.environ.get("REPRO_GOLDEN_EXACT", "") not in ("", "0")


def _hex_pairs(values):
    return [[float(value.real).hex(), float(value.imag).hex()]
            for value in np.asarray(values, dtype=complex)]


def _from_hex_pairs(pairs):
    return np.array([complex(float.fromhex(real), float.fromhex(imag))
                     for real, imag in pairs])


def _term_multiset_hash(expression):
    """Stable content hash of a symbolic expression's term multiset."""
    digest = hashlib.sha256()
    for symbols, s_power in sorted((term.symbols, term.s_power)
                                   for term in expression.terms):
        digest.update(repr((symbols, s_power)).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _build_snapshot(name, builder):
    circuit, spec = builder()
    response = ACAnalysis(circuit, spec).frequency_response(BODE_FREQUENCIES)
    snapshot = {
        "bode": {
            "frequencies": [float(f).hex() for f in BODE_FREQUENCIES],
            "response": _hex_pairs(response),
        },
    }
    if name in SYMBOLIC_CIRCUITS:
        reference = generate_reference(circuit, spec)
        sdg = simplification_during_generation(circuit, spec, reference,
                                               epsilon=SDG_EPSILON)
        kept, total = sdg.total_terms()
        snapshot["sdg"] = {
            "epsilon": SDG_EPSILON,
            "kept_terms": kept,
            "total_terms": total,
            "numerator_hash": _term_multiset_hash(sdg.simplified.numerator),
            "denominator_hash": _term_multiset_hash(
                sdg.simplified.denominator),
        }
        sbg = simplification_before_generation(circuit, spec, reference,
                                               epsilon=SBG_EPSILON)
        snapshot["sbg"] = {
            "epsilon": SBG_EPSILON,
            "removed": list(sbg.removed_names),
            "rejected": list(sbg.rejected),
            "final_error": float(sbg.final_error).hex(),
        }
    return snapshot


def _assert_responses(stored, computed):
    reference = _from_hex_pairs(stored)
    if _EXACT:
        assert np.array_equal(reference, computed), (
            "bit-exact golden comparison failed (REPRO_GOLDEN_EXACT=1)")
    scale = np.maximum(np.maximum(np.abs(reference), np.abs(computed)),
                       np.finfo(float).tiny)
    deviation = float(np.max(np.abs(computed - reference) / scale))
    assert deviation <= 1e-9, f"response drifted by {deviation:.3e}"


@pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS)
def test_golden_snapshot(name, builder, request):
    path = GOLDEN_DIR / f"{name}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(_build_snapshot(name, builder), indent=1)
                        + "\n")
        pytest.skip(f"updated {path.name}")
    assert path.exists(), (
        f"missing golden snapshot {path.name}; run pytest with "
        "--update-golden to create it")
    stored = json.loads(path.read_text())

    circuit, spec = builder()
    grid = np.array([float.fromhex(f)
                     for f in stored["bode"]["frequencies"]])
    response = ACAnalysis(circuit, spec).frequency_response(grid)
    _assert_responses(stored["bode"]["response"], response)

    if name in SYMBOLIC_CIRCUITS:
        reference = generate_reference(circuit, spec)
        sdg = simplification_during_generation(
            circuit, spec, reference, epsilon=stored["sdg"]["epsilon"])
        kept, total = sdg.total_terms()
        assert kept == stored["sdg"]["kept_terms"], name
        assert total == stored["sdg"]["total_terms"], name
        assert (_term_multiset_hash(sdg.simplified.numerator)
                == stored["sdg"]["numerator_hash"]), name
        assert (_term_multiset_hash(sdg.simplified.denominator)
                == stored["sdg"]["denominator_hash"]), name

        sbg = simplification_before_generation(
            circuit, spec, reference, epsilon=stored["sbg"]["epsilon"])
        assert list(sbg.removed_names) == stored["sbg"]["removed"], name
        assert list(sbg.rejected) == stored["sbg"]["rejected"], name
        stored_error = float.fromhex(stored["sbg"]["final_error"])
        assert sbg.final_error == pytest.approx(stored_error, rel=1e-9,
                                                abs=1e-30), name


@pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS)
def test_batched_sampler_bit_parity(name, builder):
    """CHANGES.md parity claim, enforced: batch and per-point paths agree
    bit-for-bit on every dense-dispatch library circuit (no stored floats
    involved).  Above the dense cutoff the batched sweep reuses the first
    point's pivot pattern while the per-point path re-pivots freshly at
    every frequency — deliberately different pivot sequences — so the
    generator circuits assert a tight relative bound instead."""
    circuit, spec = builder()
    admittance = to_admittance_form(circuit)
    sampler = NetworkFunctionSampler(admittance, spec)
    points = (2j * np.pi * np.logspace(1.0, 7.0, 7)).tolist()
    batched = sampler.sample_many(points, batch=True)
    pointwise = NetworkFunctionSampler(admittance, spec).sample_many(
        points, batch=False)
    from repro.linalg.config import dense_cutoff

    exact = sampler.dimension <= dense_cutoff()
    for index, (fast, slow) in enumerate(zip(batched, pointwise)):
        if exact:
            assert fast.numerator == slow.numerator, (name, index)
            assert fast.denominator == slow.denominator, (name, index)
        else:
            assert fast.transfer() == pytest.approx(
                slow.transfer(), rel=1e-9), (name, index)
