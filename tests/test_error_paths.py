"""Error-path coverage for the parser and the experiment runners (PR 5).

The two thinnest-covered surfaces before this PR: malformed netlist input
(duplicate names, dangling nodes, zero-value edge cases) and the failure /
degenerate branches of :mod:`repro.reporting.experiments`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParseError, ValidationError
from repro.netlist.parser import parse_netlist
from repro.netlist.validate import validate_circuit
from repro.reporting import experiments
from repro.reporting.experiments import (
    BatchSweepResult,
    MonteCarloEnsembleResult,
    SensitivityScreeningResult,
    run_symbolic_kernel,
    ua741_tolerance_space,
)


class TestParserMalformedInput:
    def test_duplicate_element_names(self):
        with pytest.raises(ParseError, match="duplicate element name"):
            parse_netlist("R1 a 0 1k\nR1 b 0 2k\n")
        # Element names are case-insensitive, like SPICE.
        with pytest.raises(ParseError, match="duplicate element name"):
            parse_netlist("R1 a 0 1k\nr1 b 0 2k\n")

    def test_both_terminals_on_one_node(self):
        with pytest.raises(ParseError, match="both terminals"):
            parse_netlist("R1 a a 1k\n")

    def test_zero_and_negative_values(self):
        with pytest.raises(ParseError, match="non-positive resistance"):
            parse_netlist("R1 a 0 0\n")
        with pytest.raises(ParseError, match="non-positive resistance"):
            parse_netlist("R1 a 0 -1k\n")
        with pytest.raises(ParseError, match="negative capacitance"):
            parse_netlist("C1 a 0 -1p\n")
        with pytest.raises(ParseError, match="non-positive inductance"):
            parse_netlist("L1 a 0 0\n")
        # Zero-valued conductors and sources are legal (gds = 0, AC-off
        # source) and must parse cleanly.
        circuit = parse_netlist("V1 a 0 0\nR1 a 0 1k\n")
        assert circuit["V1"].value == 0.0

    def test_error_carries_line_number(self):
        with pytest.raises(ParseError) as excinfo:
            parse_netlist("* title\nR1 a 0 1k\nR2 b b 1k\n")
        assert excinfo.value.line_number == 3
        assert "line 3" in str(excinfo.value)

    def test_model_card_needs_name_and_type(self):
        with pytest.raises(ParseError, match=r"\.model needs"):
            parse_netlist(".model onlyname\n")
        with pytest.raises(ParseError, match=r"\.subckt needs"):
            parse_netlist(".subckt\n.ends\n")

    def test_dangling_node_reported_by_validation(self):
        circuit = parse_netlist("V1 in 0 ac 1\nR1 in out 1k\nR2 out 0 1k\n"
                                "C1 lonely 0 1p\n")
        report = validate_circuit(circuit, raise_on_error=False)
        assert not report.ok or report.warnings
        joined = " ".join(report.errors + report.warnings)
        assert "lonely" in joined

    def test_ignored_dot_cards_are_collected_not_fatal(self):
        circuit = parse_netlist(".options reltol=1e-4\nR1 a 0 1k\n.end\n")
        assert "R1" in circuit


class TestSamplingValidation:
    """ISSUE 10 satellite: malformed sampling requests fail with a typed
    :class:`~repro.errors.ValidationError`, never a silent empty draw or a
    bare numpy exception."""

    @pytest.fixture(scope="class")
    def space(self):
        from repro.circuits.rc_ladder import build_rc_ladder
        from repro.montecarlo import ParameterSpace

        circuit, __ = build_rc_ladder(3)
        names = [element.name for element in circuit
                 if type(element).__name__ in ("Resistor", "Capacitor")][:2]
        return ParameterSpace(circuit, {name: 0.1 for name in names})

    def test_unknown_method_is_rejected(self, space):
        with pytest.raises(ValidationError,
                           match="unknown sampling method 'halton'"):
            space.sample_values(8, method="halton")

    def test_out_of_range_counts_are_rejected(self, space):
        for bad in (0, -4):
            with pytest.raises(ValidationError, match="must be positive"):
                space.sample_values(bad)
        with pytest.raises(ValidationError, match="must be an integer"):
            space.sample_values(2.5)
        with pytest.raises(ValidationError, match="must be an integer"):
            space.sample_multipliers("many")

    def test_validation_error_is_a_netlist_error(self):
        from repro.errors import NetlistError

        assert issubclass(ValidationError, NetlistError)

    def test_qmc_generators_validate_directly(self):
        from repro.montecarlo.qmc import (SOBOL_MAX_DIMS,
                                          latin_hypercube_uniforms,
                                          sobol_uniforms)

        with pytest.raises(ValidationError, match="count must be positive"):
            sobol_uniforms(0, 2)
        with pytest.raises(ValidationError, match="dimension count"):
            sobol_uniforms(4, 0)
        with pytest.raises(ValidationError, match="sobol sampling supports"):
            sobol_uniforms(4, SOBOL_MAX_DIMS + 1)
        with pytest.raises(ValidationError, match="count must be positive"):
            latin_hypercube_uniforms(-1, 2)

    def test_importance_sample_validation(self, space):
        with pytest.raises(ValidationError, match="must be positive"):
            space.importance_sample(0)
        with pytest.raises(ValidationError, match="scale"):
            space.importance_sample(8, scale=0.0)
        with pytest.raises(ValidationError, match="mixture"):
            space.importance_sample(8, mixture=1.0)
        with pytest.raises(ValidationError, match="unknown axis"):
            space.importance_sample(8, shift={"nonexistent": 1.0})


class TestExperimentErrorPaths:
    def test_symbolic_kernel_rejects_empty_epsilons(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_symbolic_kernel(epsilons=())

    def test_zero_time_speedups_are_infinite(self):
        batch = BatchSweepResult(
            circuit_name="x", dimension=3, num_points=2,
            pointwise_seconds=1.0, batched_seconds=0.0,
            max_relative_deviation=0.0, bitwise_identical=True)
        assert batch.speedup == float("inf")
        screening = SensitivityScreeningResult(
            circuit_name="x", dimension=3, num_elements=2,
            num_frequencies=2, rank1_seconds=0.0, rebuild_seconds=1.0,
            max_relative_deviation=0.0, ranking_identical=True,
            singular_sets_identical=True)
        assert screening.speedup == float("inf")
        ensemble = MonteCarloEnsembleResult(
            circuit_name="x", dimension=3, num_samples=4,
            num_frequencies=2, num_axes=1, rebuild_seconds=1.0,
            vectorized_seconds=0.0, exact_arm_seconds=0.0,
            exact_deviation=0.0, lapack_relative_deviation=0.0,
            batch_invariant=True)
        assert ensemble.speedup == float("inf")
        assert ensemble.exact_arm_speedup == float("inf")
        assert "batch-invariant ok" in ensemble.describe()

    def test_screening_deviation_flags_none_mismatch(self):
        from repro.analysis.sensitivity import ElementScreening, ScreeningResult

        frequencies = np.array([1.0, 10.0])
        baseline = np.ones(2, dtype=complex)

        def result(response):
            return ScreeningResult(
                frequencies=frequencies, baseline=baseline,
                screenings=[ElementScreening("R1", response, response)],
                perturbation=0.01, method="rank1")

        mismatch = experiments._screening_deviation(
            result(None), result(baseline.copy()))
        assert mismatch == float("inf")
        agree = experiments._screening_deviation(result(None), result(None))
        assert agree == 0.0

    def test_workload_deviation_flags_ranking_mismatch(self):
        cold = {"ranking": ["a", "b"], "curve": np.ones(3)}
        warm_ok = {"ranking": ["a", "b"], "curve": np.ones(3)}
        warm_bad = {"ranking": ["b", "a"], "curve": np.ones(3)}
        assert experiments._workload_deviation(cold, warm_ok) == 0.0
        assert experiments._workload_deviation(cold, warm_bad) == float("inf")

    def test_ua741_tolerance_space_covers_the_passives(self):
        circuit, spec, space = ua741_tolerance_space(0.05)
        assert len(space) == 12
        assert set(space.names) == {"R1", "R2", "R3", "R4", "R5", "R6", "R7",
                                    "R8", "R9", "RL", "Cc", "CL"}
        assert all(axis.tolerance.fraction == 0.05 for axis in space.axes)

    def test_montecarlo_runner_reduced_shape(self):
        result = experiments.run_montecarlo_ensemble(
            num_samples=6, num_points=5, repeats=1)[0]
        assert result.num_samples == 6 and result.num_frequencies == 5
        assert result.exact_deviation == 0.0
        assert result.batch_invariant
        assert result.lapack_relative_deviation <= 1e-9
        assert "ua741" in result.describe()
