"""Tests for primitive circuit elements."""

import pytest

from repro.errors import NetlistError
from repro.netlist.elements import (
    CCCS,
    CCVS,
    Capacitor,
    Conductor,
    CurrentSource,
    GROUND,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)


class TestTwoTerminal:
    def test_resistor_conductance(self):
        resistor = Resistor("R1", "a", "b", 2e3)
        assert resistor.conductance == pytest.approx(5e-4)
        assert resistor.nodes == ("a", "b")
        assert resistor.is_admittance()

    def test_resistor_rejects_non_positive(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", 0.0)
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "b", -10.0)

    def test_conductor(self):
        conductor = Conductor("g1", "a", "0", 1e-3)
        assert conductor.conductance == pytest.approx(1e-3)
        with pytest.raises(NetlistError):
            Conductor("g2", "a", "b", -1.0)

    def test_capacitor(self):
        capacitor = Capacitor("C1", "out", "0", 1e-12)
        assert capacitor.capacitance == pytest.approx(1e-12)
        assert capacitor.is_admittance()
        with pytest.raises(NetlistError):
            Capacitor("C2", "a", "b", -1e-12)

    def test_inductor_not_admittance(self):
        inductor = Inductor("L1", "a", "b", 1e-6)
        assert not inductor.is_admittance()
        with pytest.raises(NetlistError):
            Inductor("L2", "a", "b", 0.0)

    def test_same_node_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "a", "a", 1e3)

    def test_ground_aliases_canonicalized(self):
        resistor = Resistor("R1", "a", "gnd", 1e3)
        assert resistor.node_neg == GROUND
        capacitor = Capacitor("C1", "GROUND", "x", 1e-12)
        assert capacitor.node_pos == GROUND

    def test_empty_node_rejected(self):
        with pytest.raises(NetlistError):
            Resistor("R1", "", "b", 1e3)


class TestSources:
    def test_voltage_source(self):
        source = VoltageSource("vin", "in", "0", 1.0)
        assert source.value == 1.0
        assert not source.is_admittance()

    def test_current_source_is_admittance_compatible(self):
        source = CurrentSource("iin", "in", "0", 1e-6)
        assert source.is_admittance()

    def test_negative_ac_values_allowed(self):
        assert VoltageSource("vim", "inm", "0", -0.5).value == -0.5


class TestControlledSources:
    def test_vccs(self):
        vccs = VCCS("gm1", "d", "s", "g", "s", 1e-3)
        assert vccs.nodes == ("d", "s", "g", "s")
        assert vccs.is_admittance()
        assert vccs.gm == pytest.approx(1e-3)

    def test_vccs_negative_gm_allowed(self):
        assert VCCS("gmx", "a", "0", "b", "0", -5e-4).gm == pytest.approx(-5e-4)

    def test_vcvs_cccs_ccvs_not_admittance(self):
        assert not VCVS("e1", "a", "0", "b", "0", 10.0).is_admittance()
        assert not CCCS("f1", "a", "0", "vsense", 2.0).is_admittance()
        assert not CCVS("h1", "a", "0", "vsense", 50.0).is_admittance()


class TestNodeRemapping:
    def test_with_nodes_two_terminal(self):
        resistor = Resistor("R1", "x", "y", 1e3)
        remapped = resistor.with_nodes({"x": "top", "y": "bottom"})
        assert remapped.nodes == ("top", "bottom")
        assert remapped.value == resistor.value
        # Original is untouched.
        assert resistor.nodes == ("x", "y")

    def test_with_nodes_vccs_includes_controls(self):
        vccs = VCCS("gm1", "d", "s", "g", "b", 1e-3)
        remapped = vccs.with_nodes({"g": "gate", "d": "drain"})
        assert remapped.nodes == ("drain", "s", "gate", "b")

    def test_partial_mapping_keeps_other_nodes(self):
        capacitor = Capacitor("C1", "a", "b", 1e-12)
        remapped = capacitor.with_nodes({"a": "z"})
        assert remapped.nodes == ("z", "b")

    def test_renamed(self):
        resistor = Resistor("R1", "a", "b", 1e3)
        assert resistor.renamed("R99").name == "R99"
        assert resistor.renamed("R99").value == resistor.value
