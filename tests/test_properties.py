"""Randomized property tests over generated circuits (fixed seeds, CI-stable).

Fifty-plus circuits from :mod:`tests.strategies` cross-check the library's
independent computation paths against each other:

* MNA vs nodal transfer functions (two formulations, one answer),
* symbolic vs numeric determinants (the symbolic kernel against
  ``repro.linalg``),
* rank-1 vs rebuild sensitivity screening (Sherman–Morrison against the
  brute-force oracle),
* vectorized Monte Carlo ensembles vs per-sample rebuilds (bit-exact),
* dense vs ordered-sparse sweep dispatch on post-layout-scale generator
  topologies (transfer parity, identical screening rankings, bit-identical
  Monte Carlo above the dense cutoff).

Every seed is pinned, so a failure reproduces locally with the seed in the
test id.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.analysis.sensitivity import screen_elements
from repro.linalg.det import determinant
from repro.montecarlo import ParameterSpace, ensemble_sweep, rebuild_sweep
from repro.netlist.elements import Capacitor, Resistor, VCCS
from repro.netlist.transform import to_admittance_form
from repro.nodal.admittance import build_nodal_formulation
from repro.nodal.sampler import NetworkFunctionSampler
from repro.symbolic.determinant import symbolic_determinant
from repro.symbolic.matrix import build_symbolic_nodal

from strategies import random_circuit, random_sparse_topology

#: 20 + 12 + 12 + 8 = 52 small generated circuits per run, plus
#: 20 + 3 + 3 = 26 post-layout-scale generator topologies.
MNA_VS_NODAL_SEEDS = list(range(100, 120))
DETERMINANT_SEEDS = list(range(200, 212))
SCREENING_SEEDS = list(range(300, 312))
MONTECARLO_SEEDS = list(range(400, 408))
SPARSE_DISPATCH_SEEDS = list(range(500, 520))
SPARSE_SCREENING_SEEDS = list(range(600, 603))
SPARSE_MONTECARLO_SEEDS = list(range(700, 703))
COMPILED_MODEL_SEEDS = list(range(800, 812))

_PROBE_FREQUENCIES = np.array([13.0, 997.0, 1.1e4, 2.3e5, 5.7e6])


def _relative(reference, candidate):
    scale = np.maximum(np.maximum(np.abs(reference), np.abs(candidate)),
                       np.finfo(float).tiny)
    return float(np.max(np.abs(candidate - reference) / scale))


class TestMnaVsNodal:
    """The MNA sweep and the nodal sampler agree on every generated circuit."""

    @pytest.mark.parametrize("seed", MNA_VS_NODAL_SEEDS)
    def test_transfer_equivalence(self, seed):
        circuit, spec = random_circuit(seed)
        mna_response = ACAnalysis(circuit, spec).frequency_response(
            _PROBE_FREQUENCIES)

        admittance = to_admittance_form(circuit)
        sampler = NetworkFunctionSampler(admittance, spec)
        points = (2j * math.pi * _PROBE_FREQUENCIES).tolist()
        nodal_response = np.array([sample.transfer()
                                   for sample in sampler.sample_many(points)])
        # The OTA engine test compares differential cancellation noise
        # absolutely; these single-ended outputs are well-conditioned, so a
        # tight symmetric relative bound holds.
        assert _relative(mna_response, nodal_response) <= 1e-8, seed


class TestSymbolicVsNumericDeterminant:
    """The symbolic determinant evaluates to the numeric one at random s."""

    @pytest.mark.parametrize("seed", DETERMINANT_SEEDS)
    def test_determinant_matches_linalg(self, seed):
        # Small circuits only: exact expansion is exponential in size.
        circuit, spec = random_circuit(seed, min_nodes=3, max_nodes=4)
        admittance = to_admittance_form(circuit)
        nodal = build_symbolic_nodal(admittance, spec)
        formulation = build_nodal_formulation(admittance, spec)
        symbolic = symbolic_determinant(nodal.entries, nodal.dimension,
                                        max_terms=2_000_000)
        rng = np.random.default_rng(seed)
        for __ in range(3):
            magnitude = 10.0 ** rng.uniform(3.0, 7.0)
            angle = rng.uniform(0.2, math.pi - 0.2)
            s = magnitude * complex(math.cos(angle), math.sin(angle))
            mantissa, exponent = determinant(formulation.assemble(s))
            expected = complex(mantissa) * 10.0 ** exponent
            value = symbolic.evaluate(nodal.table, s)
            assert value == pytest.approx(expected, rel=1e-6), (seed, s)


class TestRank1VsRebuildScreening:
    """Sherman–Morrison screening equals the rebuild oracle on random circuits."""

    @pytest.mark.parametrize("seed", SCREENING_SEEDS)
    def test_screening_equivalence(self, seed):
        circuit, spec = random_circuit(seed)
        frequencies = _PROBE_FREQUENCIES
        rank1 = screen_elements(circuit, spec, frequencies, method="rank1")
        rebuild = screen_elements(circuit, spec, frequencies,
                                  method="rebuild")
        assert len(rank1.screenings) == len(rebuild.screenings)
        for ours, oracle in zip(rank1.screenings, rebuild.screenings):
            assert ours.name == oracle.name
            for candidate, reference in (
                (ours.removal_response, oracle.removal_response),
                (ours.perturbed_response, oracle.perturbed_response),
            ):
                assert (candidate is None) == (reference is None), (
                    seed, ours.name)
                if candidate is None:
                    continue
                scale = np.maximum(
                    np.maximum(np.abs(reference), np.abs(rebuild.baseline)),
                    np.finfo(float).tiny)
                deviation = float(np.max(np.abs(candidate - reference)
                                         / scale))
                # Random circuits draw values across eight decades, so the
                # Sherman–Morrison correction runs at harsher conditioning
                # than the library circuits (whose 1e-9 bound lives in
                # benchmarks/bench_sensitivity.py); observed worst cases sit
                # around 1e-6 of the per-frequency response scale.
                assert deviation <= 1e-5, (seed, ours.name, deviation)


class TestMonteCarloVsRebuild:
    """The vectorized ensemble engine is bit-exact on random circuits too."""

    @pytest.mark.parametrize("seed", MONTECARLO_SEEDS)
    def test_ensemble_bit_parity(self, seed):
        circuit, spec = random_circuit(seed)
        names = [element.name for element in circuit
                 if isinstance(element, (Resistor, Capacitor, VCCS))][:6]
        space = ParameterSpace(circuit, {name: 0.1 for name in names})
        frequencies = _PROBE_FREQUENCIES
        vectorized = ensemble_sweep(circuit, spec, frequencies, space,
                                    samples=7, seed=seed, solver="lu")
        reference = rebuild_sweep(circuit, spec, frequencies, space,
                                  values=vectorized.values, solver="lu")
        assert np.array_equal(vectorized.responses, reference.responses), seed

        lapack = ensemble_sweep(circuit, spec, frequencies, space,
                                values=vectorized.values, solver="lapack")
        one_at_a_time = rebuild_sweep(circuit, spec, frequencies, space,
                                      values=vectorized.values,
                                      solver="lapack")
        assert np.array_equal(lapack.responses, one_at_a_time.responses), seed
        assert _relative(reference.responses, lapack.responses) <= 1e-9, seed


#: Sweep grid for the post-layout-scale generator topologies (their poles
#: live higher than the small random circuits').
_SPARSE_PROBE_FREQUENCIES = np.logspace(2.0, 8.0, 5)


class TestSparseVsDenseDispatch:
    """Dense and ordered-sparse sweeps agree on every generator topology.

    Twenty seeded mesh / tree / bus circuits at 100–300 unknowns — all above
    the default dense cutoff — run through both dispatch paths of the same
    :class:`~repro.engine.sweep.SweepEngine`.  The transfer function is
    compared on the response scale and the full solution stack on the
    per-frequency solution norm (component-wise relative error is
    ill-defined at the crosstalk outputs' cancellation floors).
    """

    @pytest.mark.parametrize("seed", SPARSE_DISPATCH_SEEDS)
    def test_transfer_parity(self, seed):
        from repro.engine.sweep import SweepEngine
        from repro.mna.builder import build_mna_system

        circuit, spec = random_sparse_topology(seed, min_dimension=151)
        system = build_mna_system(circuit)
        assert system.dimension > 150, (seed, system.dimension)
        s = 2j * np.pi * _SPARSE_PROBE_FREQUENCIES

        dense_engine = SweepEngine(system, method="dense")
        sparse_engine = SweepEngine(system, method="sparse")
        assert dense_engine.is_dense and not sparse_engine.is_dense, seed
        dense = dense_engine.solve_sweep(s, system.rhs)
        sparse = sparse_engine.solve_sweep(s, system.rhs)

        norms = np.linalg.norm(dense, axis=1, keepdims=True)
        assert float(np.max(np.abs(dense - sparse) / norms)) <= 1e-8, seed

        reference = np.array([system.node_voltage(row, spec.output)
                              for row in dense])
        candidate = np.array([system.node_voltage(row, spec.output)
                              for row in sparse])
        scale = max(float(np.max(np.abs(reference))), np.finfo(float).tiny)
        assert float(np.max(np.abs(candidate - reference))) / scale <= 1e-8, (
            seed)


class TestSparseScreeningRanking:
    """Rank-1 screening ranks identically on dense and sparse factors."""

    @pytest.mark.parametrize("seed", SPARSE_SCREENING_SEEDS)
    def test_ranking_identical(self, seed, monkeypatch):
        circuit, spec = random_sparse_topology(seed, min_dimension=150,
                                               max_dimension=200)
        # A deterministic element subset keeps the Sherman–Morrison pass
        # affordable at this scale.
        names = [element.name for element in circuit
                 if isinstance(element, (Resistor, Capacitor))][::17][:12]
        frequencies = _SPARSE_PROBE_FREQUENCIES

        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "100000")
        dense = screen_elements(circuit, spec, frequencies, elements=names)
        monkeypatch.setenv("REPRO_DENSE_CUTOFF", "1")
        sparse = screen_elements(circuit, spec, frequencies, elements=names)

        dense_ranking = [item.name for item in dense.influences()]
        sparse_ranking = [item.name for item in sparse.influences()]
        assert dense_ranking == sparse_ranking, seed
        for ours, oracle in zip(sparse.screenings, dense.screenings):
            assert ours.name == oracle.name
            for candidate, reference in (
                (ours.removal_response, oracle.removal_response),
                (ours.perturbed_response, oracle.perturbed_response),
            ):
                assert (candidate is None) == (reference is None), (
                    seed, ours.name)
                if candidate is not None:
                    scale = np.maximum(np.abs(dense.baseline),
                                       np.finfo(float).tiny)
                    assert float(np.max(np.abs(candidate - reference)
                                        / scale)) <= 1e-8, (seed, ours.name)


class TestSparseMonteCarloParity:
    """``solver="lu"`` ensembles stay bit-exact above the dense cutoff."""

    @pytest.mark.parametrize("seed", SPARSE_MONTECARLO_SEEDS)
    def test_ensemble_bit_parity(self, seed):
        circuit, spec = random_sparse_topology(seed, min_dimension=160,
                                               max_dimension=220)
        names = [element.name for element in circuit
                 if isinstance(element, (Resistor, Capacitor))][::11][:8]
        space = ParameterSpace(circuit, {name: 0.05 for name in names})
        frequencies = _SPARSE_PROBE_FREQUENCIES
        vectorized = ensemble_sweep(circuit, spec, frequencies, space,
                                    samples=4, seed=seed, solver="lu")
        reference = rebuild_sweep(circuit, spec, frequencies, space,
                                  values=vectorized.values, solver="lu")
        assert np.array_equal(vectorized.responses, reference.responses), seed


class TestCompiledModelVsMatrixSolve:
    """The compiled coefficient-tensor model equals the MNA matrix solve.

    Twelve seeded small circuits (the symbolic expansion is exponential, so
    the generator stays at 3–4 nodes; the seed range cycles rc / rlc / vccs
    kinds, so inductor gyrator-C slots and negative transconductances are
    covered).  Each circuit's compiled model is evaluated at randomly
    perturbed element values and random frequencies, against per-sample MNA
    rebuild + :func:`repro.linalg.dense.batched_solve`.
    """

    @pytest.mark.parametrize("seed", COMPILED_MODEL_SEEDS)
    def test_perturbed_values_match_matrix_solve(self, seed):
        import dataclasses

        from repro.linalg.dense import batched_solve
        from repro.mna.builder import build_mna_system
        from repro.montecarlo import compiled_ensemble_sweep

        circuit, spec = random_circuit(seed, min_nodes=3, max_nodes=4)
        rng = np.random.default_rng(seed + 10_000)
        axes = {element.name: 0.2 for element in circuit
                if type(element).__name__ in ("Resistor", "Conductor",
                                              "Capacitor", "Inductor",
                                              "VCCS")}
        space = ParameterSpace(circuit, axes)
        values = space.sample_values(4, seed=seed)
        frequencies = 10.0 ** rng.uniform(1.0, 7.0, size=3)

        compiled = compiled_ensemble_sweep(circuit, spec, frequencies,
                                           space, values=values)

        s = 2j * np.pi * frequencies
        reference = np.empty_like(compiled.responses)
        for row, sample in enumerate(values):
            perturbed = circuit.copy()
            for axis, value in zip(space.axes, sample):
                element = perturbed[axis.name]
                field = "gm" if hasattr(element, "gm") else "value"
                perturbed.replace(
                    dataclasses.replace(element, **{field: float(value)}))
            system = build_mna_system(perturbed)
            solutions = batched_solve(system.assemble_batch(s), system.rhs)
            reference[row] = [system.node_voltage(solution, spec.output)
                              for solution in solutions]
        assert _relative(reference, compiled.responses) <= 1e-8, seed


class TestCompiledOverflowRegime:
    """Extreme element values stay finite on the log-domain fold.

    A six-stage ladder at conductances and capacitances of ``1e12`` has
    denominator coefficients near ``1e72``; at ``|s| = 1e40`` the leading
    monomial is ``~1e312`` — past double-precision overflow, so a plain
    linear-domain Horner pass would return ``inf``.  The compiled model's
    peak-extracted fold and grid evaluation must stay finite and match the
    extended-range XFloat oracle (symbolic coefficient values combined with
    the exponent-cancelling :class:`RationalFunction`).
    """

    @staticmethod
    def _ladder(resistance, capacitance):
        from repro.netlist.circuit import Circuit
        from repro.nodal.reduce import TransferSpec

        circuit = Circuit("overflow-ladder")
        circuit.add_voltage_source("Vin", "in", "0", 1.0)
        previous = "in"
        for index in range(1, 7):
            node = f"n{index}"
            circuit.add_resistor(f"R{index}", previous, node, resistance)
            circuit.add_capacitor(f"C{index}", node, "0", capacitance)
            previous = node
        return circuit, TransferSpec(inputs=["Vin"], output="n6")

    @staticmethod
    def _xfloat_rational(transfer):
        """Extended-range oracle from the symbolic coefficient values."""
        from repro.interpolation.polynomial import Polynomial
        from repro.interpolation.rational import RationalFunction

        def side(kind):
            maximum = transfer._expression(kind).max_s_power()
            return Polynomial([transfer.coefficient_value(kind, power)
                               for power in range(maximum + 1)])

        return RationalFunction(side("numerator"), side("denominator"))

    def test_extreme_values_finite_and_match_oracle(self):
        from repro.symbolic import symbolic_network_function

        circuit, spec = self._ladder(1e3, 1e-9)
        model = symbolic_network_function(circuit, spec).compile()
        # Every slot at 1e12: conductance slots via R = 1e-12 Ω, cap slots
        # directly — the regime where flat products leave double range.
        values = np.full(model.num_free, 1e12)
        s = np.array([1j * 1e-4, 1j * 1e3, 1j * 1e40])

        clogs, csigns = model.coefficient_tensors(values, "denominator")
        naive_peak = max(float(clogs[power]) + power * 40.0
                         for power in range(clogs.shape[0])
                         if csigns[power] != 0.0)
        assert naive_peak > 308.0   # linear-domain Horner would overflow

        response = model.evaluate(values, s)
        assert np.isfinite(response).all()

        extreme, __ = self._ladder(1e-12, 1e12)
        oracle = self._xfloat_rational(
            symbolic_network_function(extreme, spec))
        expected = np.array([oracle.evaluate(point) for point in s])
        assert _relative(expected, response) <= 1e-8

    def test_underflow_side_flushes_like_the_oracle(self):
        """Values at 1e-12 drive the opposite tail; both paths agree."""
        from repro.symbolic import symbolic_network_function

        circuit, spec = self._ladder(1e3, 1e-9)
        model = symbolic_network_function(circuit, spec).compile()
        values = np.full(model.num_free, 1e-12)
        s = np.array([1j * 1e-6, 1j * 1.3e2, 1j * 1e30])
        response = model.evaluate(values, s)
        assert np.isfinite(response).all()
        extreme, __ = self._ladder(1e12, 1e-12)
        oracle = self._xfloat_rational(
            symbolic_network_function(extreme, spec))
        expected = np.array([oracle.evaluate(point) for point in s])
        assert _relative(expected, response) <= 1e-8
