"""Tests for interpolation points, DFT, polynomials and rational functions."""

import cmath
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InterpolationError
from repro.interpolation.dft import inverse_dft, inverse_dft_direct, inverse_dft_scaled
from repro.interpolation.points import circle_points, minimum_point_count, unit_circle_points
from repro.interpolation.polynomial import Polynomial
from repro.interpolation.rational import RationalFunction
from repro.xfloat import XFloat


class TestPoints:
    def test_unit_circle(self):
        points = unit_circle_points(8)
        assert len(points) == 8
        assert points[0] == pytest.approx(1.0)
        for point in points:
            assert abs(point) == pytest.approx(1.0)
        assert points[2] == pytest.approx(1j)

    def test_radius(self):
        points = circle_points(4, radius=2.5)
        assert all(abs(p) == pytest.approx(2.5) for p in points)

    def test_invalid(self):
        with pytest.raises(InterpolationError):
            unit_circle_points(0)
        with pytest.raises(InterpolationError):
            circle_points(4, radius=-1.0)
        with pytest.raises(InterpolationError):
            minimum_point_count(-1)

    def test_minimum_point_count(self):
        assert minimum_point_count(9) == 10


class TestInverseDFT:
    def test_recovers_polynomial_coefficients(self):
        coefficients = np.array([1.0, -2.0, 0.5, 3.0, 0.0])
        points = unit_circle_points(len(coefficients))
        samples = [sum(c * point**i for i, c in enumerate(coefficients))
                   for point in points]
        recovered = inverse_dft(samples)
        np.testing.assert_allclose(recovered.real, coefficients, atol=1e-12)
        np.testing.assert_allclose(recovered.imag, 0.0, atol=1e-12)

    def test_fft_matches_direct(self):
        rng = np.random.default_rng(0)
        samples = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        np.testing.assert_allclose(inverse_dft(samples, method="fft"),
                                   inverse_dft_direct(samples), atol=1e-10)

    def test_invalid_inputs(self):
        with pytest.raises(InterpolationError):
            inverse_dft([])
        with pytest.raises(InterpolationError):
            inverse_dft([1.0], method="nope")

    def test_scaled_variant_tracks_common_exponent(self):
        coefficients = [2.0, 4.0]
        points = unit_circle_points(2)
        samples = []
        for point in points:
            value = coefficients[0] + coefficients[1] * point
            samples.append((value, -400))   # far below double underflow
        values, exponent = inverse_dft_scaled(samples)
        assert exponent == -400
        np.testing.assert_allclose(values.real, coefficients, atol=1e-12)

    def test_scaled_variant_all_zero(self):
        values, exponent = inverse_dft_scaled([(0.0, 0), (0.0, 0)])
        assert exponent == 0
        np.testing.assert_allclose(values, 0.0)

    def test_scaled_variant_matches_per_sample_rescaling(self):
        # The vectorized rescaling must be bit-identical to the per-sample
        # reference: shift each mantissa by scalar-pow powers of ten relative
        # to the batch's largest exponent, flushing shifts below -300.
        rng = np.random.default_rng(42)
        for __ in range(25):
            count = int(rng.integers(1, 24))
            mantissas = rng.standard_normal(count) + 1j * rng.standard_normal(count)
            mantissas[rng.random(count) < 0.25] = 0.0
            exponents = rng.integers(-500, 500, size=count)
            pairs = [(complex(m), int(e))
                     for m, e in zip(mantissas, exponents)]
            nonzero = [e for m, e in pairs if m != 0]
            if not nonzero:
                continue
            common = max(nonzero)
            rescaled = np.zeros(count, dtype=complex)
            for index, (mantissa, exponent) in enumerate(pairs):
                if mantissa == 0 or exponent - common < -300:
                    continue
                rescaled[index] = mantissa * 10.0**(exponent - common)
            values, tracked = inverse_dft_scaled(pairs)
            assert tracked == common
            assert np.array_equal(values, inverse_dft(rescaled))

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1,
                    max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_property_roundtrip(self, coefficients):
        points = unit_circle_points(len(coefficients))
        samples = [sum(c * point**i for i, c in enumerate(coefficients))
                   for point in points]
        recovered = inverse_dft(samples)
        np.testing.assert_allclose(recovered.real, coefficients,
                                   atol=1e-9 * max(1.0, max(abs(c) for c in coefficients)))


class TestPolynomial:
    def test_basic_container(self):
        poly = Polynomial([1.0, 0.0, 3.0])
        assert len(poly) == 3
        assert poly.degree == 2
        assert float(poly[2]) == 3.0
        assert float(poly.coefficient(10)) == 0.0
        with pytest.raises(InterpolationError):
            poly.coefficient(-1)

    def test_degree_ignores_trailing_zeros(self):
        poly = Polynomial([1.0, 2.0, 0.0, 0.0])
        assert poly.degree == 1
        assert len(poly.trimmed()) == 2
        assert Polynomial([0.0]).is_zero()

    def test_evaluate_matches_numpy_for_moderate_coefficients(self):
        coefficients = [1.0, -3.0, 2.5, 0.75]
        poly = Polynomial(coefficients)
        for s in (0.0, 1.0, -2.0, 1j, 2.0 + 3.0j):
            expected = np.polyval(coefficients[::-1], s)
            assert poly.evaluate_complex(s) == pytest.approx(expected, rel=1e-12)

    def test_evaluate_extended_range(self):
        # Coefficients spanning 300 decades with s large: must not overflow.
        poly = Polynomial([XFloat(1.0, -100), XFloat(1.0, -400)])
        mantissa, exponent = poly.evaluate(1e9)
        # term0 = 1e-100, term1 = 1e-400*1e9 = 1e-391 -> dominated by term0
        assert exponent == -100
        assert mantissa.real == pytest.approx(1.0)

    def test_evaluate_at_zero(self):
        poly = Polynomial([XFloat(2.0, -500), XFloat(1.0, 0)])
        mantissa, exponent = poly.evaluate(0.0)
        assert exponent == -500
        assert mantissa.real == pytest.approx(2.0)
        assert Polynomial([0.0, 1.0]).evaluate(0.0) == (0.0, 0)

    def test_algebra(self):
        a = Polynomial([1.0, 2.0])
        b = Polynomial([0.0, 1.0, 4.0])
        total = a + b
        assert [float(c) for c in total] == pytest.approx([1.0, 3.0, 4.0])
        difference = b - a
        assert [float(c) for c in difference] == pytest.approx([-1.0, -1.0, 4.0])
        negated = -a
        assert float(negated[0]) == -1.0

    def test_scaling_operations(self):
        poly = Polynomial([1.0, 2.0, 3.0])
        scaled = poly.scaled(2.0)
        assert [float(c) for c in scaled] == pytest.approx([2.0, 4.0, 6.0])
        variable = poly.variable_scaled(10.0)
        assert [float(c) for c in variable] == pytest.approx([1.0, 20.0, 300.0])

    def test_derivative(self):
        poly = Polynomial([5.0, 3.0, 2.0])
        assert [float(c) for c in poly.derivative()] == pytest.approx([3.0, 4.0])
        assert Polynomial([1.0]).derivative().is_zero()

    def test_max_relative_coefficient_error(self):
        a = Polynomial([1.0, 2.0, 1e-30])
        b = Polynomial([1.0, 2.002, 0.0])
        assert a.max_relative_coefficient_error(b) == pytest.approx(1.0, rel=0.1)
        assert a.max_relative_coefficient_error(
            b, ignore_below=XFloat(1.0, -10)) == pytest.approx(1e-3, rel=0.1)

    def test_log10_magnitude(self):
        poly = Polynomial([XFloat(1.0, -250)])
        assert poly.log10_magnitude(123.0) == pytest.approx(-250)
        assert Polynomial([0.0]).log10_magnitude(1.0) == -math.inf


class TestRationalFunction:
    def test_simple_lowpass(self):
        # H(s) = 1 / (1 + s/w0)
        w0 = 2 * math.pi * 1e3
        h = RationalFunction([1.0], [1.0, 1.0 / w0])
        assert h.dc_gain() == pytest.approx(1.0)
        assert abs(h.evaluate(1j * w0)) == pytest.approx(1 / math.sqrt(2))
        magnitude, phase = h.bode([1e3])
        assert magnitude[0] == pytest.approx(-3.0103, abs=0.01)
        assert phase[0] == pytest.approx(-45.0, abs=0.1)

    def test_zero_denominator_rejected(self):
        with pytest.raises(InterpolationError):
            RationalFunction([1.0], [0.0])

    def test_extended_range_coefficients(self):
        # Both polynomials far below double range; their ratio is ordinary.
        numerator = Polynomial([XFloat(5.0, -400)])
        denominator = Polynomial([XFloat(1.0, -400), XFloat(1.0, -405)])
        h = RationalFunction(numerator, denominator)
        assert h.dc_gain() == pytest.approx(5.0)
        assert abs(h.evaluate(1j * 1e5)) == pytest.approx(5.0 / abs(1 + 1j), rel=1e-9)

    def test_unity_gain_frequency(self):
        w0 = 2 * math.pi * 1e4
        h = RationalFunction([100.0], [1.0, 1.0 / w0])
        crossover = h.unity_gain_frequency(f_min=1.0, f_max=1e9)
        assert crossover == pytest.approx(1e6, rel=0.05)

    def test_callable_and_degree(self):
        h = RationalFunction([1.0, 1.0], [1.0, 2.0, 3.0])
        assert h.degree == (1, 2)
        assert h(0.0) == pytest.approx(1.0)
