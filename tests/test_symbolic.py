"""Tests for the symbolic engine and the SAG / SDG / SBG consumers."""

import math

import numpy as np
import pytest

from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.rc_ladder import build_rc_ladder, rc_ladder_denominator_coefficients
from repro.errors import SimplificationError, SymbolicError
from repro.interpolation.reference import generate_reference
from repro.netlist.circuit import Circuit
from repro.netlist.transform import to_admittance_form
from repro.nodal.reduce import TransferSpec
from repro.nodal.sampler import NetworkFunctionSampler
from repro.symbolic.determinant import symbolic_determinant
from repro.symbolic.generation import (
    select_significant_terms,
    simplify_after_generation,
    symbolic_network_function,
)
from repro.symbolic.matrix import build_symbolic_nodal
from repro.symbolic.sbg import simplification_before_generation
from repro.symbolic.sdg import simplification_during_generation
from repro.symbolic.symbols import CircuitSymbol, build_symbol_table
from repro.symbolic.terms import SymbolicExpression, Term
from repro.xfloat import XFloat


class TestSymbolsAndTerms:
    def test_symbol_table(self, simple_rc):
        circuit, __ = simple_rc
        table = build_symbol_table(circuit)
        assert table["R1"].kind == "conductance"
        assert table["R1"].value == pytest.approx(1e-3)
        assert table["C1"].is_capacitance
        assert "vin" not in table

    def test_symbol_table_rejects_non_admittance(self):
        circuit = Circuit("bad")
        circuit.add_vcvs("E1", "a", "0", "b", "0", 2.0)
        circuit.add_resistor("R1", "a", "b", 1.0)
        with pytest.raises(SymbolicError):
            build_symbol_table(circuit)

    def test_invalid_symbol_kind(self):
        with pytest.raises(SymbolicError):
            CircuitSymbol("x", "weird", 1.0)

    def test_term_value_and_sign(self):
        table = {"g1": CircuitSymbol("g1", "conductance", 1e-3),
                 "gm": CircuitSymbol("gm", "conductance", -2e-3),
                 "c1": CircuitSymbol("c1", "capacitance", 1e-12)}
        term = Term(symbols=("g1", "c1"), s_power=1, coefficient=-1.0)
        value = term.value(table)
        assert value.sign() == -1.0
        assert value.log10() == pytest.approx(math.log10(1e-3 * 1e-12))
        negative_gm = Term(symbols=("gm",), s_power=0)
        assert negative_gm.value(table).sign() == -1.0

    def test_term_multiply_and_negate(self):
        a = Term(("x",), 1, 2.0)
        b = Term(("y",), 0, -1.0)
        product = a.multiply(b)
        assert product.symbols == ("x", "y")
        assert product.s_power == 1
        assert product.coefficient == -2.0
        assert a.negated().coefficient == -2.0

    def test_expression_combines_like_terms(self):
        expression = SymbolicExpression([
            Term(("a", "b"), 1, 1.0),
            Term(("b", "a"), 1, 1.0),
            Term(("a",), 0, 1.0),
            Term(("a",), 0, -1.0),
        ])
        combined = expression.combined()
        assert len(combined) == 1
        assert combined.terms[0].coefficient == 2.0

    def test_expression_queries(self):
        table = {"a": CircuitSymbol("a", "conductance", 2.0),
                 "c": CircuitSymbol("c", "capacitance", 3.0)}
        expression = SymbolicExpression([Term(("a",), 0), Term(("c",), 1),
                                         Term(("a", "c"), 1, -1.0)])
        assert expression.max_s_power() == 1
        assert len(expression.coefficient_terms(1)) == 2
        assert float(expression.coefficient_value(0, table)) == pytest.approx(2.0)
        assert float(expression.coefficient_value(1, table)) == pytest.approx(-3.0)
        assert expression.evaluate(table, 2.0) == pytest.approx(2.0 - 6.0)
        assert expression.term_count_by_power() == {0: 1, 1: 2}
        assert not expression.is_zero()
        assert SymbolicExpression().is_zero()
        assert "a" in str(expression)


class TestDeterminant:
    def test_two_by_two(self):
        entries = {
            (0, 0): SymbolicExpression([Term(("a",), 0)]),
            (0, 1): SymbolicExpression([Term(("b",), 0)]),
            (1, 0): SymbolicExpression([Term(("c",), 0)]),
            (1, 1): SymbolicExpression([Term(("d",), 0)]),
        }
        determinant = symbolic_determinant(entries, 2)
        table = {name: CircuitSymbol(name, "conductance", value)
                 for name, value in (("a", 2.0), ("b", 3.0), ("c", 5.0),
                                     ("d", 7.0))}
        assert float(determinant.coefficient_value(0, table)) == pytest.approx(
            2 * 7 - 3 * 5)

    def test_structurally_singular_gives_zero(self):
        entries = {(0, 0): SymbolicExpression([Term(("a",), 0)])}
        determinant = symbolic_determinant(entries, 2)
        assert determinant.is_zero()

    def test_term_budget_enforced(self):
        size = 6
        entries = {}
        for row in range(size):
            for col in range(size):
                entries[(row, col)] = SymbolicExpression(
                    [Term((f"x{row}{col}",), 0)])
        with pytest.raises(SymbolicError):
            symbolic_determinant(entries, size, max_terms=10)

    def test_numeric_cross_check_against_dense_determinant(self):
        rng = np.random.default_rng(1)
        size = 4
        values = rng.uniform(0.5, 2.0, size=(size, size))
        entries = {}
        table = {}
        for row in range(size):
            for col in range(size):
                name = f"m{row}{col}"
                table[name] = CircuitSymbol(name, "conductance",
                                            float(values[row, col]))
                entries[(row, col)] = SymbolicExpression([Term((name,), 0)])
        determinant = symbolic_determinant(entries, size)
        assert float(determinant.coefficient_value(0, table)) == pytest.approx(
            np.linalg.det(values), rel=1e-9)


class TestSymbolicNetworkFunction:
    def test_rc_ladder_coefficients_match_recursion(self, rc_ladder_3):
        circuit, spec, resistances, capacitances = rc_ladder_3
        transfer = symbolic_network_function(circuit, spec)
        table = transfer.table
        expected = rc_ladder_denominator_coefficients(resistances, capacitances)
        d0 = float(transfer.coefficient_value("denominator", 0))
        for power, value in enumerate(expected):
            coefficient = float(transfer.coefficient_value("denominator", power))
            assert coefficient / d0 == pytest.approx(value, rel=1e-9)
        n0 = float(transfer.coefficient_value("numerator", 0))
        assert n0 / d0 == pytest.approx(1.0, rel=1e-9)

    def test_symbolic_matches_numeric_sampler(self, miller_circuit):
        circuit, spec = miller_circuit
        admittance = to_admittance_form(circuit)
        transfer = symbolic_network_function(admittance, spec,
                                             admittance_transform=False)
        sampler = NetworkFunctionSampler(admittance, spec)
        for frequency in (1e2, 1e5, 1e8):
            s = 2j * math.pi * frequency
            assert transfer.evaluate(s) == pytest.approx(
                sampler.transfer_value(s), rel=1e-6)

    def test_symbolic_nodal_structure(self, simple_rc):
        circuit, spec = simple_rc
        nodal = build_symbolic_nodal(circuit, spec)
        assert nodal.dimension == 1
        assert nodal.nnz() == 1
        diagonal = nodal.entry(0, 0)
        names = {term.symbols[0] for term in diagonal.terms}
        assert names == {"R1", "C1"}
        # The excitation carries the forced-node coupling through R1.
        assert 0 in nodal.rhs
        assert nodal.entry(5, 5).is_zero()

    def test_summary_and_term_count(self, rc_ladder_3):
        circuit, spec, __, __c = rc_ladder_3
        transfer = symbolic_network_function(circuit, spec)
        n_terms, d_terms = transfer.term_count()
        assert n_terms >= 1 and d_terms >= 4
        assert "terms" in transfer.summary()


class TestSelectionAndSAG:
    def test_select_significant_terms_stops_at_epsilon(self):
        table = {f"g{i}": CircuitSymbol(f"g{i}", "conductance", 10.0**-i)
                 for i in range(6)}
        terms = [Term((f"g{i}",), 0) for i in range(6)]
        reference = XFloat(sum(10.0**-i for i in range(6)), 0)
        kept, total = select_significant_terms(terms, table, reference,
                                               epsilon=0.05)
        assert total == 6
        # Keeping g0 and g1 leaves ~1% error; epsilon=5% needs just those two.
        assert len(kept) == 2
        all_kept, __ = select_significant_terms(terms, table, reference,
                                                epsilon=0.0)
        assert len(all_kept) == 6

    def test_select_with_zero_reference(self):
        table = {"g": CircuitSymbol("g", "conductance", 1.0)}
        kept, __ = select_significant_terms([Term(("g",), 0)], table,
                                            XFloat.zero(), epsilon=0.01)
        assert kept == []

    def test_negative_epsilon_rejected(self):
        with pytest.raises(SymbolicError):
            select_significant_terms([], {}, XFloat(1.0, 0), epsilon=-1.0)

    def test_sag_prunes_but_preserves_response(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        full = symbolic_network_function(circuit, spec)
        simplified = simplify_after_generation(full, reference, epsilon=0.05)
        kept_n, kept_d = simplified.term_count()
        full_n, full_d = full.term_count()
        assert kept_d < full_d
        assert kept_n <= full_n
        for frequency in (1e3, 1e6):
            s = 2j * math.pi * frequency
            assert abs(simplified.evaluate(s)) == pytest.approx(
                abs(full.evaluate(s)), rel=0.2)


class TestSDG:
    def test_error_control_satisfied(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        result = simplification_during_generation(circuit, spec, reference,
                                                  epsilon=0.02)
        assert result.compression() > 0.3
        for report in result.reports:
            if math.isfinite(report.achieved_error):
                assert report.achieved_error <= 0.02 * 1.5 + 1e-12
        kept, total = result.total_terms()
        assert 0 < kept < total
        assert "SDG" in result.summary()

    def test_smaller_epsilon_keeps_more_terms(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        transfer = symbolic_network_function(circuit, spec)
        loose = simplification_during_generation(circuit, spec, reference,
                                                 epsilon=0.2,
                                                 transfer_function=transfer)
        tight = simplification_during_generation(circuit, spec, reference,
                                                 epsilon=0.001,
                                                 transfer_function=transfer)
        assert tight.total_terms()[0] >= loose.total_terms()[0]

    def test_negative_epsilon_rejected(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        with pytest.raises(SimplificationError):
            simplification_during_generation(circuit, spec, reference,
                                             epsilon=-0.1)


class TestSBG:
    def test_reduction_respects_error_budget(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        result = simplification_before_generation(circuit, spec, reference,
                                                  epsilon=0.05)
        assert len(result.removals) > 0
        assert result.final_error <= 0.05
        assert len(result.reduced) == len(circuit) - len(result.removals)
        assert set(result.removed_names).isdisjoint(
            {element.name for element in result.reduced})
        assert "SBG" in result.summary()

    def test_tighter_epsilon_removes_fewer_elements(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        loose = simplification_before_generation(circuit, spec, reference,
                                                 epsilon=0.2)
        tight = simplification_before_generation(circuit, spec, reference,
                                                 epsilon=0.001)
        assert len(tight.removals) <= len(loose.removals)

    def test_invalid_epsilon(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        with pytest.raises(SimplificationError):
            simplification_before_generation(circuit, spec, reference,
                                             epsilon=0.0)
