"""Resilient solve layer: escalation, quarantine, checkpoints, fault injection.

The contract under test (ISSUE 7):

* the **no-fault default path is bit-identical** to the legacy engines —
  turning quarantine on must not change a single response bit;
* a **transient** fault recovers bit-identically; a **permanent** fault
  degrades to an accurate :class:`~repro.engine.resilience.SweepReport`
  naming exactly the injected samples, with every surviving sample's
  response untouched;
* statistics (:mod:`repro.analysis.montecarlo`) exclude quarantined samples
  and report them, instead of NaN-poisoning envelopes and yields;
* checkpointed ensembles resume **bit-identically** after a kill;
* all four engines (dense, sparse+ordering, rank-1 screening, symbolic)
  raise the same typed :class:`~repro.errors.SingularMatrixError` for the
  same singular circuits.
"""

from __future__ import annotations

import numpy as np
import pytest

from faults import ensemble_faults, failing_kernel

from repro.analysis.montecarlo import (MonteCarloResult, YieldSpec,
                                       monte_carlo_analysis,
                                       variance_attribution, yield_analysis)
from repro.analysis.sensitivity import element_sensitivities
from repro.circuits import build_ua741
from repro.circuits.rc_ladder import build_rc_ladder
from repro.engine.resilience import (SolvePolicy, SweepReport,
                                     reset_telemetry, resilient_dense_solve,
                                     resilient_sparse_solve,
                                     telemetry_snapshot)
from repro.engine.session import AnalysisSession
from repro.engine.sweep import SweepEngine
from repro.errors import (CheckpointError, LinAlgError, NetlistError,
                          SingularMatrixError, SolveFailureError,
                          ValidationError)
from repro.linalg.sparse import SparseMatrix
from repro.mna.builder import build_mna_system
from repro.montecarlo import (ParameterSpace, Tolerance, checkpoint_info,
                              checkpointed_ensemble_sweep, ensemble_sweep)
from repro.netlist.circuit import Circuit
from repro.nodal.reduce import TransferSpec
from repro.reporting import format_sweep_report
from repro.symbolic.generation import symbolic_network_function

FREQUENCIES = np.logspace(1, 7, 9)


def _toleranced(circuit, fraction=0.05, count=5):
    names = [element.name for element in circuit
             if type(element).__name__ in ("Resistor", "Capacitor")][:count]
    return ParameterSpace(circuit, {name: fraction for name in names})


@pytest.fixture(scope="module")
def ua741():
    circuit, spec = build_ua741()
    return circuit, spec, _toleranced(circuit)


@pytest.fixture(scope="module")
def ladder():
    circuit, spec = build_rc_ladder(4)
    return circuit, spec, _toleranced(circuit, fraction=0.1)


def build_floating_at_dc():
    """Node ``b`` hangs on a capacitor alone: singular exactly at s = 0."""
    circuit = Circuit("floating")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_resistor("RL", "out", "0", 2e3)
    circuit.add_capacitor("C1", "b", "0", 1e-12)
    return circuit


def build_driven_floating_at_dc():
    """A current source drives the floating node: *inconsistent* at s = 0.

    The zero row meets a nonzero right-hand-side entry, so not even the
    regularized stage can certify a solution — the point must quarantine.
    """
    circuit = build_floating_at_dc()
    circuit.add_current_source("Ib", "b", "0", 1.0)
    return circuit


def build_isolated_island():
    """An R‖C island with no path to the rest: singular at every s."""
    circuit = Circuit("island")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "out", 1e3)
    circuit.add_resistor("RL", "out", "0", 2e3)
    circuit.add_resistor("Ri", "a", "b", 1e3)
    circuit.add_capacitor("Ci", "a", "b", 1e-9)
    return circuit


class TestSolvePolicy:
    """Policy validation and configuration resolution."""

    def test_defaults_resolve_config(self):
        policy = SolvePolicy()
        assert policy.effective_residual_limit() == 1e-8
        assert policy.effective_condition_limit() == 1e13
        assert policy.effective_regularization() == pytest.approx(
            np.sqrt(np.finfo(float).eps))

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESIDUAL_LIMIT", "1e-6")
        monkeypatch.setenv("REPRO_CONDITION_LIMIT", "1e10")
        policy = SolvePolicy()
        assert policy.effective_residual_limit() == 1e-6
        assert policy.effective_condition_limit() == 1e10

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_RESIDUAL_LIMIT", "not-a-number")
        assert SolvePolicy().effective_residual_limit() == 1e-8
        monkeypatch.setenv("REPRO_RESIDUAL_LIMIT", "-3")
        assert SolvePolicy().effective_residual_limit() == 1e-8

    @pytest.mark.parametrize("kwargs", [
        {"condition_check": "sometimes"},
        {"refinement_steps": -1},
        {"residual_limit": 0.0},
        {"condition_limit": -1.0},
        {"regularization": 0.0},
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(LinAlgError):
            SolvePolicy(**kwargs)


class TestResilientDenseSolve:
    """The scalar escalation chain: bitexact → regularized."""

    def test_clean_system_accepted_bitexact(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        matrix += 4 * np.eye(4)
        rhs = rng.normal(size=4) + 0j
        x, diagnostics = resilient_dense_solve(matrix, rhs)
        assert diagnostics.stage == "bitexact"
        assert diagnostics.escalations == ()
        assert np.allclose(matrix @ x, rhs)

    def test_consistent_singular_recovered_by_regularization(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        rhs = np.array([2.0, 2.0], dtype=complex)
        x, diagnostics = resilient_dense_solve(matrix, rhs)
        assert diagnostics.stage == "regularized"
        assert any(record.stage == "bitexact"
                   for record in diagnostics.escalations)
        assert np.allclose(matrix @ x, rhs)

    def test_inconsistent_singular_quarantined(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        rhs = np.array([1.0, 0.0], dtype=complex)
        with pytest.raises(SolveFailureError) as excinfo:
            resilient_dense_solve(matrix, rhs)
        error = excinfo.value
        assert isinstance(error, SingularMatrixError)
        assert error.diagnostics is not None
        stages = [record.stage for record in error.diagnostics.escalations]
        assert "bitexact" in stages and "regularized" in stages

    def test_non_finite_input_unrecoverable(self):
        matrix = np.eye(3, dtype=complex)
        matrix[0, 0] = np.nan
        with pytest.raises(SolveFailureError, match="non-finite"):
            resilient_dense_solve(matrix, np.ones(3, dtype=complex))

    def test_regularization_can_be_disabled(self):
        matrix = np.array([[1.0, 1.0], [1.0, 1.0]], dtype=complex)
        rhs = np.array([2.0, 2.0], dtype=complex)
        policy = SolvePolicy(allow_regularization=False)
        with pytest.raises(SolveFailureError) as excinfo:
            resilient_dense_solve(matrix, rhs, policy)
        stages = [r.stage for r in excinfo.value.diagnostics.escalations]
        assert "regularized" not in stages


class TestResilientSparseSolve:
    """The sparse chain: fast → bitexact → fresh → regularized."""

    def _singular_matrix(self):
        # diag(1, 1, 0): exactly singular, zero last pivot.
        return SparseMatrix.from_entries(
            3, 3, [((0, 0), 1.0), ((1, 1), 1.0), ((2, 2), 0.0),
                   ((0, 1), 0.2), ((1, 0), 0.1)])

    def test_consistent_singular_recovered(self):
        matrix = self._singular_matrix()
        rhs = np.array([1.0, 1.0, 0.0], dtype=complex)
        x, diagnostics, __ = resilient_sparse_solve(matrix, rhs)
        assert diagnostics.stage == "regularized"
        assert np.allclose(matrix.matvec(x), rhs)

    def test_inconsistent_singular_quarantined(self):
        matrix = self._singular_matrix()
        rhs = np.array([1.0, 1.0, 1.0], dtype=complex)
        with pytest.raises(SolveFailureError) as excinfo:
            resilient_sparse_solve(matrix, rhs)
        stages = [r.stage for r in excinfo.value.diagnostics.escalations]
        assert "fast" in stages and "regularized" in stages


class TestSweepQuarantineParity:
    """Turning quarantine on must not change a fault-free result bit."""

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_solve_sweep_bit_identical(self, ladder, method):
        circuit, __, ___ = ladder
        system = build_mna_system(circuit)
        s = 2j * np.pi * FREQUENCIES
        legacy = SweepEngine(system, method=method).solve_sweep(s, system.rhs)
        engine = SweepEngine(system, method=method)
        resilient = engine.solve_sweep(s, system.rhs, on_failure="quarantine")
        assert np.array_equal(legacy, resilient)
        assert engine.last_report is not None and engine.last_report.ok
        assert engine.last_report.stage_counts["fast"] == len(s)

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_solve_param_sweep_bit_identical(self, ladder, method):
        circuit, __, space = ladder
        system = build_mna_system(circuit)
        s = 2j * np.pi * FREQUENCIES[:5]
        values = space.sample_values(4, seed=1)
        scales = space.admittance_scales(values)
        legacy = SweepEngine(system, method=method).solve_param_sweep(
            s, space.names, scales, system.rhs)
        engine = SweepEngine(system, method=method)
        resilient = engine.solve_param_sweep(s, space.names, scales,
                                             system.rhs,
                                             on_failure="quarantine")
        assert np.array_equal(legacy, resilient)
        assert engine.last_report.ok

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_singular_point_quarantined_not_fatal(self, method):
        circuit = build_driven_floating_at_dc()
        system = build_mna_system(circuit)
        s = np.array([0j, 2j * np.pi * 1e3])
        engine = SweepEngine(system, method=method)
        solutions = engine.solve_sweep(s, system.rhs,
                                       on_failure="quarantine")
        report = engine.last_report
        assert report.quarantined == [0]
        assert np.isnan(solutions[0]).all()
        assert "sweep point 0" in report.failures[0].description
        # The surviving point keeps its fault-free bits.
        clean = SweepEngine(system, method=method).solve_sweep(
            s[1:], system.rhs)
        assert np.array_equal(solutions[1], clean[0])
        # The report renders.
        assert "quarantined" in format_sweep_report(report)

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    @pytest.mark.parametrize("drive", [1e-6, 1e-9, 1e-12])
    def test_small_drive_inconsistency_still_quarantined(self, method, drive):
        # Regression: the old gate scaled the residual by ‖b‖∞, so a tiny
        # current into the floating node (1e-6 A against the 1 V source
        # elsewhere in b) scored ~1e-6 and was silently "rescued" even
        # though the s = 0 system is inconsistent.  The componentwise gate
        # judges the zero row against its own rhs entry and must quarantine
        # no matter how small the drive is.
        circuit = build_floating_at_dc()
        circuit.add_current_source("Ib", "b", "0", drive)
        system = build_mna_system(circuit)
        s = np.array([0j, 2j * np.pi * 1e3])
        engine = SweepEngine(system, method=method)
        solutions = engine.solve_sweep(s, system.rhs,
                                       on_failure="quarantine")
        report = engine.last_report
        assert report.quarantined == [0]
        assert np.isnan(solutions[0]).all()
        assert np.isfinite(solutions[1]).all()

    @pytest.mark.parametrize("method", ["dense", "sparse"])
    def test_consistent_singular_point_rescued(self, method):
        # The *undriven* floating node is a zero row against a zero rhs
        # entry: still singular, but consistent — the regularized stage can
        # certify a solution and must record the rescue, not quarantine it.
        circuit = build_floating_at_dc()
        system = build_mna_system(circuit)
        s = np.array([0j, 2j * np.pi * 1e3])
        engine = SweepEngine(system, method=method)
        solutions = engine.solve_sweep(s, system.rhs,
                                       on_failure="quarantine")
        report = engine.last_report
        assert report.quarantined == []
        assert report.recovered == [0]
        assert report.stage_counts["regularized"] == 1
        assert np.isfinite(solutions).all()

    def test_raise_mode_carries_sweep_point(self):
        circuit = build_driven_floating_at_dc()
        system = build_mna_system(circuit)
        engine = SweepEngine(system, method="dense")
        with pytest.raises(SolveFailureError) as excinfo:
            engine.solve_sweep(np.array([0j]), system.rhs,
                               policy=SolvePolicy())
        assert excinfo.value.sweep_point == 0


class TestEnsembleQuarantine:
    """The ensemble acceptance path: injected faults → accurate reports."""

    @pytest.mark.parametrize("solver", ["lapack", "lu"])
    def test_no_fault_bit_parity(self, ua741, solver):
        circuit, spec, space = ua741
        legacy = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                samples=16, seed=2, solver=solver)
        resilient = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   samples=16, seed=2, solver=solver,
                                   on_failure="quarantine")
        assert np.array_equal(legacy.responses, resilient.responses)
        assert resilient.report.ok
        assert resilient.surviving_mask().all()

    def test_injected_faults_quarantined_exactly(self, ua741):
        circuit, spec, space = ua741
        samples, seed = 256, 7
        clean = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                               samples=samples, seed=seed)
        with ensemble_faults({3: "singular", 17: "nan"}):
            result = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                          samples=samples, seed=seed,
                                          on_failure="quarantine")
        ensemble = result.ensemble
        report = ensemble.report
        # The report names exactly the injected samples.
        assert report.quarantined == [3, 17]
        descriptions = {record.index: record.description
                        for record in report.failures}
        assert "ensemble member 3" in descriptions[3]
        assert "ensemble member 17" in descriptions[17]
        # Quarantined rows are NaN; every survivor keeps fault-free bits.
        mask = ensemble.surviving_mask()
        assert not mask[3] and not mask[17] and mask.sum() == samples - 2
        assert np.isnan(ensemble.responses[3]).all()
        assert np.isnan(ensemble.responses[17]).all()
        assert np.array_equal(ensemble.responses[mask],
                              clean.responses[mask])
        # Envelope == the clean run's statistics restricted to survivors.
        envelope = result.envelope()
        clean_magnitudes = clean.magnitudes_db()[mask]
        assert np.array_equal(envelope.minimum_db,
                              clean_magnitudes.min(axis=0))
        assert np.array_equal(envelope.maximum_db,
                              clean_magnitudes.max(axis=0))
        assert np.array_equal(envelope.mean_db,
                              clean_magnitudes.mean(axis=0))
        # Yield excludes and reports the quarantined samples.
        pivot = float(np.median(clean.magnitudes_db()[:, 4]))
        spec_gain = YieldSpec(name="gain", minimum_gain_db=pivot,
                              at_frequency=float(FREQUENCIES[4]))
        clean_yield = yield_analysis(clean, spec_gain)
        faulted_yield = result.yield_against(spec_gain)
        assert faulted_yield.total == samples - 2
        assert faulted_yield.quarantined == [3, 17]
        assert faulted_yield.failures == [
            index for index in clean_yield.failures if index not in (3, 17)]
        # Variance attribution stays finite over the survivors.
        for entry in variance_attribution(result):
            assert np.isfinite(entry.share)

    def test_near_singular_sample_flagged_degraded(self, ladder):
        # ε = 1e-7 leaves the matrix comfortably solvable (backward-stable
        # residuals) while its ~1/ε condition estimate crosses the policy's
        # lowered limit: the sample must survive but be flagged degraded —
        # and only that sample (the clean ladder sits far below the limit).
        circuit, spec, space = ladder
        policy = SolvePolicy(condition_check="always", condition_limit=1e8)
        with ensemble_faults({5: "near_singular"}, epsilon=1e-7):
            result = ensemble_sweep(circuit, spec, FREQUENCIES[:3], space,
                                    samples=8, seed=3,
                                    on_failure="quarantine", policy=policy)
        assert result.report.quarantined == []
        assert np.isfinite(result.responses[5]).all()
        assert sorted({index for index, __ in result.report.degraded}) == [5]

    def test_all_quarantined_statistics_refuse(self, ua741):
        circuit, spec, space = ua741
        with ensemble_faults({0: "nan", 1: "nan", 2: "nan"}):
            ensemble = ensemble_sweep(circuit, spec, FREQUENCIES[:3], space,
                                      samples=3, seed=0,
                                      on_failure="quarantine")
        assert ensemble.report.quarantined == [0, 1, 2]
        result = MonteCarloResult(ensemble=ensemble,
                                  nominal_response=np.zeros(3), seed=0)
        with pytest.raises(LinAlgError, match="quarantined"):
            result.envelope()
        with pytest.raises(LinAlgError, match="quarantined"):
            variance_attribution(result)

    def test_raise_mode_names_sample(self, ua741):
        circuit, spec, space = ua741
        with ensemble_faults({2: "singular"}):
            with pytest.raises(SolveFailureError) as excinfo:
                ensemble_sweep(circuit, spec, FREQUENCIES[:3], space,
                               samples=4, seed=0, policy=SolvePolicy())
        assert excinfo.value.sample == 2


class TestTransientFaults:
    """A kernel that fails once must recover bit-identically."""

    def test_transient_kernel_failure_recovers_bit_identically(self, ladder):
        circuit, spec, space = ladder
        clean = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                               samples=12, seed=4)
        with failing_kernel(nth=1) as state:
            resilient = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                       samples=12, seed=4,
                                       on_failure="quarantine")
        assert state["count"] > 1  # the kernel failed and was retried
        assert np.array_equal(clean.responses, resilient.responses)
        assert resilient.report.ok


class TestCheckpointedEnsembles:
    """Kill + resume must be bit-identical to an uninterrupted run."""

    def test_kill_and_resume_bit_identical(self, ladder, tmp_path):
        circuit, spec, space = ladder
        path = str(tmp_path / "run.npz")
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   samples=20, seed=3,
                                   on_failure="quarantine")
        killed = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, path=path, samples=20,
            seed=3, shard_size=6, max_shards=2)
        assert not killed.finished and killed.completed == 12
        assert checkpoint_info(path)["completed"] == 12
        resumed = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, path=path, samples=20,
            seed=3, shard_size=6)
        assert resumed.finished and resumed.resumed_from == 12
        assert np.array_equal(resumed.ensemble.responses,
                              reference.responses)
        # Streaming statistics match an uninterrupted checkpointed run bit
        # for bit.
        straight = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space,
            path=str(tmp_path / "straight.npz"), samples=20, seed=3,
            shard_size=6)
        assert resumed.statistics.count == straight.statistics.count
        assert np.array_equal(resumed.statistics.sum_db,
                              straight.statistics.sum_db)
        assert np.array_equal(resumed.statistics.sumsq_db,
                              straight.statistics.sumsq_db)
        assert np.array_equal(resumed.statistics.min_db,
                              straight.statistics.min_db)
        assert np.array_equal(resumed.statistics.max_db,
                              straight.statistics.max_db)

    def test_mismatched_run_rejected(self, ladder, tmp_path):
        circuit, spec, space = ladder
        path = str(tmp_path / "run.npz")
        checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    path=path, samples=12, seed=3,
                                    shard_size=6, max_shards=1)
        with pytest.raises(CheckpointError, match="seed"):
            checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                        path=path, samples=12, seed=4,
                                        shard_size=6)
        with pytest.raises(CheckpointError, match="shard_size"):
            checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                        path=path, samples=12, seed=3,
                                        shard_size=4)

    def test_corrupt_checkpoint_rejected(self, ladder, tmp_path):
        circuit, spec, space = ladder
        path = tmp_path / "run.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                        path=str(path), samples=12, seed=3)

    def _valid_checkpoint(self, ladder, tmp_path, name="run.npz"):
        circuit, spec, space = ladder
        path = tmp_path / name
        checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    path=str(path), samples=12, seed=3,
                                    shard_size=6, max_shards=1)
        return circuit, spec, space, path

    def test_truncated_checkpoint_rejected(self, ladder, tmp_path):
        # A torn copy from a foreign filesystem: the zip central directory
        # (written last) is gone.  os.replace atomicity cannot protect a
        # file that was truncated *after* it was written somewhere else.
        circuit, spec, space, path = self._valid_checkpoint(ladder, tmp_path)
        whole = path.read_bytes()
        for keep in (len(whole) // 2, len(whole) - 8):
            path.write_bytes(whole[:keep])
            with pytest.raises(CheckpointError, match="cannot read"):
                checkpoint_info(str(path))
            with pytest.raises(CheckpointError, match="cannot read"):
                checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES,
                                            space, path=str(path),
                                            samples=12, seed=3, shard_size=6)

    def test_wrong_magic_rejected(self, ladder, tmp_path):
        # Right size, wrong bytes at the front: not a zip archive at all.
        circuit, spec, space, path = self._valid_checkpoint(ladder, tmp_path)
        whole = bytearray(path.read_bytes())
        whole[:4] = b"XXXX"
        path.write_bytes(bytes(whole))
        with pytest.raises(CheckpointError, match="cannot read"):
            checkpoint_info(str(path))

    def test_torn_member_rejected(self, ladder, tmp_path):
        # The archive structure survives but a member's compressed payload
        # is corrupted — CRC / decompression failure must surface as
        # CheckpointError, not zlib garbage or silently wrong arrays.
        circuit, spec, space, path = self._valid_checkpoint(ladder, tmp_path)
        whole = bytearray(path.read_bytes())
        # Flip bytes in the middle of the file, inside member payloads but
        # far from the end-of-archive records.
        middle = len(whole) // 2
        for offset in range(middle, middle + 64):
            whole[offset] ^= 0xFF
        path.write_bytes(bytes(whole))
        with pytest.raises(CheckpointError):
            checkpointed_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                        path=str(path), samples=12, seed=3,
                                        shard_size=6)

    def test_inconsistent_shapes_rejected(self, ladder, tmp_path):
        # A checkpoint whose arrays disagree with its own bookkeeping (a
        # partially-written shard recovered by a foreign tool) must not
        # flow into the resume path.
        from repro.montecarlo import checkpoint as checkpoint_module

        circuit, spec, space, path = self._valid_checkpoint(ladder, tmp_path)
        with np.load(str(path), allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
        state["responses"] = state["responses"][:-2]
        with open(str(path), "wb") as handle:
            np.savez(handle, **state)
        with pytest.raises(CheckpointError, match="internally inconsistent"):
            checkpoint_module._load_checkpoint(str(path))


class TestSingularCircuitsAllEngines:
    """The same singular circuits raise the same typed error everywhere."""

    CASES = [
        ("floating", build_floating_at_dc, np.array([0.0])),
        ("island", build_isolated_island, np.array([0.0, 1e3])),
    ]

    @pytest.mark.parametrize("name,build,frequencies", CASES,
                             ids=[case[0] for case in CASES])
    def test_dense_engine(self, name, build, frequencies):
        system = build_mna_system(build())
        engine = SweepEngine(system, method="dense")
        with pytest.raises(SingularMatrixError, match="singular"):
            engine.solve_sweep(2j * np.pi * frequencies, system.rhs)

    @pytest.mark.parametrize("name,build,frequencies", CASES,
                             ids=[case[0] for case in CASES])
    @pytest.mark.parametrize("ordering", ["markowitz", "amd"])
    def test_sparse_engine_with_ordering(self, name, build, frequencies,
                                         ordering, monkeypatch):
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", ordering)
        system = build_mna_system(build())
        engine = SweepEngine(system, method="sparse")
        with pytest.raises(SingularMatrixError, match="singular"):
            engine.solve_sweep(2j * np.pi * frequencies, system.rhs)

    @pytest.mark.parametrize("name,build,frequencies", CASES,
                             ids=[case[0] for case in CASES])
    def test_screening_engine(self, name, build, frequencies):
        with pytest.raises(SingularMatrixError, match="singular"):
            element_sensitivities(build(), "out", frequencies)

    @pytest.mark.parametrize("name,build,frequencies", CASES,
                             ids=[case[0] for case in CASES])
    def test_symbolic_engine(self, name, build, frequencies):
        transfer = symbolic_network_function(
            build(), TransferSpec(inputs=["vin"], output="out"))
        s = complex(2j * np.pi * frequencies[0])
        with pytest.raises(SingularMatrixError, match="singular"):
            transfer.evaluate(s)
        # Historic callers caught ZeroDivisionError; that must keep working.
        with pytest.raises(ZeroDivisionError):
            transfer.evaluate(s)


class TestToleranceValidation:
    """Bad tolerances fail loudly at construction, not deep in sampling."""

    @pytest.mark.parametrize("fraction", [-0.1, 0.0, 1.0, 1.5,
                                          float("nan"), float("inf")])
    def test_invalid_fraction_rejected(self, fraction):
        with pytest.raises(ValidationError):
            Tolerance(fraction)

    def test_validation_error_is_netlist_error(self):
        with pytest.raises(NetlistError):
            Tolerance(-0.2)

    def test_valid_tolerance_accepted(self):
        assert Tolerance(0.05).fraction == 0.05

    def test_invalid_distribution_rejected(self):
        with pytest.raises(NetlistError):
            Tolerance(0.05, distribution="triangular")


class TestTelemetry:
    """Resilience counters aggregate process-wide and surface in stats()."""

    def test_quarantine_counts_into_telemetry_and_session(self, ua741):
        circuit, spec, space = ua741
        reset_telemetry()
        with ensemble_faults({1: "singular"}):
            ensemble_sweep(circuit, spec, FREQUENCIES[:3], space,
                           samples=4, seed=0, on_failure="quarantine")
        snapshot = telemetry_snapshot()
        assert snapshot["quarantined"] >= 1
        assert snapshot["fast"] >= 1
        stats = AnalysisSession().stats()
        assert stats["resilience"] == telemetry_snapshot()
