"""Tests for the sparse matrix container."""

import numpy as np
import pytest

from repro.errors import LinAlgError
from repro.linalg.sparse import SparseMatrix


class TestConstruction:
    def test_empty(self):
        matrix = SparseMatrix(3)
        assert matrix.shape == (3, 3)
        assert matrix.nnz == 0
        assert matrix.density() == 0.0

    def test_rectangular(self):
        matrix = SparseMatrix(2, 5)
        assert matrix.shape == (2, 5)

    def test_negative_dimensions(self):
        with pytest.raises(LinAlgError):
            SparseMatrix(-1)

    def test_identity(self):
        eye = SparseMatrix.identity(4)
        np.testing.assert_allclose(eye.to_dense(), np.eye(4))

    def test_from_dense_roundtrip(self):
        dense = np.array([[1.0, 0.0], [2.0 + 1j, 3.0]])
        matrix = SparseMatrix.from_dense(dense)
        assert matrix.nnz == 3
        np.testing.assert_allclose(matrix.to_dense(), dense)

    def test_from_dense_requires_2d(self):
        with pytest.raises(LinAlgError):
            SparseMatrix.from_dense(np.ones(3))

    def test_copy_is_independent(self):
        matrix = SparseMatrix(2)
        matrix.set(0, 0, 1.0)
        duplicate = matrix.copy()
        duplicate.set(0, 0, 5.0)
        assert matrix.get(0, 0) == 1.0


class TestAccess:
    def test_set_get_add(self):
        matrix = SparseMatrix(3)
        matrix.set(0, 1, 2.0)
        matrix.add(0, 1, 3.0)
        assert matrix.get(0, 1) == 5.0
        assert matrix[0, 1] == 5.0
        matrix[1, 2] = 7.0
        assert matrix.get(1, 2) == 7.0

    def test_add_cancellation_removes_entry(self):
        matrix = SparseMatrix(2)
        matrix.add(0, 0, 1.0)
        matrix.add(0, 0, -1.0)
        assert matrix.nnz == 0

    def test_set_zero_removes_entry(self):
        matrix = SparseMatrix(2)
        matrix.set(0, 0, 3.0)
        matrix.set(0, 0, 0.0)
        assert matrix.nnz == 0

    def test_out_of_bounds(self):
        matrix = SparseMatrix(2)
        with pytest.raises(LinAlgError):
            matrix.set(2, 0, 1.0)
        with pytest.raises(LinAlgError):
            matrix.add(0, 5, 1.0)

    def test_structural_zero_is_zero(self):
        assert SparseMatrix(3).get(1, 1) == 0.0

    def test_rows_and_columns_views(self):
        matrix = SparseMatrix(2, 3)
        matrix.set(0, 2, 1.0)
        matrix.set(1, 0, 2.0)
        rows = matrix.rows()
        assert rows[0] == {2: 1.0}
        assert rows[1] == {0: 2.0}
        cols = matrix.columns()
        assert cols[0] == {1: 2.0}
        assert matrix.row_nnz() == [1, 1]
        assert matrix.col_nnz() == [1, 0, 1]


class TestArithmetic:
    def test_matvec(self):
        dense = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=complex)
        matrix = SparseMatrix.from_dense(dense)
        vector = np.array([1.0, 1j])
        np.testing.assert_allclose(matrix.matvec(vector), dense @ vector)

    def test_matvec_shape_mismatch(self):
        with pytest.raises(LinAlgError):
            SparseMatrix(2, 3).matvec([1.0, 2.0])

    def test_transpose(self):
        dense = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 5.0]])
        matrix = SparseMatrix.from_dense(dense)
        np.testing.assert_allclose(matrix.transpose().to_dense(), dense.T)

    def test_scaled_and_plus(self):
        a = SparseMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        b = SparseMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        combo = a.plus(b, factor=2.0)
        np.testing.assert_allclose(combo.to_dense(),
                                   [[1.0, 2.0], [2.0, 2.0]])
        np.testing.assert_allclose(a.scaled(3.0).to_dense(),
                                   [[3.0, 0.0], [0.0, 6.0]])

    def test_plus_shape_mismatch(self):
        with pytest.raises(LinAlgError):
            SparseMatrix(2).plus(SparseMatrix(3))

    def test_max_abs(self):
        matrix = SparseMatrix.from_dense(np.array([[1.0, -4.0], [2.0, 0.0]]))
        assert matrix.max_abs() == 4.0
        assert SparseMatrix(2).max_abs() == 0.0

    def test_repr(self):
        assert "nnz=0" in repr(SparseMatrix(2))
