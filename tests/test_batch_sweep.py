"""Batched-vs-pointwise equivalence of the frequency-sweep engine."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.analysis.bode import bode_sweep
from repro.circuits.rc_ladder import build_rc_ladder
from repro.errors import SingularMatrixError
from repro.interpolation.polynomial import Polynomial
from repro.interpolation.rational import RationalFunction
from repro.linalg.dense import batched_dense_lu, dense_lu
from repro.linalg.lu import sparse_lu, sparse_lu_refactor
from repro.linalg.sparse import SparseMatrix
from repro.mna.builder import build_mna_system
from repro.mna.solve import ac_solve, ac_sweep
from repro.netlist.transform import to_admittance_form
from repro.nodal.batch import BatchSampler
from repro.nodal.sampler import NetworkFunctionSampler
from repro.xfloat import XFloat


def _random_grid(rng, count=24):
    """Log-random complex frequency points over 12 decades."""
    magnitudes = 10.0 ** rng.uniform(-2.0, 10.0, count)
    return (2j * math.pi * magnitudes).tolist()


class TestBatchedDenseLU:
    def test_matches_scalar_factorization(self):
        rng = np.random.default_rng(11)
        stack = rng.normal(size=(9, 17, 17)) + 1j * rng.normal(size=(9, 17, 17))
        batched = batched_dense_lu(stack.copy())
        rhs = rng.normal(size=17) + 1j * rng.normal(size=17)
        for index in range(stack.shape[0]):
            scalar = dense_lu(stack[index])
            assert np.array_equal(scalar.lu, batched.lu[index])
            assert np.array_equal(scalar.permutation,
                                  batched.permutations[index])
            member = batched.member(index)
            assert (member.determinant_mantissa_exponent()
                    == scalar.determinant_mantissa_exponent())
            assert np.array_equal(member.solve(rhs), scalar.solve(rhs))

    def test_vectorized_determinants_and_solve(self):
        rng = np.random.default_rng(12)
        stack = rng.normal(size=(6, 13, 13)) + 1j * rng.normal(size=(6, 13, 13))
        batched = batched_dense_lu(stack.copy())
        mantissas, exponents = batched.determinants_mantissa_exponent()
        rhs = rng.normal(size=(6, 13)) + 1j * rng.normal(size=(6, 13))
        solutions = batched.solve(rhs)
        for index in range(6):
            scalar = dense_lu(stack[index])
            mantissa, exponent = scalar.determinant_mantissa_exponent()
            assert exponents[index] == exponent
            assert mantissas[index] == pytest.approx(mantissa, rel=1e-12)
            expected = scalar.solve(rhs[index])
            assert np.max(np.abs(solutions[index] - expected)) <= (
                1e-12 * np.max(np.abs(expected))
            )

    def test_singular_member_flagged_not_fatal(self):
        rng = np.random.default_rng(13)
        stack = rng.normal(size=(4, 8, 8)) + 1j * rng.normal(size=(4, 8, 8))
        stack[2] = 0.0
        batched = batched_dense_lu(stack.copy())
        assert batched.singular.tolist() == [False, False, True, False]
        mantissas, __ = batched.determinants_mantissa_exponent()
        assert mantissas[2] == 0
        healthy = dense_lu(stack[0])
        assert (batched.member(0).determinant_mantissa_exponent()
                == healthy.determinant_mantissa_exponent())


class TestSparseRefactor:
    def _random_sparse(self, rng, n=20, density=0.25):
        dense = np.where(rng.random((n, n)) < density, 1.0, 0.0) * (
            rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n))
        )
        dense += np.diag(rng.normal(size=n) + 4.0)
        return SparseMatrix.from_dense(dense)

    def test_refactor_matches_fresh(self):
        rng = np.random.default_rng(21)
        matrix = self._random_sparse(rng)
        pattern = sparse_lu(matrix)
        shifted = matrix.copy()
        for row, col, value in list(matrix.entries()):
            shifted.set(row, col, value * (1.0 + 0.05j))
        refactored = sparse_lu_refactor(shifted, pattern)
        fresh = sparse_lu(shifted)
        rhs = rng.normal(size=matrix.n_rows)
        assert np.max(np.abs(refactored.solve(rhs) - fresh.solve(rhs))) < 1e-9
        r_mantissa, r_exponent = refactored.determinant_mantissa_exponent()
        f_mantissa, f_exponent = fresh.determinant_mantissa_exponent()
        assert r_exponent == f_exponent
        assert r_mantissa == pytest.approx(f_mantissa, rel=1e-9)

    def test_zero_pivot_raises(self):
        rng = np.random.default_rng(22)
        matrix = self._random_sparse(rng, n=6, density=0.0)
        pattern = sparse_lu(matrix)
        degenerate = matrix.copy()
        degenerate.set(pattern.pivot_rows[0], pattern.pivot_cols[0], 0.0)
        with pytest.raises(SingularMatrixError):
            sparse_lu_refactor(degenerate, pattern)


class TestSampleManyEquivalence:
    @pytest.mark.parametrize("scales", [(1.0, 1.0), (2.5, 1e9), (0.3, 3.7e6)])
    def test_property_random_grids_match_pointwise(self, scales, rc_ladder_3,
                                                   ota_circuit,
                                                   miller_circuit):
        """Batched and per-point samples agree on random grids and scales."""
        conductance_scale, frequency_scale = scales
        rng = np.random.default_rng(int(frequency_scale) % 7919)
        fixtures = [rc_ladder_3[:2], ota_circuit, miller_circuit]
        for circuit, spec in fixtures:
            sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
            points = _random_grid(rng)
            pointwise = sampler.sample_many(points, conductance_scale,
                                            frequency_scale, batch=False)
            batched = sampler.sample_many(points, conductance_scale,
                                          frequency_scale, batch=True)
            for expected, got in zip(pointwise, batched):
                assert got.numerator == expected.numerator
                assert got.denominator == expected.denominator

    def test_sample_many_preserves_ordering(self, rc_ladder_3):
        circuit, spec = rc_ladder_3[:2]
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        rng = np.random.default_rng(5)
        points = _random_grid(rng, count=17)
        rng.shuffle(points)
        samples = sampler.sample_many(points)
        assert [sample.s for sample in samples] == [complex(p) for p in points]

    def test_sample_many_xfloat_exponent_handling(self):
        """Huge scale factors: exponents match per-point and mantissas stay
        normalized into [1, 10), beyond double range when denormalized."""
        circuit, spec = build_rc_ladder(24)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        points = _random_grid(np.random.default_rng(6), count=12)
        pointwise = sampler.sample_many(points, 1.0, 1e9, batch=False)
        batched = sampler.sample_many(points, 1.0, 1e9, batch=True)
        for expected, got in zip(pointwise, batched):
            assert got.denominator == expected.denominator
            assert got.numerator == expected.numerator
            for mantissa, __ in (got.numerator, got.denominator):
                if mantissa != 0:
                    # Mantissas stay normalized (up to one rounding ulp at
                    # the decade boundary, matching the per-point path).
                    assert 0.999 <= abs(mantissa) < 10.001
        # The sweep reaches magnitudes a plain double cannot represent once
        # combined with the Eq. (11) denormalization — XFloat carries them.
        coefficient = XFloat(abs(batched[0].denominator[0]),
                             batched[0].denominator[1] - 1000)
        assert coefficient.log10() < -308

    def test_sparse_method_matches_pointwise(self, miller_circuit):
        circuit, spec = miller_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec,
                                         method="sparse")
        points = _random_grid(np.random.default_rng(8), count=15)
        pointwise = sampler.sample_many(points, batch=False)
        batched = sampler.sample_many(points, batch=True)
        reference = np.array([sample.transfer() for sample in pointwise])
        values = np.array([sample.transfer() for sample in batched])
        assert np.max(np.abs(values - reference)
                      / np.abs(reference)) <= 1e-9
        batch_sampler = sampler.batch_sampler()
        assert batch_sampler.factorization_count == 1
        assert batch_sampler.refactorization_count == len(points) - 1

    def test_batch_sampler_direct_api(self, rc_ladder_3):
        circuit, spec = rc_ladder_3[:2]
        admittance = to_admittance_form(circuit)
        batch_sampler = BatchSampler(admittance, spec)
        frequencies = np.logspace(2, 7, 30)
        response = batch_sampler.frequency_response(frequencies)
        sampler = NetworkFunctionSampler(admittance, spec)
        expected = np.array([sampler.transfer_value(2j * math.pi * f)
                             for f in frequencies])
        assert np.array_equal(response, expected)


class TestMnaAndAnalysisSweep:
    def test_ac_sweep_matches_ac_solve(self, ua741_circuit):
        circuit, __ = ua741_circuit
        system = build_mna_system(circuit)
        points = _random_grid(np.random.default_rng(9), count=10)
        swept = ac_sweep(system, points)
        for index, point in enumerate(points):
            single = ac_solve(system, point)
            assert np.max(np.abs(swept[index] - single)) <= (
                1e-9 * np.max(np.abs(single))
            )

    def test_ac_sweep_sparse_matches_dense(self, ua741_circuit):
        circuit, __ = ua741_circuit
        system = build_mna_system(circuit)
        points = _random_grid(np.random.default_rng(10), count=6)
        dense = ac_sweep(system, points, method="dense")
        sparse = ac_sweep(system, points, method="sparse")
        scale = np.max(np.abs(dense))
        assert np.max(np.abs(dense - sparse)) <= 1e-9 * scale

    def test_analysis_frequency_response_matches_value_at(self, ua741_circuit):
        circuit, spec = ua741_circuit
        analysis = ACAnalysis(circuit, spec)
        frequencies = np.logspace(0, 8, 25)
        swept = analysis.frequency_response(frequencies)
        pointwise = np.array([analysis.value_at(2j * math.pi * f)
                              for f in frequencies])
        assert np.max(np.abs(swept - pointwise) / np.abs(pointwise)) <= 1e-9
        assert analysis.factorization_count == 50

    def test_bode_sweep_matches_bode(self, ua741_circuit):
        circuit, spec = ua741_circuit
        frequencies = np.logspace(0, 8, 17)
        data = bode_sweep(circuit, spec, frequencies)
        magnitude, phase = ACAnalysis(circuit, spec).bode(frequencies)
        assert np.allclose(data.magnitude_db, magnitude, rtol=1e-9)
        assert np.allclose(data.phase_deg, phase, rtol=1e-9)


class TestVectorizedEvaluation:
    def _polynomials(self):
        rng = np.random.default_rng(31)
        numerator = Polynomial([
            XFloat(rng.normal(), int(exponent))
            for exponent in rng.integers(-150, 150, 12)
        ])
        denominator = Polynomial([
            XFloat(rng.normal(), int(exponent))
            for exponent in rng.integers(-120, 180, 15)
        ])
        return numerator, denominator

    def test_polynomial_evaluate_many_matches_scalar(self):
        polynomial, __ = self._polynomials()
        rng = np.random.default_rng(32)
        s_values = np.asarray(_random_grid(rng, count=40))
        s_values[3] = 0.0
        mantissas, exponents = polynomial.evaluate_many(s_values)
        for index, s in enumerate(s_values):
            mantissa, exponent = polynomial.evaluate(s)
            value = mantissas[index] * 10.0 ** float(exponents[index]
                                                     - exponent)
            assert value == pytest.approx(mantissa, rel=1e-9, abs=1e-300)

    def test_rational_frequency_response_matches_scalar(self):
        numerator, denominator = self._polynomials()
        rational = RationalFunction(numerator, denominator)
        frequencies = np.logspace(-1, 9, 60)
        batched = rational.frequency_response(frequencies)
        pointwise = np.array([rational.evaluate(2j * math.pi * f)
                              for f in frequencies])
        assert np.max(np.abs(batched - pointwise)
                      / np.maximum(np.abs(pointwise), 1e-300)) <= 1e-9
