"""Fill-reducing elimination orderings: correctness, parity and error paths.

Three pillars of the ordered sparse engine:

* **Permutation round-trip** — factoring ``A`` under ``column_order`` is
  bit-for-bit the same computation as factoring the symmetrically permuted
  ``P·A·Pᵀ`` in natural order: identical pivots, and identical solutions
  after back-permutation.  This is what lets the engine keep its factors in
  original index space (no back-permutation anywhere downstream).
* **Fill-in monotonicity** — AMD / RCM never beat by the natural order on
  the generator topologies (and AMD is exact — zero fill — on trees).
* **Error paths** — structurally deficient and numerically singular systems
  fail loudly through :func:`~repro.linalg.lu.sparse_lu` and
  :func:`~repro.linalg.lu.sparse_lu_refactor`, with and without an ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import build_clock_tree, build_rc_mesh
from repro.engine.sweep import SweepEngine
from repro.errors import FormulationError, LinAlgError, SingularMatrixError
from repro.linalg.lu import sparse_lu, sparse_lu_refactor, sparse_lu_reusing
from repro.linalg.ordering import (amd_order, fill_reducing_order,
                                   inverse_permutation, permute_symmetric,
                                   rcm_order)
from repro.linalg.sparse import SparseMatrix
from repro.mna.builder import build_mna_system

from strategies import random_circuit


def _mesh_matrix(rows, cols=None, s=2j * np.pi * 1e5, seed=0):
    """Assembled MNA matrix plus merged keys of one RC mesh."""
    circuit, _spec = build_rc_mesh(rows, cols, seed=seed)
    system = build_mna_system(circuit)
    keys, __, ___ = system.merged_sparse_structure()
    return system.assemble(s), keys, system


class TestPermutationRoundTrip:
    """column_order factoring ≡ factoring the permuted matrix, to the bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mesh_round_trip(self, seed):
        matrix, keys, system = _mesh_matrix(7, seed=seed)
        n = matrix.n_rows
        order = amd_order(n, keys)
        assert sorted(order) == list(range(n))

        direct = sparse_lu(matrix, column_order=order)
        permuted = permute_symmetric(matrix, order)
        natural = sparse_lu(permuted, column_order=list(range(n)))

        # Same elimination arithmetic → identical pivot values, bit for bit.
        assert direct.pivots == natural.pivots, seed
        assert direct.fill_in == natural.fill_in, seed

        rhs = np.asarray(system.rhs, dtype=complex)
        x_direct = np.asarray(direct.solve(rhs))
        y = np.asarray(natural.solve(rhs[order]))
        x_back = np.empty_like(y)
        x_back[order] = y     # x[order[i]] = y[i]: undo the row permutation
        assert np.array_equal(x_direct, x_back), seed

        # And both must actually solve the original system.
        residual = np.max(np.abs(matrix.to_dense() @ x_direct - rhs))
        assert residual <= 1e-9 * matrix.max_abs(), seed

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_random_circuit_round_trip(self, seed):
        circuit, _spec = random_circuit(seed)
        system = build_mna_system(circuit)
        keys, __, ___ = system.merged_sparse_structure()
        matrix = system.assemble(2j * np.pi * 997.0)
        n = matrix.n_rows
        for order in (amd_order(n, keys), rcm_order(n, keys)):
            direct = sparse_lu(matrix, column_order=order)
            natural = sparse_lu(permute_symmetric(matrix, order),
                                column_order=list(range(n)))
            assert direct.pivots == natural.pivots, (seed, order)

    def test_permute_symmetric_round_trip(self):
        matrix, keys, __ = _mesh_matrix(4)
        order = rcm_order(matrix.n_rows, keys)
        inverse = inverse_permutation(order)
        assert [order[i] for i in inverse] == list(range(matrix.n_rows))
        back = permute_symmetric(permute_symmetric(matrix, order), inverse)
        assert np.array_equal(back.to_dense(), matrix.to_dense())


class TestFillMonotonicity:
    """Fill-reducing orders never lose to the natural order on generators."""

    @pytest.mark.parametrize("rows", [6, 10, 14])
    def test_mesh_fill(self, rows):
        matrix, keys, __ = _mesh_matrix(rows)
        n = matrix.n_rows
        natural = sparse_lu(matrix, column_order=list(range(n))).fill_in
        for method in ("amd", "rcm", "auto"):
            order = fill_reducing_order(n, keys, method=method)
            ordered = sparse_lu(matrix, column_order=order).fill_in
            assert ordered <= natural, (rows, method, ordered, natural)

    @pytest.mark.parametrize("levels", [4, 6])
    def test_tree_fill_is_zero(self, levels):
        circuit, __ = build_clock_tree(levels)
        system = build_mna_system(circuit)
        keys, _c, _d = system.merged_sparse_structure()
        matrix = system.assemble(2j * np.pi * 1e5)
        order = amd_order(matrix.n_rows, keys)
        # Eliminating leaves first, a tree factors with no fill at all.
        assert sparse_lu(matrix, column_order=order).fill_in == 0


class TestErrorPaths:
    """Deficient systems fail loudly, ordered or not."""

    def test_column_order_must_be_permutation(self):
        matrix = SparseMatrix.identity(3)
        with pytest.raises(LinAlgError, match="permutation"):
            sparse_lu(matrix, column_order=[0, 1, 1])
        with pytest.raises(LinAlgError, match="permutation"):
            sparse_lu(matrix, column_order=[0, 1])

    def test_structurally_empty_column(self):
        # Column 1 has no entries at all: no pivot exists in any order.
        matrix = SparseMatrix.from_entries(
            3, 3, [((0, 0), 1.0), ((1, 0), 2.0), ((2, 2), 3.0)])
        with pytest.raises(SingularMatrixError):
            sparse_lu(matrix)
        with pytest.raises(SingularMatrixError):
            sparse_lu(matrix, column_order=[1, 0, 2])

    def test_numerically_singular(self):
        # Rank 1: the second elimination step finds only cancelled entries.
        matrix = SparseMatrix.from_entries(
            2, 2, [((0, 0), 1.0), ((0, 1), 2.0),
                   ((1, 0), 2.0), ((1, 1), 4.0)])
        with pytest.raises(SingularMatrixError):
            sparse_lu(matrix, column_order=[0, 1])

    def test_refactor_rejects_zeroed_pivot_at_scale(self):
        # A mid-size mesh (n > 50): factor once with ordering, then refactor
        # a matrix whose first reused pivot has been cancelled to zero.
        matrix, keys, system = _mesh_matrix(8)
        n = matrix.n_rows
        order = fill_reducing_order(n, keys)
        factorization, pattern, refactored = sparse_lu_reusing(
            matrix, None, column_order=order)
        assert not refactored and pattern is not None
        assert pattern.pivot_cols == order

        broken = matrix.copy()
        row, col = pattern.pivot_rows[0], pattern.pivot_cols[0]
        broken.add(row, col, -broken.get(row, col))
        with pytest.raises(SingularMatrixError, match="reused pivot"):
            sparse_lu_refactor(broken, pattern)

    def test_refactor_rejects_degraded_pivot(self):
        # The reused (0, 0) pivot collapses to 1e-12 of its column: the
        # stability guard must demand fresh pivoting instead of dividing.
        matrix = SparseMatrix.from_entries(
            2, 2, [((0, 0), 4.0), ((0, 1), 1.0),
                   ((1, 0), 1.0), ((1, 1), 4.0)])
        __, pattern, ___ = sparse_lu_reusing(matrix, None,
                                             column_order=[0, 1])
        degraded = matrix.copy()
        degraded.set(0, 0, 4e-12)
        with pytest.raises(SingularMatrixError, match="column magnitude"):
            sparse_lu_refactor(degraded, pattern, stability=1e-8)

    def test_refactor_shape_mismatch(self):
        matrix, keys, __ = _mesh_matrix(4)
        __, pattern, ___ = sparse_lu_reusing(matrix, None)
        with pytest.raises(LinAlgError, match="pattern"):
            sparse_lu_refactor(SparseMatrix.identity(3), pattern)

    def test_singular_system_through_engine(self):
        # A floating node reaches the engine as a structurally deficient
        # sparse system and must surface as SingularMatrixError.
        from repro.netlist.circuit import Circuit

        circuit = Circuit("floating")
        circuit.add_voltage_source("Vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "a", 1e3)
        circuit.add_capacitor("C1", "b", "0", 1e-12)   # b floats at DC
        system = build_mna_system(circuit)
        engine = SweepEngine(system, method="sparse")
        with pytest.raises(SingularMatrixError):
            engine.solve_sweep(np.array([0.0 + 0.0j]), system.rhs)


class TestOrderingConfiguration:
    """REPRO_SPARSE_ORDERING selects the engine's elimination order."""

    def test_engine_reads_env(self, monkeypatch):
        circuit, __ = build_rc_mesh(5)
        system = build_mna_system(circuit)
        keys, _c, _d = system.merged_sparse_structure()
        n = system.dimension

        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "natural")
        assert SweepEngine(system).column_order() == list(range(n))
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "rcm")
        assert SweepEngine(system).column_order() == rcm_order(n, keys)
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "markowitz")
        assert SweepEngine(system).column_order() is None
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "amd")
        assert SweepEngine(system).column_order() == amd_order(n, keys)
        # Unknown values fall back to the default strategy.
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "nonsense")
        assert SweepEngine(system).ordering == "auto"

    def test_explicit_ordering_wins_over_env(self, monkeypatch):
        circuit, __ = build_rc_mesh(5)
        system = build_mna_system(circuit)
        monkeypatch.setenv("REPRO_SPARSE_ORDERING", "markowitz")
        engine = SweepEngine(system, ordering="rcm")
        assert engine.ordering == "rcm"
        assert engine.column_order() is not None
        with pytest.raises(FormulationError, match="ordering"):
            SweepEngine(system, ordering="bogus")

    @pytest.mark.parametrize("ordering", ["natural", "rcm", "amd",
                                          "markowitz"])
    def test_every_strategy_solves(self, ordering):
        circuit, spec = build_rc_mesh(6)
        system = build_mna_system(circuit)
        s = 2j * np.pi * np.logspace(2, 8, 4)
        reference = SweepEngine(system, method="dense").solve_sweep(
            s, system.rhs)
        solution = SweepEngine(system, method="sparse",
                               ordering=ordering).solve_sweep(s, system.rhs)
        norms = np.linalg.norm(reference, axis=1, keepdims=True)
        deviation = float(np.max(np.abs(solution - reference) / norms))
        assert deviation <= 1e-10, (ordering, deviation)
