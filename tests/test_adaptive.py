"""Tests for the adaptive scaling algorithm and the reference generation API."""

import dataclasses
import math

import numpy as np
import pytest

from repro.circuits.rc_ladder import build_rc_ladder, rc_ladder_denominator_coefficients
from repro.errors import InterpolationError
from repro.interpolation.adaptive import (
    AdaptiveOptions,
    AdaptiveScalingInterpolator,
)
from repro.interpolation.reference import generate_reference
from repro.interpolation.scaling import ScaleFactors
from repro.netlist.transform import to_admittance_form
from repro.nodal.sampler import NetworkFunctionSampler


def wide_spread_ladder(stages=14):
    """RC ladder whose element spread forces several interpolations."""
    resistances = [1e3 * (10.0 ** (i % 4)) for i in range(stages)]
    capacitances = [1e-9 / (10.0 ** (i % 5)) for i in range(stages)]
    return build_rc_ladder(stages, resistances, capacitances), resistances, capacitances


class TestAdaptiveOnLadders:
    def test_coefficients_match_analytic_recursion(self):
        (circuit, spec), resistances, capacitances = wide_spread_ladder(14)
        expected = rc_ladder_denominator_coefficients(resistances, capacitances)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        result = AdaptiveScalingInterpolator(sampler, "denominator").run()
        assert result.converged
        scale = float(result.coefficients[0])
        for power, value in enumerate(expected):
            got = result.coefficients[power]
            assert not got.is_zero()
            assert float(got) / scale == pytest.approx(value, rel=1e-4)

    def test_multiple_interpolations_needed_for_wide_spread(self):
        (circuit, spec), __, __c = wide_spread_ladder(14)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        result = AdaptiveScalingInterpolator(sampler, "denominator").run()
        assert result.iteration_count() >= 2
        # Regions of successive iterations must be distinct (they move).
        regions = {(r.region_start, r.region_end) for r in result.iterations
                   if r.region_start is not None}
        assert len(regions) >= 2

    def test_deflation_and_no_deflation_agree(self):
        (circuit, spec), __, __c = wide_spread_ladder(12)
        admittance = to_admittance_form(circuit)

        def run(deflation):
            sampler = NetworkFunctionSampler(admittance, spec)
            options = AdaptiveOptions(deflation=deflation)
            return AdaptiveScalingInterpolator(sampler, "denominator",
                                               options).run()

        with_deflation = run(True)
        without_deflation = run(False)
        assert with_deflation.converged and without_deflation.converged
        for a, b in zip(with_deflation.coefficients,
                        without_deflation.coefficients):
            if a.is_zero() or b.is_zero():
                assert a.is_zero() == b.is_zero()
                continue
            assert a.log10() == pytest.approx(b.log10(), abs=1e-4)
            assert a.sign() == b.sign()

    def test_single_scale_option_still_converges(self):
        (circuit, spec), __, __c = wide_spread_ladder(10)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        options = AdaptiveOptions(single_scale=True)
        result = AdaptiveScalingInterpolator(sampler, "denominator", options).run()
        assert result.converged

    def test_status_and_summary(self):
        (circuit, spec), __, __c = wide_spread_ladder(8)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        result = AdaptiveScalingInterpolator(sampler, "denominator").run()
        assert len(result.status) == result.degree_bound + 1
        assert result.valid_count() + result.negligible_count() == len(result.status)
        assert "denominator" in result.summary()
        assert result.coefficient(-1).is_zero()
        assert result.coefficient(result.degree_bound + 5).is_zero()

    def test_invalid_kind_rejected(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        with pytest.raises(InterpolationError):
            AdaptiveScalingInterpolator(sampler, kind="both")

    def test_explicit_num_points_override(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        options = AdaptiveOptions(num_points=2)
        result = AdaptiveScalingInterpolator(sampler, "denominator", options).run()
        assert result.degree_bound == 1
        assert result.converged


class TestUa741Adaptive:
    def test_denominator_converges_with_multiple_regions(self, ua741_circuit):
        circuit, spec = ua741_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        result = AdaptiveScalingInterpolator(sampler, "denominator").run()
        assert result.converged
        assert result.degree_bound >= 30
        assert result.iteration_count() >= 3
        # Coefficients must decay monotonically in magnitude over most of the
        # range (each extra power of s trades a conductance for a capacitance).
        logs = [c.log10() for c in result.coefficients if not c.is_zero()]
        drops = [logs[i + 1] - logs[i] for i in range(len(logs) - 1)]
        assert np.median(drops) < -5.0

    def test_denormalized_spread_exceeds_double_range(self, ua741_circuit):
        circuit, spec = ua741_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        result = AdaptiveScalingInterpolator(sampler, "denominator").run()
        logs = [c.log10() for c in result.coefficients if not c.is_zero()]
        assert max(logs) - min(logs) > 308.0


class TestGenerateReference:
    def test_reference_matches_direct_ac(self, miller_circuit,
                                         frequencies_decade):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        assert reference.converged
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        interpolated = reference.frequency_response(frequencies_decade)
        direct = np.array([sampler.transfer_value(2j * math.pi * f)
                           for f in frequencies_decade])
        np.testing.assert_allclose(interpolated, direct, rtol=1e-3)

    def test_reference_accessors(self, miller_circuit):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        assert reference.coefficient("denominator", 0) == \
            reference.coefficient("d", 0)
        assert reference.coefficient_magnitude("denominator", 0) == \
            pytest.approx(reference.coefficient("denominator", 0).log10())
        with pytest.raises(Exception):
            reference.coefficient("zzz", 0)
        assert reference.iteration_count() >= 2
        assert "numerical reference" in reference.summary()

    def test_bode_output_shapes(self, miller_circuit, frequencies_decade):
        circuit, spec = miller_circuit
        reference = generate_reference(circuit, spec)
        magnitude, phase = reference.bode(frequencies_decade)
        assert magnitude.shape == frequencies_decade.shape
        assert phase.shape == frequencies_decade.shape

    def test_rc_reference_dc_gain(self, simple_rc):
        circuit, spec = simple_rc
        reference = generate_reference(circuit, spec)
        assert abs(reference.transfer_function().dc_gain()) == pytest.approx(
            1.0, rel=1e-6)

    def test_ota_reference_matches_ac(self, ota_circuit):
        circuit, spec = ota_circuit
        reference = generate_reference(circuit, spec)
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        for frequency in (1e2, 1e5, 1e8):
            s = 2j * math.pi * frequency
            assert reference.transfer_function().evaluate(s) == pytest.approx(
                sampler.transfer_value(s), rel=1e-3)
