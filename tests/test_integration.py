"""End-to-end integration and cross-subsystem consistency tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    TransferSpec,
    build_rc_ladder,
    generate_reference,
    interpolate_network_function,
    parse_netlist,
    to_admittance_form,
)
from repro.analysis.ac import ACAnalysis
from repro.analysis.compare import compare_responses
from repro.circuits.rc_ladder import rc_ladder_denominator_coefficients
from repro.interpolation.adaptive import AdaptiveOptions
from repro.nodal.sampler import NetworkFunctionSampler
from repro.symbolic.generation import symbolic_network_function


class TestNetlistToReferencePipeline:
    NETLIST = """
    * two-stage bipolar amplifier
    .model qn npn (beta=150 va=80 tf=0.4n cje=0.8p cmu=0.4p rb=150 ccs=1p)
    Vin in 0 ac 1
    Rs in b1 1k
    Q1 c1 b1 e1 qn ic=200u
    Re1 e1 0 500
    Rc1 c1 0 20k
    Q2 c2 c1 e2 qn ic=1m
    Re2 e2 0 100
    Rc2 c2 0 5k
    CL c2 0 10p
    .end
    """

    def test_parse_analyze_reference_and_compare(self):
        circuit = parse_netlist(self.NETLIST)
        spec = TransferSpec(inputs=["Vin"], output="c2")
        reference = generate_reference(circuit, spec)
        assert reference.converged

        frequencies = np.logspace(1, 9, 33)
        interpolated = reference.frequency_response(frequencies)
        simulated = ACAnalysis(circuit, spec).frequency_response(frequencies)
        comparison = compare_responses(frequencies, simulated, interpolated)
        assert comparison.max_magnitude_error_db < 0.1
        assert comparison.max_phase_error_deg < 1.0

    def test_symbolic_and_interpolated_coefficients_agree(self):
        """Symbolic sum-of-products and interpolated coefficients must match."""
        circuit = parse_netlist(self.NETLIST)
        spec = TransferSpec(inputs=["Vin"], output="c2")
        admittance = to_admittance_form(circuit)
        reference = generate_reference(admittance, spec,
                                       admittance_transform=False)
        symbolic = symbolic_network_function(admittance, spec,
                                             admittance_transform=False)
        for power in range(0, 4):
            interpolated = reference.coefficient("denominator", power)
            exact = symbolic.coefficient_value("denominator", power)
            if exact.is_zero() or interpolated.is_zero():
                continue
            assert interpolated.log10() == pytest.approx(exact.log10(),
                                                         abs=1e-3)
            assert interpolated.sign() == exact.sign()


class TestConsistencyAcrossFormulations:
    def test_nodal_mna_and_reference_agree(self, miller_circuit):
        circuit, spec = miller_circuit
        admittance = to_admittance_form(circuit)
        sampler = NetworkFunctionSampler(admittance, spec)
        analysis = ACAnalysis(circuit, spec)
        reference = generate_reference(circuit, spec)
        for frequency in (1e2, 1e5, 1e8):
            s = 2j * math.pi * frequency
            nodal_value = sampler.transfer_value(s)
            mna_value = analysis.value_at(s)
            reference_value = reference.transfer_function().evaluate(s)
            assert nodal_value == pytest.approx(mna_value, rel=1e-8)
            assert reference_value == pytest.approx(mna_value, rel=1e-3)

    def test_options_are_honoured(self, simple_rc):
        circuit, spec = simple_rc
        options = AdaptiveOptions(significant_digits=4, max_iterations=5)
        reference = generate_reference(circuit, spec, options=options)
        assert reference.converged


class TestPropertyBasedLadders:
    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.floats(min_value=1e2, max_value=1e6), min_size=8,
                    max_size=8),
           st.lists(st.floats(min_value=1e-13, max_value=1e-8), min_size=8,
                    max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_reference_matches_ladder_recursion(self, stages, resistances,
                                                capacitances):
        resistances = resistances[:stages]
        capacitances = capacitances[:stages]
        circuit, spec = build_rc_ladder(stages, resistances, capacitances)
        expected = rc_ladder_denominator_coefficients(resistances, capacitances)
        reference = generate_reference(circuit, spec)
        assert reference.converged
        denominator = reference.coefficients("denominator")
        scale = float(denominator[0])
        for power, value in enumerate(expected):
            assert float(denominator[power]) / scale == pytest.approx(
                value, rel=1e-3)

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=1e2, max_value=1e5),
           st.floats(min_value=1e-12, max_value=1e-9))
    @settings(max_examples=20, deadline=None)
    def test_interpolated_response_matches_ac(self, stages, resistance,
                                              capacitance):
        circuit, spec = build_rc_ladder(stages, resistance, capacitance)
        reference = generate_reference(circuit, spec)
        analysis = ACAnalysis(circuit, spec)
        corner = 1.0 / (2 * math.pi * resistance * capacitance)
        for frequency in (corner / 100.0, corner, corner * 100.0):
            s = 2j * math.pi * frequency
            assert reference.transfer_function().evaluate(s) == pytest.approx(
                analysis.value_at(s), rel=1e-3)
