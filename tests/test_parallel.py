"""Supervised multiprocess ensemble driver: crash/hang recovery, determinism.

The contract under test (ISSUE 9):

* a clean parallel run is **bit-identical** to the single-process resilient
  run for every worker count — responses, quarantined indices, merged
  :class:`~repro.engine.resilience.SweepReport` counts, streaming
  statistics;
* **infrastructure failure** (SIGKILL mid-shard, a hung worker past its
  heartbeat timeout, an uncaught worker exception) is healed by bounded
  shard re-dispatch and never shows in the output; exhausting the retry
  budget aborts with a typed :class:`~repro.errors.ShardFailureError`
  carrying the shard index and the chronological attempt trail;
* **numerical failure** keeps its in-process semantics across process
  boundaries: quarantine masks the sample in the merged report, raise mode
  propagates the typed error — neither triggers a shard re-run;
* the driver composes with
  :func:`~repro.montecarlo.checkpoint.checkpointed_ensemble_sweep`: a
  killed supervisor resumes with workers and still lands on the
  uninterrupted sequential run's exact bits;
* worker :data:`~repro.engine.resilience.TELEMETRY` deltas are folded
  exactly once each, so process-wide counters cover the whole ensemble.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from faults import ensemble_faults, parallel_faults

from repro.analysis.montecarlo import monte_carlo_analysis
from repro.circuits.rc_ladder import build_rc_ladder
from repro.engine.resilience import reset_telemetry, telemetry_snapshot
from repro.errors import (FormulationError, ShardFailureError,
                          SingularMatrixError)
from repro.montecarlo import (ParameterSpace, SupervisorConfig,
                              checkpoint_info, checkpointed_ensemble_sweep,
                              ensemble_sweep, parallel_ensemble_sweep)
from repro.montecarlo.parallel import (_default_workers, _start_method,
                                       run_shards, shard_plan)

FREQUENCIES = np.logspace(1, 6, 5)

#: Tight supervision timings so fault tests finish in seconds: hang
#: detection after 0.8 s of heartbeat silence, near-immediate re-dispatch.
FAST = SupervisorConfig(heartbeat_interval=0.05, heartbeat_timeout=0.8,
                        shard_deadline=30.0, backoff=0.01,
                        poll_interval=0.005)


@pytest.fixture(scope="module")
def ladder():
    circuit, spec = build_rc_ladder(4)
    names = [element.name for element in circuit
             if type(element).__name__ in ("Resistor", "Capacitor")][:5]
    space = ParameterSpace(circuit, {name: 0.1 for name in names})
    return circuit, spec, space


def _statistics_equal(left, right):
    assert left.count == right.count
    np.testing.assert_array_equal(left.sum_db, right.sum_db)
    np.testing.assert_array_equal(left.sumsq_db, right.sumsq_db)
    np.testing.assert_array_equal(left.min_db, right.min_db)
    np.testing.assert_array_equal(left.max_db, right.max_db)


def _reports_equal(left, right):
    assert left.quarantined == right.quarantined
    assert left.total == right.total
    assert len(left.failures) == len(right.failures)
    assert len(left.recoveries) == len(right.recoveries)
    assert left.stage_counts == right.stage_counts
    assert sorted(record.index for record in left.failures) == \
        sorted(record.index for record in right.failures)


class TestShardPlan:
    """Shard boundaries are a pure function of shard_size."""

    def test_boundaries_fixed_by_shard_size(self):
        plan = shard_plan(48, 8)
        assert [shard for shard, _, __ in plan] == list(range(6))
        assert all(stop - start == 8 for _, start, stop in plan)
        assert plan[0][1] == 0 and plan[-1][2] == 48

    def test_ragged_tail_shard(self):
        plan = shard_plan(50, 8)
        assert plan[-1] == (6, 48, 50)

    def test_resume_keeps_global_indices(self):
        tail = shard_plan(48, 8, first_sample=16)
        assert tail[0] == (2, 16, 24)
        assert tail == shard_plan(48, 8)[2:]

    def test_invalid_shard_size(self):
        with pytest.raises(FormulationError, match="shard_size"):
            shard_plan(48, 0)


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(FormulationError, match="max_attempts"):
            SupervisorConfig(max_attempts=0)
        with pytest.raises(FormulationError, match="heartbeat_timeout"):
            SupervisorConfig(heartbeat_interval=1.0, heartbeat_timeout=0.5)

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "3")
        assert _default_workers() == 3
        monkeypatch.setenv("REPRO_PARALLEL_WORKERS", "nonsense")
        assert _default_workers() == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_MP_START", "spawn")
        assert _start_method() == "spawn"
        monkeypatch.setenv("REPRO_MP_START", "threads")
        assert _start_method() is None

    def test_unknown_failure_mode(self, ladder):
        circuit, spec, space = ladder
        with pytest.raises(FormulationError, match="failure mode"):
            parallel_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    samples=8, on_failure="retry")

    def test_values_shape_validated(self, ladder):
        circuit, spec, space = ladder
        with pytest.raises(FormulationError, match="values must be"):
            parallel_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=np.ones((4, len(space) + 1)))


class TestCleanParallelRuns:
    """No faults: every worker count lands on the same bits."""

    def test_bit_identical_across_worker_counts(self, ladder):
        circuit, spec, space = ladder
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   samples=48, seed=7,
                                   on_failure="quarantine")
        single = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=48, seed=7,
            shard_size=8, workers=1, config=FAST)
        multi = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=48, seed=7,
            shard_size=8, workers=3, config=FAST)
        np.testing.assert_array_equal(single.responses, reference.responses)
        np.testing.assert_array_equal(multi.responses, reference.responses)
        np.testing.assert_array_equal(multi.values, reference.values)
        _reports_equal(multi.report, reference.report)
        _statistics_equal(multi.parallel.statistics,
                          single.parallel.statistics)
        assert multi.parallel.workers == 3
        assert multi.parallel.shards == 6
        assert multi.parallel.shard_size == 8
        assert multi.parallel.redispatches == 0
        assert all("completed" in trail[-1]
                   for trail in multi.parallel.attempts.values())

    def test_sampler_passthrough(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(24, seed=3, method="sobol")
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values)
        run = parallel_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                      samples=24, seed=3, sampler="sobol",
                                      shard_size=8, workers=1)
        np.testing.assert_array_equal(run.values, values)
        np.testing.assert_array_equal(run.responses, reference.responses)


class TestFaultRecovery:
    """Infrastructure failures are healed invisibly; budgets are typed."""

    def test_sigkill_and_hang_bit_identical(self, ladder):
        """ISSUE 9 acceptance: SIGKILLed workers + one hung worker under
        quarantine recover bit-identically to the uninterrupted
        single-process run of the same seed."""
        circuit, spec, space = ladder
        values = space.sample_values(48, seed=11)
        # "nan" quarantines unconditionally; the ladder's "singular" fault
        # is *consistent*-singular, so the regularized stage legitimately
        # rescues it — exercising cross-process recovery records too.
        numerical = {3: "nan", 19: "nan", 41: "singular"}
        with ensemble_faults(numerical, ensemble_values=values):
            reference = parallel_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, values=values,
                shard_size=8, workers=1, config=FAST)
            with parallel_faults({1: ["kill"], 4: ["kill"], 2: ["hang"]}):
                survivor = parallel_ensemble_sweep(
                    circuit, spec, FREQUENCIES, space, values=values,
                    shard_size=8, workers=4, config=FAST)
        assert reference.report.quarantined == [3, 19]
        assert 41 in reference.report.recovered
        np.testing.assert_array_equal(survivor.responses,
                                      reference.responses)
        assert survivor.report.quarantined == reference.report.quarantined
        _reports_equal(survivor.report, reference.report)
        _statistics_equal(survivor.parallel.statistics,
                          reference.parallel.statistics)
        assert survivor.parallel.redispatches == 3
        trails = survivor.parallel.attempts
        assert any("worker died" in step for step in trails[1])
        assert any("worker died" in step for step in trails[4])
        assert any("heartbeat lost" in step for step in trails[2])

    def test_poisoned_shard_exhausts_retries(self, ladder):
        circuit, spec, space = ladder
        with parallel_faults({2: "crash"}):          # every attempt fails
            with pytest.raises(ShardFailureError) as excinfo:
                parallel_ensemble_sweep(
                    circuit, spec, FREQUENCIES, space, samples=32, seed=5,
                    shard_size=8, workers=2, config=FAST)
        error = excinfo.value
        assert error.shard == 2
        assert (error.start, error.stop) == (16, 24)
        assert len(error.attempts) == FAST.max_attempts
        assert "samples 16:24" in str(error)
        assert all("injected crash" in step for step in error.attempts)

    def test_transient_crash_recovers(self, ladder):
        circuit, spec, space = ladder
        reference = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=32, seed=5,
            shard_size=8, workers=1, config=FAST)
        with parallel_faults({0: ["crash"]}):        # attempt 1 only
            run = parallel_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, samples=32, seed=5,
                shard_size=8, workers=2, config=FAST)
        np.testing.assert_array_equal(run.responses, reference.responses)
        assert run.parallel.redispatches == 1
        assert any("uncaught worker exception" in step
                   for step in run.parallel.attempts[0])

    def test_numerical_failure_propagates_in_raise_mode(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(32, seed=5)
        with ensemble_faults({9: "singular"}, ensemble_values=values):
            with pytest.raises(SingularMatrixError):
                parallel_ensemble_sweep(
                    circuit, spec, FREQUENCIES, space, values=values,
                    shard_size=8, workers=2, on_failure="raise",
                    config=FAST)

    def test_telemetry_folded_exactly_once(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(32, seed=13)
        with ensemble_faults({6: "nan", 21: "nan"},
                             ensemble_values=values):
            reset_telemetry()
            parallel_ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=values, shard_size=8, workers=2,
                                    config=FAST)
            counters = telemetry_snapshot()
        # The counter ticks once per quarantined (sample, frequency) solve.
        # Folded exactly once: a double fold would report twice this, a
        # dropped delta less.  The solves happened in child processes.
        assert counters["quarantined"] == 2 * len(FREQUENCIES)
        assert counters["fast"] > 0


class TestCheckpointComposition:
    """A killed supervisor resumes with workers onto the sequential bits."""

    def test_resume_with_workers_bit_identical(self, ladder, tmp_path):
        circuit, spec, space = ladder
        sequential = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, path=str(tmp_path / "straight.npz"))
        path = str(tmp_path / "resumed.npz")
        partial = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, max_shards=2, path=path)
        assert not partial.finished and partial.completed == 16
        with parallel_faults({3: ["kill"]}):
            resumed = checkpointed_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, samples=40, seed=9,
                shard_size=8, path=path, workers=2, supervisor=FAST)
        assert resumed.finished and resumed.resumed_from == 16
        np.testing.assert_array_equal(resumed.ensemble.responses,
                                      sequential.ensemble.responses)
        _statistics_equal(resumed.statistics, sequential.statistics)
        _reports_equal(resumed.report, sequential.report)
        info = checkpoint_info(path)
        assert info["completed"] == 40

    def test_parallel_statistics_match_checkpoint_stream(self, ladder,
                                                         tmp_path):
        circuit, spec, space = ladder
        checkpointed = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, path=str(tmp_path / "stream.npz"))
        parallel = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, workers=2, config=FAST)
        _statistics_equal(parallel.parallel.statistics,
                          checkpointed.statistics)


class TestRunShards:
    """The plan executor underneath both public entry points."""

    def test_prefix_callback_is_contiguous(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(40, seed=2)
        plan = shard_plan(40, 8)
        prefixes = []

        def observe(prefix, responses, reports, solver):
            prefixes.append(prefix)
            # Every row of the completed prefix is already written.
            assert np.all(np.abs(responses[:plan[prefix - 1][2]]) > 0)

        run = run_shards(circuit, spec, FREQUENCIES, space, values, plan,
                         workers=2, config=FAST, on_shard_complete=observe)
        assert prefixes[-1] == len(plan)
        assert prefixes == sorted(prefixes)
        assert set(run.reports) == {shard for shard, _, __ in plan}

    def test_workers_clamped_to_plan(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(8, seed=2)
        run = run_shards(circuit, spec, FREQUENCIES, space, values,
                         shard_plan(8, 8), workers=6, config=FAST)
        assert run.workers == 1          # one shard never needs six workers


class TestStreamingFaults:
    """ISSUE 10: infrastructure failure under store_responses=False heals
    to the exact accumulator bits of an uninterrupted streaming run."""

    @staticmethod
    def _full_state_equal(left, right):
        _statistics_equal(left, right)
        assert left.weight_sum == right.weight_sum
        assert left.weight_sumsq == right.weight_sumsq
        assert left.max_weight == right.max_weight
        np.testing.assert_array_equal(left.histogram, right.histogram)

    def test_kill_and_kill_after_bit_identical(self, ladder):
        """SIGKILL mid-shard and SIGKILL *after* the solve (before any
        write-back — the at-most-once accounting worst case) both heal to
        the uninterrupted streaming bits, weights and yields included."""
        circuit, spec, space = ladder
        values = space.sample_values(48, seed=11)
        weights = np.random.default_rng(0).uniform(0.5, 1.5, 48)
        from repro.analysis.montecarlo import YieldSpec
        specs = [YieldSpec(name="gain", minimum_gain_db=-100.0,
                           at_frequency=float(FREQUENCIES[2]))]
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values, on_failure="quarantine",
                                   store_responses=False, shard_size=8,
                                   weights=weights, yield_specs=specs)
        with parallel_faults({1: ["kill"], 3: ["kill_after"],
                              4: ["hang"]}):
            survivor = parallel_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, values=values,
                shard_size=8, workers=3, config=FAST,
                store_responses=False, weights=weights, yield_specs=specs)
        assert survivor.responses is None
        self._full_state_equal(survivor.statistics, reference.statistics)
        assert survivor.yields.count == reference.yields.count
        assert survivor.yields.passed == reference.yields.passed
        assert survivor.yields.fail_weight == reference.yields.fail_weight
        assert survivor.yields.weight_sum == reference.yields.weight_sum
        assert survivor.parallel.redispatches == 3
        trails = survivor.parallel.attempts
        assert any("worker died" in step for step in trails[1])
        assert any("worker died" in step for step in trails[3])

    def test_checkpoint_kill_resume_bit_identical(self, ladder, tmp_path):
        """A streaming checkpointed run interrupted mid-plan and resumed
        under a killed worker reproduces the uninterrupted accumulators."""
        circuit, spec, space = ladder
        straight = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, store_responses=False,
            path=str(tmp_path / "straight.npz"))
        path = str(tmp_path / "resumed.npz")
        partial = checkpointed_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, samples=40, seed=9,
            shard_size=8, max_shards=2, store_responses=False, path=path)
        assert not partial.finished and partial.completed == 16
        assert checkpoint_info(path)["store_responses"] is False
        with parallel_faults({3: ["kill"]}):
            resumed = checkpointed_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, samples=40, seed=9,
                shard_size=8, store_responses=False, path=path, workers=2,
                supervisor=FAST)
        assert resumed.finished and resumed.resumed_from == 16
        assert resumed.ensemble.responses is None
        self._full_state_equal(resumed.statistics, straight.statistics)
        _reports_equal(resumed.report, straight.report)

    def test_streaming_matches_sequential_under_numerical_faults(
            self, ladder):
        """Quarantined samples are excluded from the accumulators the same
        way in every execution mode."""
        circuit, spec, space = ladder
        values = space.sample_values(32, seed=7)
        numerical = {5: "nan", 20: "nan"}
        with ensemble_faults(numerical, ensemble_values=values):
            sequential = ensemble_sweep(
                circuit, spec, FREQUENCIES, space, values=values,
                on_failure="quarantine", store_responses=False,
                shard_size=8)
            parallel = parallel_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, values=values,
                shard_size=8, workers=2, config=FAST,
                store_responses=False)
        assert sequential.statistics.count == 30
        self._full_state_equal(parallel.statistics, sequential.statistics)
        assert parallel.report.quarantined == [5, 20]


class TestAnalysisRouting:
    """processes= routes the analysis layer through the supervised driver."""

    def test_monte_carlo_processes_matches_inprocess(self, ladder):
        circuit, spec, space = ladder
        inprocess = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                         samples=40, seed=4)
        parallel = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                        samples=40, seed=4, processes=2)
        np.testing.assert_array_equal(parallel.ensemble.responses,
                                      inprocess.ensemble.responses)
        np.testing.assert_array_equal(parallel.nominal_response,
                                      inprocess.nominal_response)
        assert parallel.ensemble.parallel.workers == 2
