"""Tests for SPICE value parsing and engineering formatting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.units import SUFFIX_SCALE, format_si, format_value, parse_value


class TestParseValue:
    @pytest.mark.parametrize("text,expected", [
        ("30p", 30e-12),
        ("30pF", 30e-12),
        ("1k", 1e3),
        ("4.7kohm", 4.7e3),
        ("2.5meg", 2.5e6),
        ("2.5MEG", 2.5e6),
        ("100n", 100e-9),
        ("10u", 10e-6),
        ("3m", 3e-3),
        ("7x", 7e6),
        ("1g", 1e9),
        ("2t", 2e12),
        ("5f", 5e-15),
        ("1a", 1e-18),
        ("1e-12", 1e-12),
        ("-3.3", -3.3),
        ("+2.0e3", 2000.0),
        (".5", 0.5),
        ("1mil", 25.4e-6),
    ])
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_passthrough_numbers(self):
        assert parse_value(42) == 42.0
        assert parse_value(3.14) == 3.14

    def test_unknown_letter_ignored(self):
        # SPICE ignores unit letters it does not recognize.
        assert parse_value("10ohm") == 10.0
        assert parse_value("5V") == 5.0

    @pytest.mark.parametrize("text", ["", "abc", "1.2.3", "--3", "k10"])
    def test_invalid(self, text):
        with pytest.raises(ParseError):
            parse_value(text)

    def test_case_insensitive(self):
        assert parse_value("30P") == parse_value("30p")
        assert parse_value("1K") == parse_value("1k")


class TestFormatValue:
    @pytest.mark.parametrize("value,expected", [
        (0.0, "0"),
        (3.3e-12, "3.3p"),
        (1000.0, "1k"),
        (2.5e6, "2.5meg"),
        (1e-9, "1n"),
        (47e-15, "47f"),
    ])
    def test_roundtrippable_formats(self, value, expected):
        assert format_value(value) == expected

    def test_out_of_table_falls_back(self):
        text = format_value(1e30)
        assert "e+30" in text or "1e30" in text

    def test_format_si_with_unit(self):
        assert format_si(30e-12, "F") == "30pF"
        assert format_si(1e3) == "1k"

    def test_nan_inf(self):
        assert "inf" in format_value(float("inf"))
        assert "nan" in format_value(float("nan"))


class TestRoundTrip:
    @given(st.floats(min_value=1e-17, max_value=1e13),
           st.sampled_from(list("afpnumk") + ["meg", "g", "t"]))
    @settings(max_examples=150, deadline=None)
    def test_parse_of_formatted_suffix_values(self, mantissa, suffix):
        text = f"{mantissa:.12g}{suffix}"
        expected = mantissa * SUFFIX_SCALE[suffix]
        assert parse_value(text) == pytest.approx(expected, rel=1e-9)

    @given(st.floats(min_value=1e-15, max_value=1e12))
    @settings(max_examples=150, deadline=None)
    def test_format_then_parse(self, value):
        assert parse_value(format_value(value, digits=9)) == pytest.approx(
            value, rel=1e-6)
