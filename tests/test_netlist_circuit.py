"""Tests for the Circuit container."""

import pytest

from repro.errors import NetlistError, UnknownElementError, UnknownNodeError
from repro.netlist.circuit import Circuit
from repro.netlist.elements import Capacitor, Resistor, VCCS


def build_sample():
    circuit = Circuit("sample")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 1e3)
    circuit.add_resistor("R2", "mid", "out", 2e3)
    circuit.add_capacitor("C1", "mid", "0", 1e-9)
    circuit.add_capacitor("C2", "out", "0", 2e-9)
    circuit.add_vccs("gm1", "out", "0", "mid", "0", 1e-3)
    return circuit


class TestElementManagement:
    def test_add_and_lookup(self):
        circuit = build_sample()
        assert len(circuit) == 6
        assert "R1" in circuit
        assert "r1" in circuit  # case-insensitive
        assert circuit["R1"].value == 1e3
        assert circuit.get("missing") is None

    def test_duplicate_name_rejected(self):
        circuit = build_sample()
        with pytest.raises(NetlistError):
            circuit.add_resistor("R1", "a", "b", 1.0)

    def test_remove(self):
        circuit = build_sample()
        removed = circuit.remove("C2")
        assert removed.name == "C2"
        assert "C2" not in circuit
        with pytest.raises(UnknownElementError):
            circuit.remove("C2")

    def test_replace(self):
        circuit = build_sample()
        circuit.replace(Resistor("R1", "in", "mid", 5e3))
        assert circuit["R1"].value == 5e3
        assert len(circuit) == 6

    def test_getitem_unknown(self):
        with pytest.raises(UnknownElementError):
            build_sample()["nope"]

    def test_elements_of_type(self):
        circuit = build_sample()
        assert len(circuit.elements_of_type(Resistor)) == 2
        assert len(circuit.elements_of_type(Capacitor)) == 2
        assert len(circuit.elements_of_type(Resistor, Capacitor)) == 4

    def test_iteration_order_is_insertion_order(self):
        names = [element.name for element in build_sample()]
        assert names == ["vin", "R1", "R2", "C1", "C2", "gm1"]


class TestNodes:
    def test_node_registry(self):
        circuit = build_sample()
        assert circuit.nodes[0] == "0"
        assert set(circuit.non_ground_nodes) == {"in", "mid", "out"}

    def test_node_index_excludes_ground(self):
        index = build_sample().node_index()
        assert "0" not in index
        assert sorted(index.values()) == [0, 1, 2]

    def test_node_index_with_ground(self):
        index = build_sample().node_index(include_ground=True)
        assert index["0"] == 0

    def test_require_node(self):
        circuit = build_sample()
        assert circuit.require_node("mid") == "mid"
        assert circuit.require_node("gnd") == "0"
        with pytest.raises(UnknownNodeError):
            circuit.require_node("nope")

    def test_has_node(self):
        circuit = build_sample()
        assert circuit.has_node("in")
        assert circuit.has_node("gnd")
        assert not circuit.has_node("zzz")


class TestStatistics:
    def test_conductance_values_include_gm_and_resistors(self):
        values = sorted(build_sample().conductance_values())
        assert values == pytest.approx(sorted([1e-3, 5e-4, 1e-3]))

    def test_capacitance_values(self):
        assert sorted(build_sample().capacitance_values()) == pytest.approx(
            [1e-9, 2e-9])

    def test_means(self):
        circuit = build_sample()
        assert circuit.mean_capacitance() == pytest.approx(1.5e-9)
        assert circuit.mean_conductance() == pytest.approx((1e-3 + 5e-4 + 1e-3) / 3)

    def test_means_empty_circuit(self):
        assert Circuit("empty").mean_capacitance() == 0.0
        assert Circuit("empty").mean_conductance() == 0.0

    def test_capacitor_count(self):
        assert build_sample().capacitor_count() == 2

    def test_summary(self):
        summary = build_sample().summary()
        assert summary["Resistor"] == 2
        assert summary["Capacitor"] == 2
        assert summary["VCCS"] == 1

    def test_design_point(self):
        point = build_sample().design_point()
        assert point["R1"] == pytest.approx(1e-3)  # reported as conductance
        assert point["C1"] == pytest.approx(1e-9)
        assert point["gm1"] == pytest.approx(1e-3)
        assert point["vin"] == pytest.approx(1.0)


class TestCopiesAndEdits:
    def test_copy_is_deep(self):
        circuit = build_sample()
        duplicate = circuit.copy("copy")
        duplicate.remove("R1")
        assert "R1" in circuit
        assert duplicate.name == "copy"

    def test_with_element_removed(self):
        reduced = build_sample().with_element_removed("C2")
        assert "C2" not in reduced
        assert len(reduced) == 5

    def test_with_element_shorted_merges_nodes(self):
        shorted = build_sample().with_element_shorted("R2")
        # R2 connected mid-out; out is merged into mid (or vice versa), so C2
        # should now connect the merged node to ground.
        assert "R2" not in shorted
        nodes = {element.name: element.nodes for element in shorted}
        assert "C2" in nodes
        assert set(nodes["C2"]) <= {"mid", "out", "0"}

    def test_with_element_shorted_to_ground(self):
        shorted = build_sample().with_element_shorted("C1")
        # C1 went from mid to ground: mid disappears into ground.
        assert "C1" not in shorted
        for element in shorted:
            assert "mid" not in element.nodes or element.name == "gm1"

    def test_with_value_scaled(self):
        scaled = build_sample().with_value_scaled("C1", 2.0)
        assert scaled["C1"].value == pytest.approx(2e-9)
        scaled_gm = build_sample().with_value_scaled("gm1", 0.5)
        assert scaled_gm["gm1"].gm == pytest.approx(5e-4)

    def test_repr(self):
        assert "sample" in repr(build_sample())
