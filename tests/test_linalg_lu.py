"""Tests for the sparse and dense LU factorizations."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinAlgError, SingularMatrixError
from repro.linalg.dense import dense_lu
from repro.linalg.det import determinant, log10_determinant, solve_linear_system
from repro.linalg.lu import sparse_lu
from repro.linalg.sparse import SparseMatrix


def random_complex_matrix(rng, n, density=1.0):
    real = rng.standard_normal((n, n))
    imag = rng.standard_normal((n, n))
    matrix = real + 1j * imag
    if density < 1.0:
        mask = rng.random((n, n)) < density
        np.fill_diagonal(mask, True)
        matrix = matrix * mask
    return matrix


class TestDenseLU:
    def test_solve_matches_numpy(self):
        rng = np.random.default_rng(42)
        for n in (1, 2, 5, 12):
            dense = random_complex_matrix(rng, n)
            rhs = rng.standard_normal(n) + 1j * rng.standard_normal(n)
            factorization = dense_lu(dense)
            np.testing.assert_allclose(factorization.solve(rhs),
                                       np.linalg.solve(dense, rhs),
                                       rtol=1e-9, atol=1e-12)

    def test_determinant_matches_numpy(self):
        rng = np.random.default_rng(7)
        for n in (2, 4, 8):
            dense = random_complex_matrix(rng, n)
            mantissa, exponent = dense_lu(dense).determinant_mantissa_exponent()
            expected = np.linalg.det(dense)
            assert mantissa * 10.0**exponent == pytest.approx(expected, rel=1e-9)

    def test_determinant_exponent_tracking_beyond_double_range(self):
        n = 40
        dense = np.diag(np.full(n, 1e12))
        factorization = dense_lu(dense)
        log_det = factorization.log10_determinant_magnitude()
        assert log_det == pytest.approx(12 * n)
        # Plain determinant would overflow:
        assert math.isinf(factorization.determinant().real)

    def test_singular_matrix(self):
        with pytest.raises(SingularMatrixError):
            dense_lu(np.zeros((3, 3)))

    def test_non_square(self):
        with pytest.raises(LinAlgError):
            dense_lu(np.ones((2, 3)))

    def test_solve_many(self):
        rng = np.random.default_rng(3)
        dense = random_complex_matrix(rng, 4)
        rhs = random_complex_matrix(rng, 4)[:, :2]
        solutions = dense_lu(dense).solve_many(rhs)
        np.testing.assert_allclose(dense @ solutions, rhs, rtol=1e-9, atol=1e-12)

    def test_rhs_size_check(self):
        with pytest.raises(LinAlgError):
            dense_lu(np.eye(3)).solve(np.ones(4))


class TestSparseLU:
    @pytest.mark.parametrize("pivoting", ["markowitz", "partial"])
    def test_solve_matches_numpy(self, pivoting):
        rng = np.random.default_rng(11)
        for n in (1, 3, 6, 15):
            dense = random_complex_matrix(rng, n, density=0.6)
            matrix = SparseMatrix.from_dense(dense)
            rhs = rng.standard_normal(n)
            factorization = sparse_lu(matrix, pivoting=pivoting)
            np.testing.assert_allclose(factorization.solve(rhs),
                                       np.linalg.solve(dense, rhs),
                                       rtol=1e-8, atol=1e-10)

    def test_determinant_matches_numpy(self):
        rng = np.random.default_rng(19)
        for n in (2, 5, 10):
            dense = random_complex_matrix(rng, n, density=0.7)
            matrix = SparseMatrix.from_dense(dense)
            mantissa, exponent = sparse_lu(matrix).determinant_mantissa_exponent()
            expected = np.linalg.det(dense)
            assert mantissa * 10.0**exponent == pytest.approx(expected, rel=1e-8)

    def test_determinant_sign_with_permutations(self):
        # An anti-diagonal matrix needs row/column permutations; the sign must
        # still come out right.
        dense = np.array([[0.0, 0.0, 1.0],
                          [0.0, 2.0, 0.0],
                          [3.0, 0.0, 0.0]])
        matrix = SparseMatrix.from_dense(dense)
        mantissa, exponent = sparse_lu(matrix).determinant_mantissa_exponent()
        assert mantissa * 10.0**exponent == pytest.approx(np.linalg.det(dense))

    def test_singular(self):
        matrix = SparseMatrix(3)
        matrix.set(0, 0, 1.0)
        matrix.set(1, 1, 1.0)
        with pytest.raises(SingularMatrixError):
            sparse_lu(matrix)

    def test_non_square(self):
        with pytest.raises(LinAlgError):
            sparse_lu(SparseMatrix(2, 3))

    def test_unknown_pivoting(self):
        with pytest.raises(LinAlgError):
            sparse_lu(SparseMatrix.identity(2), pivoting="nope")

    def test_empty_matrix(self):
        factorization = sparse_lu(SparseMatrix(0))
        mantissa, exponent = factorization.determinant_mantissa_exponent()
        assert mantissa == 1.0

    def test_fill_in_reported(self):
        rng = np.random.default_rng(5)
        dense = random_complex_matrix(rng, 10, density=0.4)
        factorization = sparse_lu(SparseMatrix.from_dense(dense))
        assert factorization.fill_in >= 0

    def test_solve_rhs_size_check(self):
        factorization = sparse_lu(SparseMatrix.identity(3))
        with pytest.raises(LinAlgError):
            factorization.solve(np.ones(2))

    def test_determinant_xfloat(self):
        matrix = SparseMatrix.from_dense(np.diag([1e-200, 1e-200]))
        magnitude, phase = sparse_lu(matrix).determinant_xfloat()
        assert magnitude.log10() == pytest.approx(-400)
        assert phase == pytest.approx(0.0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_property_solve_random(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = random_complex_matrix(rng, n, density=0.8)
        if abs(np.linalg.det(dense)) < 1e-6:
            return
        rhs = rng.standard_normal(n)
        solution = sparse_lu(SparseMatrix.from_dense(dense)).solve(rhs)
        np.testing.assert_allclose(dense @ solution, rhs, rtol=1e-7, atol=1e-9)


class TestDetHelpers:
    def test_determinant_auto_selects(self):
        dense = np.diag([2.0, 3.0, 4.0])
        mantissa, exponent = determinant(dense)
        assert mantissa * 10.0**exponent == pytest.approx(24.0)
        mantissa, exponent = determinant(SparseMatrix.from_dense(dense),
                                         method="sparse")
        assert mantissa * 10.0**exponent == pytest.approx(24.0)

    def test_log10_determinant(self):
        assert log10_determinant(np.diag([10.0, 100.0])) == pytest.approx(3.0)

    def test_solve_linear_system(self):
        matrix = np.array([[2.0, 0.0], [0.0, 4.0]])
        np.testing.assert_allclose(solve_linear_system(matrix, [2.0, 8.0]),
                                   [1.0, 2.0])

    def test_unknown_method(self):
        with pytest.raises(LinAlgError):
            determinant(np.eye(2), method="quantum")
