"""Seeded random-circuit generator for the property-test harness.

:func:`random_circuit` draws small RC / RLC / active (VCCS) circuits from a
seeded :class:`numpy.random.Generator`, with two structural guarantees:

* **connected** — node ``k`` is always joined to an earlier node (or ground)
  by a resistor, so the resistive skeleton is a spanning tree over every
  node and nothing floats;
* **known-solvable** — the spanning tree gives every node a DC path to
  ground and transconductances are kept below the mean tree conductance, so
  the nodal matrix stays non-singular on the positive-frequency axis.  The
  generator verifies this by solving the MNA system at a probe frequency and
  redraws (deterministically, from the same seeded stream) in the
  vanishingly unlikely event of a singular draw.

Every circuit is driven by a grounded unit voltage source ``Vin`` at node
``in`` and observed at the topologically farthest node, so the returned
``(circuit, spec)`` pair drops into any transfer-function API of the
library.  Determinism: the same ``seed`` (and ``kind``) always yields the
same circuit, element names and values — CI runs are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SingularMatrixError
from repro.mna.solve import ac_solve
from repro.netlist.circuit import Circuit
from repro.nodal.reduce import TransferSpec

__all__ = ["random_circuit", "random_sparse_topology", "CIRCUIT_KINDS",
           "SPARSE_TOPOLOGY_FAMILIES"]

#: Supported topology families.
CIRCUIT_KINDS = ("rc", "rlc", "vccs")

#: Generator families drawn by :func:`random_sparse_topology`.
SPARSE_TOPOLOGY_FAMILIES = ("mesh", "tree", "bus")


def _log_uniform(rng, low, high):
    """One value log-uniform in ``[low, high]``."""
    return float(10.0 ** rng.uniform(np.log10(low), np.log10(high)))


def _draw(rng, kind, min_nodes, max_nodes):
    """One candidate circuit from the stream (may be singular; caller checks)."""
    num_nodes = int(rng.integers(min_nodes, max_nodes + 1))
    nodes = ["in"] + [f"n{index}" for index in range(1, num_nodes)]
    circuit = Circuit(f"random-{kind}")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)

    # Resistive spanning tree: every node reaches ground through resistors.
    conductances = []
    circuit.add_resistor("Rt0", "in", "0", _log_uniform(rng, 1e2, 1e5))
    conductances.append(1.0 / circuit["Rt0"].value)
    for index in range(1, num_nodes):
        anchor = nodes[int(rng.integers(0, index))] if rng.random() < 0.7 \
            else "0"
        resistance = _log_uniform(rng, 1e2, 1e5)
        circuit.add_resistor(f"Rt{index}", nodes[index], anchor, resistance)
        conductances.append(1.0 / resistance)

    def random_pair():
        """A random ordered pair of distinct terminals (node or ground)."""
        while True:
            a = nodes[int(rng.integers(0, num_nodes))]
            b = "0" if rng.random() < 0.4 else nodes[int(
                rng.integers(0, num_nodes))]
            if a != b:
                return a, b

    # Capacitors: one per node on average, plus grounded load at the output.
    for index in range(int(rng.integers(1, num_nodes + 1))):
        a, b = random_pair()
        circuit.add_capacitor(f"C{index}", a, b,
                              _log_uniform(rng, 1e-12, 1e-7))

    if kind == "rlc":
        for index in range(int(rng.integers(1, max(2, num_nodes // 2) + 1))):
            a, b = random_pair()
            circuit.add_inductor(f"L{index}", a, b,
                                 _log_uniform(rng, 1e-6, 1e-2))
    elif kind == "vccs":
        # Modest transconductances (below the mean tree conductance) keep
        # the active circuit comfortably non-singular.
        limit = float(np.mean(conductances))
        for index in range(int(rng.integers(1, max(2, num_nodes // 2) + 1))):
            out_pos, out_neg = random_pair()
            ctrl_pos, ctrl_neg = random_pair()
            gm = _log_uniform(rng, limit * 1e-3, limit * 0.5)
            if rng.random() < 0.3:
                gm = -gm
            circuit.add_vccs(f"G{index}", out_pos, out_neg, ctrl_pos,
                             ctrl_neg, gm)

    output = nodes[-1] if nodes[-1] != "in" else "in"
    return circuit, TransferSpec(inputs=["Vin"], output=output)


def random_circuit(seed, kind=None, min_nodes=3, max_nodes=6):
    """A random connected, solvable circuit plus its transfer spec.

    Parameters
    ----------
    seed:
        Seed of the :class:`numpy.random.Generator` — same seed, same
        circuit.
    kind:
        ``"rc"``, ``"rlc"`` or ``"vccs"``; default: derived from the seed.
    min_nodes, max_nodes:
        Bounds on the number of non-ground nodes (including the input).

    Returns
    -------
    (Circuit, TransferSpec)
    """
    rng = np.random.default_rng(seed)
    if kind is None:
        kind = CIRCUIT_KINDS[int(seed) % len(CIRCUIT_KINDS)]
    if kind not in CIRCUIT_KINDS:
        raise ValueError(f"unknown circuit kind {kind!r}")
    for __ in range(5):
        circuit, spec = _draw(rng, kind, min_nodes, max_nodes)
        try:
            ac_solve(circuit, 2j * np.pi * 997.0)
        except SingularMatrixError:   # pragma: no cover - vanishingly rare
            continue
        return circuit, spec
    raise AssertionError(   # pragma: no cover
        f"seed {seed} produced five singular circuits in a row")


def random_sparse_topology(seed, family=None, min_dimension=100,
                           max_dimension=300):
    """A seeded post-layout-scale generator circuit plus its transfer spec.

    The large-topology counterpart of :func:`random_circuit`: draws one of
    the :mod:`repro.circuits.generators` families (RC mesh, clock tree,
    coupled bus — cycled by seed unless ``family`` pins one) at a seeded
    target dimension in ``[min_dimension, max_dimension]``, with the
    family's own seeded value jitter.  Families quantize their shapes (a
    binary tree only exists at 2^k − 1 segments), so the target is snapped
    *up* until the built system reaches ``min_dimension`` — callers can rely
    on the lower bound, e.g. to stay above the sparse dispatch cutoff.
    Construction is deterministic — same seed, same circuit, element names
    and values.

    Returns
    -------
    (Circuit, TransferSpec)
    """
    from repro.circuits.generators import build_generator

    rng = np.random.default_rng(seed)
    if family is None:
        family = SPARSE_TOPOLOGY_FAMILIES[
            int(seed) % len(SPARSE_TOPOLOGY_FAMILIES)]
    if family not in SPARSE_TOPOLOGY_FAMILIES:
        raise ValueError(f"unknown sparse topology family {family!r}")
    from repro.mna.builder import system_dimension

    target = int(rng.integers(min_dimension, max_dimension + 1))
    circuit, spec = build_generator(family, target, seed=int(seed))
    while system_dimension(circuit) < min_dimension:
        target *= 2
        circuit, spec = build_generator(family, target, seed=int(seed))
    return circuit, spec
