"""Tests for the single-interpolation method (Section 2) and Eq. 17 deflation."""

import math

import numpy as np
import pytest

from repro.circuits.rc_ladder import build_rc_ladder, rc_ladder_denominator_coefficients
from repro.interpolation.basic import interpolate_network_function, interpolate_polynomial
from repro.interpolation.points import unit_circle_points
from repro.interpolation.dft import inverse_dft_scaled
from repro.interpolation.reduction import deflate_samples, deflation_point_count
from repro.interpolation.scaling import ScaleFactors
from repro.errors import InterpolationError
from repro.netlist.transform import to_admittance_form
from repro.nodal.sampler import NetworkFunctionSampler
from repro.xfloat import XFloat


class TestBasicInterpolation:
    def test_rc_ladder_small_coefficients_exact(self):
        resistances = [1e3, 1e3]
        capacitances = [1e-9, 1e-9]
        circuit, spec = build_rc_ladder(2, resistances, capacitances)
        expected = rc_ladder_denominator_coefficients(resistances, capacitances)
        # Frequency scaling near 1/RC keeps everything in range for one shot.
        result = interpolate_network_function(
            circuit, spec, factors=ScaleFactors(frequency=1e6))
        denominator = result.denominator.coefficients()
        numerator = result.numerator.coefficients()
        scale = float(denominator[0])
        for power, value in enumerate(expected):
            assert float(denominator[power]) / scale == pytest.approx(value,
                                                                      rel=1e-9)
        # The ladder numerator is the constant 1 (times the same scale).
        assert float(numerator[0]) / scale == pytest.approx(1.0, rel=1e-9)

    def test_unscaled_interpolation_loses_high_order_coefficients(self,
                                                                  ota_circuit):
        """Reproduces the Table 1a failure mode: round-off noise."""
        circuit, spec = ota_circuit
        unscaled = interpolate_network_function(circuit, spec,
                                                factors=ScaleFactors())
        scaled = interpolate_network_function(
            circuit, spec, factors=ScaleFactors(frequency=1e9))
        assert unscaled.denominator.region.width < scaled.denominator.region.width
        # Imaginary residue of the unscaled run is comparable to the corrupted
        # real parts (the tell-tale sign the paper describes).
        residues = np.abs(unscaled.denominator.imaginary_residue())
        top = np.abs(unscaled.denominator.normalized_complex().real)[-1]
        assert residues.max() > 0.0
        assert top < 10.0**unscaled.denominator.region.threshold_log10

    def test_interpolate_polynomial_kinds(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        denominator = interpolate_polynomial(sampler, "denominator",
                                             ScaleFactors(frequency=1e6))
        numerator = interpolate_polynomial(sampler, "numerator",
                                           ScaleFactors(frequency=1e6))
        assert denominator.num_points == 2
        # H = (1/RC) / (s + 1/RC) -> numerator degree 0, denominator degree 1.
        d = denominator.coefficients()
        n = numerator.coefficients()
        assert float(d[1]) / float(d[0]) == pytest.approx(1e3 * 1e-9, rel=1e-9)
        assert float(n[0]) / float(d[0]) == pytest.approx(1.0, rel=1e-9)
        with pytest.raises(InterpolationError):
            interpolate_polynomial(sampler, "both")

    def test_valid_coefficients_mapping(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        result = interpolate_polynomial(sampler, "denominator",
                                        ScaleFactors(frequency=1e6))
        valid = result.valid_coefficients()
        assert set(valid) == set(result.valid_indices()) == {0, 1}

    def test_transfer_at_matches_direct(self, simple_rc):
        circuit, spec = simple_rc
        result = interpolate_network_function(circuit, spec,
                                              factors=ScaleFactors(frequency=1e6))
        sampler = NetworkFunctionSampler(circuit, spec)
        s = 2j * math.pi * 5e4
        assert result.transfer_at(s) == pytest.approx(sampler.transfer_value(s),
                                                      rel=1e-9)


class TestDeflation:
    def test_point_count(self):
        assert deflation_point_count(5, 9) == 5
        with pytest.raises(InterpolationError):
            deflation_point_count(5, 4)

    def test_deflation_recovers_middle_coefficients(self):
        """Synthetic polynomial: knowing p0 and p4 lets 3 points find p1..p3."""
        coefficients = [2.0, -1.5, 0.25, 3.0, -0.5]
        known = {0: XFloat(2.0, 0), 4: XFloat(-0.5, 0)}
        factors = ScaleFactors()
        points = unit_circle_points(3)
        samples = []
        for point in points:
            value = sum(c * point**i for i, c in enumerate(coefficients))
            samples.append((value, 0))
        deflated = deflate_samples(samples, points, known, first_unknown=1,
                                   factors=factors, admittance_order=4)
        values, exponent = inverse_dft_scaled(deflated)
        recovered = values.real * 10.0**exponent
        np.testing.assert_allclose(recovered, coefficients[1:4], atol=1e-12)

    def test_deflation_requires_prefix_known(self):
        points = unit_circle_points(2)
        samples = [(1.0, 0)] * 2
        with pytest.raises(InterpolationError):
            deflate_samples(samples, points, {}, first_unknown=1,
                            factors=ScaleFactors(), admittance_order=3)

    def test_deflation_requires_unit_circle(self):
        with pytest.raises(InterpolationError):
            deflate_samples([(1.0, 0)], [2.0 + 0.0j], {0: XFloat(1.0, 0)},
                            first_unknown=1, factors=ScaleFactors(),
                            admittance_order=2)

    def test_deflation_length_mismatch(self):
        with pytest.raises(InterpolationError):
            deflate_samples([(1.0, 0)], unit_circle_points(2), {},
                            first_unknown=0, factors=ScaleFactors(),
                            admittance_order=2)

    def test_deflation_with_extended_range_knowns(self):
        """Known coefficients far outside double range are subtracted in log space."""
        factors = ScaleFactors(frequency=1e10, conductance=1e5)
        order = 3
        # True coefficients: p0 huge-normalized, p1 unknown target, p2 = 0, p3 = 0.
        p0 = XFloat(4.0, -100)
        p1_true = XFloat(1.0, -112)
        points = unit_circle_points(1)
        # Build the scaled sample directly from the normalized values.
        from repro.interpolation.scaling import normalize_coefficient

        n0 = normalize_coefficient(p0, 0, order, factors)
        n1 = normalize_coefficient(p1_true, 1, order, factors)
        sample_value = n0.mantissa * 10.0**(n0.exponent - n1.exponent) + n1.mantissa
        samples = [(sample_value, n1.exponent)]
        deflated = deflate_samples(samples, points, {0: p0}, first_unknown=1,
                                   factors=factors, admittance_order=order)
        values, exponent = inverse_dft_scaled(deflated)
        recovered_log = math.log10(abs(values[0].real)) + exponent
        assert recovered_log == pytest.approx(n1.log10(), abs=1e-6)
