"""Tests for the nodal admittance formulation and the network-function sampler."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.errors import FormulationError, UnknownElementError
from repro.netlist.circuit import Circuit
from repro.netlist.transform import to_admittance_form
from repro.nodal.admittance import build_nodal_formulation
from repro.nodal.reduce import TransferSpec
from repro.nodal.sampler import NetworkFunctionSampler


class TestTransferSpec:
    def test_single_and_differential_output(self):
        spec = TransferSpec(inputs=["vin"], output="out")
        assert spec.output_nodes() == ("out", None)
        diff = TransferSpec(inputs=["vip", "vim"], output=("a", "b"))
        assert diff.output_nodes() == ("a", "b")
        assert "vin" in spec.describe() or "out" in spec.describe()

    def test_string_input_promoted_to_list(self):
        spec = TransferSpec(inputs="vin", output="out")
        assert spec.inputs == ["vin"]

    def test_needs_inputs(self):
        with pytest.raises(FormulationError):
            TransferSpec(inputs=[], output="out")

    def test_resolve_checks_sources(self, simple_rc):
        circuit, __ = simple_rc
        kind, sources = TransferSpec(inputs=["vin"], output="out").resolve(circuit)
        assert kind == "voltage"
        with pytest.raises(UnknownElementError):
            TransferSpec(inputs=["nope"], output="out").resolve(circuit)
        with pytest.raises(FormulationError):
            TransferSpec(inputs=["vin"], output="nonexistent").resolve(circuit)

    def test_resolve_rejects_mixed_sources(self):
        circuit = Circuit("mixed")
        circuit.add_voltage_source("v1", "a", "0", 1.0)
        circuit.add_current_source("i1", "b", "0", 1.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(FormulationError):
            TransferSpec(inputs=["v1", "i1"], output="b").resolve(circuit)

    def test_resolve_rejects_floating_voltage_source(self):
        circuit = Circuit("float")
        circuit.add_voltage_source("v1", "a", "b", 1.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(FormulationError):
            TransferSpec(inputs=["v1"], output="a").resolve(circuit)


class TestFormulation:
    def test_rc_dimensions_and_orders(self, simple_rc):
        circuit, spec = simple_rc
        formulation = build_nodal_formulation(circuit, spec)
        # 'in' is forced, 'out' is the only unknown.
        assert formulation.dimension == 1
        assert formulation.unknown_nodes == ["out"]
        assert formulation.forced == {"in": 1.0}
        assert formulation.denominator_admittance_order == 1
        assert formulation.numerator_admittance_order == 1
        assert formulation.max_polynomial_degree() == 1

    def test_current_drive_orders(self):
        circuit = Circuit("tz")
        circuit.add_current_source("iin", "0", "out", 1.0)
        circuit.add_resistor("R1", "out", "0", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-9)
        spec = TransferSpec(inputs=["iin"], output="out")
        formulation = build_nodal_formulation(circuit, spec)
        assert formulation.drive_kind == "current"
        assert formulation.denominator_admittance_order == 1
        assert formulation.numerator_admittance_order == 0

    def test_matrix_values(self, simple_rc):
        circuit, spec = simple_rc
        formulation = build_nodal_formulation(circuit, spec)
        s = 2j * math.pi * 1e5
        matrix = formulation.assemble(s)
        assert matrix.get(0, 0) == pytest.approx(1e-3 + s * 1e-9)
        rhs = formulation.rhs(s)
        assert rhs[0] == pytest.approx(1e-3)  # conductance from the forced node

    def test_scaling_applied_to_assembly(self, simple_rc):
        circuit, spec = simple_rc
        formulation = build_nodal_formulation(circuit, spec)
        matrix = formulation.assemble(1.0, conductance_scale=1e3,
                                      frequency_scale=1e9)
        assert matrix.get(0, 0) == pytest.approx(1e-3 * 1e3 + 1e-9 * 1e9)

    def test_rejects_internal_nonzero_voltage_source(self):
        circuit = Circuit("bad")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_voltage_source("vbias", "b", "0", 1.0)   # not an input
        circuit.add_resistor("R1", "in", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(FormulationError):
            build_nodal_formulation(circuit, TransferSpec(["vin"], "b"))

    def test_zero_valued_voltage_source_forces_node_to_ground(self):
        circuit = Circuit("meter")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_voltage_source("vmeas", "x", "0", 0.0)
        circuit.add_resistor("R1", "in", "x", 1e3)
        circuit.add_resistor("R2", "x", "out", 1e3)
        circuit.add_resistor("R3", "out", "0", 1e3)
        formulation = build_nodal_formulation(circuit,
                                              TransferSpec(["vin"], "out"))
        assert formulation.forced["x"] == 0.0

    def test_rejects_inductor(self):
        circuit = Circuit("ind")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_inductor("L1", "in", "out", 1e-6)
        circuit.add_resistor("R1", "out", "0", 50.0)
        with pytest.raises(FormulationError):
            build_nodal_formulation(circuit, TransferSpec(["vin"], "out"))

    def test_output_voltage_differential(self, miller_circuit):
        circuit, spec = miller_circuit
        formulation = build_nodal_formulation(to_admittance_form(circuit), spec)
        solution = np.zeros(formulation.dimension, dtype=complex)
        solution[formulation.index_of("vout")] = 2.0 + 0.0j
        assert formulation.output_voltage(solution) == pytest.approx(2.0)

    def test_node_voltage_of_forced_and_ground(self, simple_rc):
        circuit, spec = simple_rc
        formulation = build_nodal_formulation(circuit, spec)
        solution = np.array([0.5 + 0.0j])
        assert formulation.node_voltage(solution, "0") == 0.0
        assert formulation.node_voltage(solution, "in") == 1.0
        assert formulation.node_voltage(solution, "out") == 0.5
        with pytest.raises(FormulationError):
            formulation.node_voltage(solution, "zzz")


class TestSampler:
    def test_rc_transfer_matches_analytic(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        for frequency in (1e3, 159.15e3, 1e7):
            s = 2j * math.pi * frequency
            expected = 1.0 / (1.0 + s * 1e3 * 1e-9)
            assert sampler.transfer_value(s) == pytest.approx(expected, rel=1e-10)

    def test_sampler_matches_mna_ac(self, miller_circuit):
        circuit, spec = miller_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        analysis = ACAnalysis(circuit, spec)
        for frequency in (10.0, 1e4, 1e7):
            s = 2j * math.pi * frequency
            assert sampler.transfer_value(s) == pytest.approx(
                analysis.value_at(s), rel=1e-8)

    def test_sample_consistency_of_ratio(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        sample = sampler.sample(1.0j, conductance_scale=2.0, frequency_scale=3.0)
        # N/D of the scaled system still equals the scaled-system transfer.
        transfer = sample.transfer()
        expected = (2e-3) / (2e-3 + 1j * 3e-9)
        assert transfer == pytest.approx(expected, rel=1e-12)

    def test_scaled_denominator_sample_value(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        sample = sampler.sample(2.0, conductance_scale=10.0, frequency_scale=1e9)
        mantissa, exponent = sample.denominator
        value = mantissa * 10.0**exponent
        assert value == pytest.approx(10.0 * 1e-3 + 2.0 * 1e9 * 1e-9, rel=1e-12)

    def test_dense_and_sparse_methods_agree(self, ota_circuit):
        circuit, spec = ota_circuit
        admittance = to_admittance_form(circuit)
        dense = NetworkFunctionSampler(admittance, spec, method="dense")
        sparse = NetworkFunctionSampler(admittance, spec, method="sparse")
        s = 2j * math.pi * 1e6
        assert dense.transfer_value(s) == pytest.approx(sparse.transfer_value(s),
                                                        rel=1e-8)

    def test_factorization_count(self, simple_rc):
        circuit, spec = simple_rc
        sampler = NetworkFunctionSampler(circuit, spec)
        sampler.sample_many([1.0, 2.0, 3.0])
        assert sampler.factorization_count == 3

    def test_invalid_method(self, simple_rc):
        circuit, spec = simple_rc
        with pytest.raises(Exception):
            NetworkFunctionSampler(circuit, spec, method="magic")

    def test_max_degree(self, ota_circuit):
        circuit, spec = ota_circuit
        sampler = NetworkFunctionSampler(to_admittance_form(circuit), spec)
        assert sampler.max_polynomial_degree() == 9
