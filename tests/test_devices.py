"""Tests for small-signal device models and their expansion."""

import math

import pytest

from repro.devices.bjt import THERMAL_VOLTAGE, BjtSmallSignal
from repro.devices.diode import DiodeSmallSignal
from repro.devices.expand import expand_bjt, expand_diode, expand_mosfet
from repro.devices.mosfet import MosfetSmallSignal
from repro.errors import DeviceModelError
from repro.netlist.circuit import Circuit
from repro.netlist.elements import Capacitor, Conductor, VCCS


class TestMosfetModel:
    def test_direct_parameters(self):
        model = MosfetSmallSignal(gm=1e-3, gds=20e-6, cgs=50e-15, cgd=5e-15)
        assert model.intrinsic_gain() == pytest.approx(50.0)
        assert model.transition_frequency() == pytest.approx(
            1e-3 / (2 * math.pi * 55e-15))

    def test_from_operating_point(self):
        model = MosfetSmallSignal.from_operating_point(
            drain_current=100e-6, overdrive=0.2, channel_length_modulation=0.05,
            cgs=20e-15, cgd=2e-15, bulk_factor=0.25)
        assert model.gm == pytest.approx(1e-3)
        assert model.gds == pytest.approx(5e-6)
        assert model.gmb == pytest.approx(0.25e-3)

    def test_from_params_direct_and_op(self):
        direct = MosfetSmallSignal.from_params({"gm": 1e-3, "gds": 1e-5,
                                                "cgs": 1e-14, "cgd": 1e-15})
        assert direct.gm == pytest.approx(1e-3)
        op = MosfetSmallSignal.from_params({"id": 50e-6, "vov": 0.25,
                                            "lambda": 0.1})
        assert op.gm == pytest.approx(2 * 50e-6 / 0.25)

    def test_invalid_parameters(self):
        with pytest.raises(DeviceModelError):
            MosfetSmallSignal(gm=-1.0, gds=0.0, cgs=0.0, cgd=0.0)
        with pytest.raises(DeviceModelError):
            MosfetSmallSignal(gm=1e-3, gds=0.0, cgs=-1e-15, cgd=0.0)
        with pytest.raises(DeviceModelError):
            MosfetSmallSignal.from_operating_point(1e-3, overdrive=0.0)
        with pytest.raises(DeviceModelError):
            MosfetSmallSignal.from_params({"cgs": 1e-15})

    def test_infinite_figures_without_caps(self):
        model = MosfetSmallSignal(gm=1e-3, gds=0.0, cgs=0.0, cgd=0.0)
        assert model.intrinsic_gain() == math.inf
        assert model.transition_frequency() == math.inf

    def test_as_dict(self):
        model = MosfetSmallSignal(gm=1e-3, gds=1e-5, cgs=1e-14, cgd=1e-15)
        data = model.as_dict()
        assert data["gm"] == pytest.approx(1e-3)
        assert data["polarity"] == "nmos"


class TestBjtModel:
    def test_from_operating_point(self):
        model = BjtSmallSignal.from_operating_point(
            collector_current=1e-3, beta=200, early_voltage=100,
            transit_time=0.3e-9, cje=1e-12, cmu=0.5e-12, rb=150, ccs=2e-12)
        gm = 1e-3 / THERMAL_VOLTAGE
        assert model.gm == pytest.approx(gm)
        assert model.gpi == pytest.approx(gm / 200)
        assert model.go == pytest.approx(1e-5)
        assert model.cpi == pytest.approx(gm * 0.3e-9 + 1e-12)
        assert model.beta() == pytest.approx(200)

    def test_from_params_aliases(self):
        model = BjtSmallSignal.from_params({"ic": 1e-3, "bf": 150, "vaf": 80,
                                            "cjc": 0.4e-12})
        assert model.beta() == pytest.approx(150)
        assert model.cmu == pytest.approx(0.4e-12)

    def test_direct_params(self):
        model = BjtSmallSignal.from_params({"gm": 0.04, "gpi": 2e-4,
                                            "cpi": 1e-12, "cmu": 1e-13})
        assert model.gm == pytest.approx(0.04)

    def test_invalid(self):
        with pytest.raises(DeviceModelError):
            BjtSmallSignal.from_operating_point(collector_current=0.0)
        with pytest.raises(DeviceModelError):
            BjtSmallSignal.from_operating_point(1e-3, beta=-5)
        with pytest.raises(DeviceModelError):
            BjtSmallSignal.from_params({"cje": 1e-12})
        with pytest.raises(DeviceModelError):
            BjtSmallSignal(gm=0.0, gpi=0.0, go=0.0, cpi=0.0, cmu=0.0)

    def test_transition_frequency(self):
        model = BjtSmallSignal.from_operating_point(1e-3, transit_time=0.3e-9,
                                                    cmu=0.5e-12)
        expected = model.gm / (2 * math.pi * (model.cpi + model.cmu))
        assert model.transition_frequency() == pytest.approx(expected)


class TestDiodeModel:
    def test_from_operating_point(self):
        model = DiodeSmallSignal.from_operating_point(1e-3, transit_time=1e-9,
                                                      junction_capacitance=1e-12)
        assert model.gd == pytest.approx(1e-3 / THERMAL_VOLTAGE)
        assert model.cd == pytest.approx(model.gd * 1e-9 + 1e-12)

    def test_from_params(self):
        assert DiodeSmallSignal.from_params({"gd": 1e-3}).gd == pytest.approx(1e-3)
        with pytest.raises(DeviceModelError):
            DiodeSmallSignal.from_params({"tt": 1e-9})

    def test_invalid(self):
        with pytest.raises(DeviceModelError):
            DiodeSmallSignal(gd=-1.0)


class TestExpansion:
    def test_expand_mosfet_elements(self):
        circuit = Circuit("m")
        model = MosfetSmallSignal(gm=1e-3, gds=2e-5, cgs=5e-14, cgd=5e-15,
                                  gmb=2e-4, cdb=1e-14)
        names = expand_mosfet(circuit, "M1", "d", "g", "s", "b", model)
        assert "M1.gm" in circuit and isinstance(circuit["M1.gm"], VCCS)
        assert circuit["M1.gm"].ctrl_pos == "g"
        assert circuit["M1.gmb"].ctrl_pos == "b"
        assert isinstance(circuit["M1.gds"], Conductor)
        assert isinstance(circuit["M1.cgs"], Capacitor)
        # Zero-valued parameters (cgb, csb) are skipped.
        assert "M1.cgb" not in circuit
        assert "M1.csb" not in circuit

    def test_expand_mosfet_grounded_gate_skips_gm(self):
        circuit = Circuit("m")
        model = MosfetSmallSignal(gm=1e-3, gds=2e-5, cgs=5e-14, cgd=5e-15)
        expand_mosfet(circuit, "M1", "d", "0", "0", "0", model)
        # gate == source == ground -> the gm control is degenerate and skipped
        assert "M1.gm" not in circuit
        assert "M1.gds" in circuit

    def test_expand_bjt_with_and_without_rb(self):
        circuit = Circuit("q")
        with_rb = BjtSmallSignal(gm=0.04, gpi=2e-4, go=1e-5, cpi=1e-12,
                                 cmu=1e-13, rb=100.0)
        expand_bjt(circuit, "Q1", "c", "b", "e", with_rb)
        assert "Q1.gb" in circuit
        assert circuit["Q1.gpi"].node_pos == "Q1.b"

        circuit2 = Circuit("q2")
        without_rb = BjtSmallSignal(gm=0.04, gpi=2e-4, go=1e-5, cpi=1e-12,
                                    cmu=1e-13, rb=0.0)
        expand_bjt(circuit2, "Q1", "c", "b", "e", without_rb)
        assert "Q1.gb" not in circuit2
        assert circuit2["Q1.gpi"].node_pos == "b"

    def test_expand_bjt_ccs_goes_to_substrate(self):
        circuit = Circuit("q")
        model = BjtSmallSignal(gm=0.04, gpi=2e-4, go=1e-5, cpi=1e-12,
                               cmu=1e-13, ccs=2e-12)
        expand_bjt(circuit, "Q1", "c", "b", "e", model, substrate="sub")
        assert circuit["Q1.ccs"].nodes == ("c", "sub")

    def test_expand_diode(self):
        circuit = Circuit("d")
        expand_diode(circuit, "D1", "a", "k", DiodeSmallSignal(gd=1e-3, cd=1e-12))
        assert circuit["D1.gd"].value == pytest.approx(1e-3)
        assert circuit["D1.cd"].value == pytest.approx(1e-12)

    def test_type_checks(self):
        circuit = Circuit("x")
        with pytest.raises(TypeError):
            expand_mosfet(circuit, "M1", "d", "g", "s", "b", object())
        with pytest.raises(TypeError):
            expand_bjt(circuit, "Q1", "c", "b", "e", object())
        with pytest.raises(TypeError):
            expand_diode(circuit, "D1", "a", "k", object())

    def test_expansion_gain_matches_hand_calculation(self):
        """Common-source stage: DC gain must be -gm*(RL || 1/gds)."""
        circuit = Circuit("cs")
        circuit.add_voltage_source("vin", "g", "0", 1.0)
        circuit.add_resistor("RL", "d", "0", 100e3)
        model = MosfetSmallSignal(gm=1e-3, gds=1e-5, cgs=1e-14, cgd=1e-15)
        expand_mosfet(circuit, "M1", "d", "g", "0", "0", model)
        from repro.analysis.ac import ACAnalysis

        gain = ACAnalysis(circuit, "d").value_at(0.0)
        expected = -1e-3 / (1e-5 + 1e-5)
        assert gain.real == pytest.approx(expected, rel=1e-9)
