"""Tests for the experiment runners and report formatting (reporting package)."""

import numpy as np
import pytest

from repro.reporting.experiments import (
    run_cpu_reduction,
    run_fig2,
    run_scaling_ablation,
    run_sdg_experiment,
    run_table1,
    run_table2_table3,
)
from repro.reporting.tables import (
    format_adaptive_iterations,
    format_bode_comparison,
    format_coefficient_table,
    format_table1,
)


@pytest.fixture(scope="module")
def table1_result():
    return run_table1()


@pytest.fixture(scope="module")
def table2_result():
    return run_table2_table3()


@pytest.fixture(scope="module")
def fig2_result():
    return run_fig2(points_per_decade=3)


class TestTable1:
    def test_unscaled_interpolation_fails_scaled_succeeds(self, table1_result):
        assert table1_result.degree_bound == 9
        assert table1_result.unscaled_valid_count() < 4
        assert table1_result.scaled_valid_count() >= 8
        assert (table1_result.scaled_valid_count()
                > table1_result.unscaled_valid_count())

    def test_numerator_shows_same_effect(self, table1_result):
        assert (table1_result.scaled_valid_count("numerator")
                >= table1_result.unscaled_valid_count("numerator"))

    def test_formatting(self, table1_result):
        text = format_table1(table1_result)
        assert "Table 1" in text
        assert "s^i" in text
        assert str(table1_result.degree_bound) in text


class TestTable2And3:
    def test_multiple_shifting_regions(self, table2_result):
        regions = table2_result.region_sequence()
        assert len(regions) >= 3
        starts = [start for start, __ in regions]
        ends = [end for __, end in regions]
        # Regions shift towards higher powers across the forward iterations.
        assert max(ends) > ends[0]
        assert table2_result.covered_all()

    def test_degree_bound_matches_ua741_size(self, table2_result):
        assert table2_result.degree_bound >= 30

    def test_formatting(self, table2_result):
        text = format_adaptive_iterations(table2_result.adaptive)
        assert "valid region" in text
        coefficients = format_coefficient_table(
            table2_result.adaptive.coefficients, max_rows=10)
        assert "s^i" in coefficients
        assert "more rows" in coefficients


class TestFig2:
    def test_interpolated_curve_overlays_simulation(self, fig2_result):
        comparison = fig2_result.comparison
        assert comparison.max_magnitude_error_db < 0.1
        assert comparison.max_phase_error_deg < 1.0
        assert comparison.matches()

    def test_curves_span_the_gain_rolloff(self, fig2_result):
        interpolated, simulated = fig2_result.magnitude_db()
        assert interpolated[0] > 80.0      # ~100 dB open-loop gain at 1 Hz
        assert interpolated[-1] < 0.0      # below unity at 100 MHz
        assert simulated.shape == interpolated.shape

    def test_formatting(self, fig2_result):
        text = format_bode_comparison(fig2_result)
        assert "Fig. 2" in text
        assert "interp" in text


class TestCpuReductionAndAblation:
    def test_reduction_saves_interpolation_points(self):
        result = run_cpu_reduction()
        with_points, without_points = result.total_points()
        assert with_points < without_points
        assert result.per_iteration_decreasing()
        assert 0.0 < result.reduction_ratio() < 1.0
        assert result.with_reduction_points[-1] < result.with_reduction_points[0]

    def test_scaling_ablation_shapes(self):
        result = run_scaling_ablation()
        # Simultaneous scaling keeps individual factors smaller than putting
        # the whole ratio into the frequency factor (Sec. 3.2).
        assert result.simultaneous_max_factor < result.single_factor_max_factor
        assert result.simultaneous.converged
        # The fixed-grid strategy needs more interpolations than the adaptive
        # run and/or fails to cover every coefficient (Sec. 3.1 motivation).
        adaptive_interpolations = result.simultaneous.iteration_count()
        assert (result.fixed_grid_interpolations > adaptive_interpolations
                or result.fixed_grid_covered < result.degree_bound + 1)


class TestSdgExperiment:
    def test_reference_enables_term_pruning(self):
        result = run_sdg_experiment(epsilon=0.05)
        kept, total = result.total_terms()
        assert kept < total
        assert result.compression() > 0.5
