"""Rank-1 update sensitivity engine: kernels, stamps, and equivalence.

The contract under test: screening an element with the Sherman–Morrison
engine (``method="rank1"``) must agree with the brute-force oracle
(``method="rebuild"``) — same influence rankings, same singular-on-removal
elements, removal / perturbation responses within 1e-9 of each other — on the
µA741 macro and the Miller OTA, including VCCS elements and an element whose
removal makes the circuit singular.
"""

import numpy as np
import pytest

from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.ua741 import build_ua741
from repro.errors import (FormulationError, SingularMatrixError,
                          UnknownElementError)
from repro.linalg.dense import batched_dense_lu, dense_lu
from repro.linalg.lu import sparse_lu, sparse_lu_refactor
from repro.linalg.rank1 import rank1_update_solve
from repro.linalg.sparse import SparseMatrix
from repro.mna.builder import build_mna_system
from repro.mna.solve import ac_factor_sweep, ac_sweep
from repro.analysis.sensitivity import element_sensitivities, screen_elements
from repro.netlist.circuit import Circuit
from repro.nodal.admittance import build_nodal_formulation
from repro.nodal.reduce import TransferSpec


@pytest.fixture(scope="module")
def ua741():
    return build_ua741()


@pytest.fixture(scope="module")
def miller():
    return build_miller_ota()


def _random_system(rng, n):
    matrix = rng.standard_normal((n, n)) + 1j * rng.standard_normal((n, n))
    matrix += n * np.eye(n)  # keep comfortably nonsingular
    rhs = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    u = rng.standard_normal(n)
    v = rng.standard_normal(n)
    return matrix, rhs, u, v


class TestRank1UpdateSolve:
    def test_dense_matches_direct_factorization(self):
        rng = np.random.default_rng(1)
        matrix, rhs, u, v = _random_system(rng, 9)
        delta = 0.7 - 0.3j
        updated = matrix + delta * np.outer(u, v)
        expected = dense_lu(updated).solve(rhs)
        actual = rank1_update_solve(dense_lu(matrix), u, v, delta, rhs)
        np.testing.assert_allclose(actual, expected, rtol=1e-10)

    def test_dense_reuses_precomputed_solutions(self):
        rng = np.random.default_rng(2)
        matrix, rhs, u, v = _random_system(rng, 7)
        factorization = dense_lu(matrix)
        baseline = factorization.solve(rhs)
        update = factorization.solve(u)
        delta = -1.5
        direct = rank1_update_solve(factorization, u, v, delta, rhs)
        reused = rank1_update_solve(factorization, u, v, delta, rhs,
                                    baseline_solution=baseline,
                                    update_solution=update)
        np.testing.assert_array_equal(direct, reused)

    def test_batched_with_per_member_delta(self):
        rng = np.random.default_rng(3)
        n, batch = 6, 5
        stack = (rng.standard_normal((batch, n, n))
                 + 1j * rng.standard_normal((batch, n, n))
                 + n * np.eye(n))
        rhs = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        u = rng.standard_normal(n)
        v = rng.standard_normal(n)
        deltas = rng.standard_normal(batch) + 1j * rng.standard_normal(batch)
        solutions = rank1_update_solve(batched_dense_lu(stack.copy()),
                                       u, v, deltas, rhs)
        for k in range(batch):
            updated = stack[k] + deltas[k] * np.outer(u, v)
            np.testing.assert_allclose(solutions[k],
                                       dense_lu(updated).solve(rhs),
                                       rtol=1e-9)

    def test_sparse_factorization_and_refactorization(self):
        rng = np.random.default_rng(4)
        matrix, rhs, u, v = _random_system(rng, 8)
        sparse = SparseMatrix.from_dense(matrix)
        factorization = sparse_lu(sparse)
        delta = 0.25 + 0.1j
        expected = dense_lu(matrix + delta * np.outer(u, v)).solve(rhs)
        np.testing.assert_allclose(
            rank1_update_solve(factorization, u, v, delta, rhs),
            expected, rtol=1e-9)
        # Factors produced by the refactor-many path work unchanged.
        refactored = sparse_lu_refactor(
            SparseMatrix.from_dense(matrix * (1.0 + 0.5j)), factorization)
        expected = dense_lu(matrix * (1.0 + 0.5j)
                            + delta * np.outer(u, v)).solve(rhs)
        np.testing.assert_allclose(
            rank1_update_solve(refactored, u, v, delta, rhs),
            expected, rtol=1e-9)

    def test_singular_update_raises(self):
        # A' = A - A e1 e1^T-ish: choose delta so that 1 + delta*v.(A^-1 u)=0.
        matrix = np.diag([2.0, 3.0, 4.0]).astype(complex)
        u = np.array([1.0, 0.0, 0.0])
        v = np.array([1.0, 0.0, 0.0])
        factorization = dense_lu(matrix)
        with pytest.raises(SingularMatrixError):
            rank1_update_solve(factorization, u, v, -2.0,
                               np.ones(3, dtype=complex))
        stack = np.broadcast_to(matrix, (4, 3, 3)).copy()
        with pytest.raises(SingularMatrixError):
            rank1_update_solve(batched_dense_lu(stack), u, v, -2.0,
                               np.ones(3, dtype=complex))


class TestBatchedSolveMatrix:
    def test_matches_per_column_solves(self):
        rng = np.random.default_rng(5)
        n, batch, columns = 7, 4, 3
        stack = (rng.standard_normal((batch, n, n))
                 + 1j * rng.standard_normal((batch, n, n))
                 + n * np.eye(n))
        rhs_matrix = (rng.standard_normal((n, columns))
                      + 1j * rng.standard_normal((n, columns)))
        factorization = batched_dense_lu(stack.copy())
        solutions = factorization.solve_matrix(rhs_matrix)
        assert solutions.shape == (batch, n, columns)
        for j in range(columns):
            np.testing.assert_allclose(
                solutions[:, :, j],
                factorization.solve(rhs_matrix[:, j]), rtol=1e-12)

    def test_rejects_bad_shapes(self):
        stack = np.eye(3)[None, :, :].astype(complex)
        factorization = batched_dense_lu(stack)
        with pytest.raises(Exception):
            factorization.solve_matrix(np.zeros((4, 2)))


class TestElementStamps:
    def test_mna_stamp_reconstructs_assembly(self, ua741):
        circuit, __ = ua741
        system = build_mna_system(circuit)
        s = 2j * np.pi * 1e5
        full = system.assemble(s).to_dense()
        # One of each stamped kind: resistor, expanded-device conductor,
        # capacitor and VCCS.
        for name in ("RL", "Q17.gpi", "Cc", "Q17.gm"):
            stamp = system.element_stamp(name)
            removed = build_mna_system(circuit.with_element_removed(name))
            assert removed.node_names == system.node_names
            reconstructed = (removed.assemble(s).to_dense()
                             + stamp.admittance(s) * np.outer(stamp.u, stamp.v))
            np.testing.assert_allclose(reconstructed, full, rtol=1e-12,
                                       atol=1e-30)

    def test_mna_stamp_rejects_branch_elements(self, ua741):
        circuit, __ = ua741
        system = build_mna_system(circuit)
        with pytest.raises(FormulationError):
            system.element_stamp("Vip")

    def test_nodal_stamp_with_forced_nodes(self, miller):
        circuit, spec = miller
        formulation = build_nodal_formulation(circuit, spec)
        s = 2j * np.pi * 1e6
        factor = 1.37
        # M1.cgs touches the forced input node "inp", M1.gm is controlled by
        # it: both matrix and right-hand side must shift per the stamp.
        for name in ("M1.cgs", "M1.gm", "Cc"):
            stamp = formulation.element_stamp(name)
            scaled = build_nodal_formulation(
                circuit.with_value_scaled(name, factor), spec)
            delta = (factor - 1.0) * stamp.admittance(s)
            np.testing.assert_allclose(
                formulation.assemble(s).to_dense()
                + delta * np.outer(stamp.u, stamp.v),
                scaled.assemble(s).to_dense(), rtol=1e-12, atol=1e-30)
            np.testing.assert_allclose(
                formulation.rhs(s) - delta * stamp.rhs_projection * stamp.u,
                scaled.rhs(s), rtol=1e-12, atol=1e-30)

    def test_nodal_stamp_solves_scaled_circuit(self, miller):
        # End to end: rank1_update_solve on the baseline factors reproduces
        # the scaled circuit's solution, forced-node coupling included.
        circuit, spec = miller
        formulation = build_nodal_formulation(circuit, spec)
        s = 2j * np.pi * 1e6
        name, factor = "M1.gm", 1.25
        stamp = formulation.element_stamp(name)
        delta = (factor - 1.0) * stamp.admittance(s)
        factorization = dense_lu(formulation.assemble(s).to_dense())
        solution = rank1_update_solve(
            factorization, stamp.u, stamp.v, delta,
            formulation.rhs(s) - delta * stamp.rhs_projection * stamp.u)
        scaled = build_nodal_formulation(
            circuit.with_value_scaled(name, factor), spec)
        expected = dense_lu(scaled.assemble(s).to_dense()).solve(scaled.rhs(s))
        np.testing.assert_allclose(solution, expected, rtol=1e-9)


class TestSweepFactorization:
    def test_solve_matches_ac_sweep(self, ua741):
        circuit, __ = ua741
        system = build_mna_system(circuit)
        s = 2j * np.pi * np.logspace(0, 8, 17)
        sweep = ac_factor_sweep(system, s)
        np.testing.assert_array_equal(sweep.solve(system.rhs),
                                      ac_sweep(system, s))

    def test_sparse_path_matches_dense(self, miller):
        circuit, __ = miller
        system = build_mna_system(circuit)
        s = 2j * np.pi * np.logspace(3, 7, 5)
        dense = ac_factor_sweep(system, s, method="dense")
        sparse = ac_factor_sweep(system, s, method="sparse")
        np.testing.assert_allclose(sparse.solve(system.rhs),
                                   dense.solve(system.rhs), rtol=1e-9)
        columns = np.eye(system.dimension)[:, :3]
        np.testing.assert_allclose(sparse.solve_columns(columns),
                                   dense.solve_columns(columns), rtol=1e-9)


def _assert_equivalent(circuit, output, frequencies, elements=None):
    """rank1 and rebuild screenings must agree on every contract point."""
    rank1 = screen_elements(circuit, output, frequencies, elements=elements,
                            method="rank1")
    rebuild = screen_elements(circuit, output, frequencies, elements=elements,
                              method="rebuild")
    np.testing.assert_array_equal(rank1.baseline, rebuild.baseline)
    tiny = np.finfo(float).tiny
    for ours, oracle in zip(rank1.screenings, rebuild.screenings):
        assert ours.name == oracle.name
        for candidate, reference in (
            (ours.removal_response, oracle.removal_response),
            (ours.perturbed_response, oracle.perturbed_response),
        ):
            assert (candidate is None) == (reference is None), ours.name
            if candidate is None:
                continue
            scale = np.maximum(
                np.maximum(np.abs(reference), np.abs(rebuild.baseline)), tiny)
            assert float(np.max(np.abs(candidate - reference) / scale)) \
                <= 1e-9, ours.name
    assert ([i.name for i in rank1.influences()]
            == [i.name for i in rebuild.influences()])
    return rank1, rebuild


class TestScreeningEquivalence:
    def test_ua741_full_element_set(self, ua741):
        circuit, spec = ua741
        _assert_equivalent(circuit, spec, np.logspace(0, 8, 7))

    def test_miller_ota_full_element_set(self, miller):
        circuit, spec = miller
        rank1, __ = _assert_equivalent(circuit, spec, np.logspace(2, 8, 9))
        # The Miller OTA's screened set includes VCCS transconductances.
        assert any(name.endswith(".gm")
                   for name in (s.name for s in rank1.screenings))

    def test_vccs_specifically(self, miller):
        circuit, spec = miller
        _assert_equivalent(circuit, spec, np.logspace(2, 8, 9),
                           elements=["M1.gm", "M6.gm"])

    def test_singular_removal_element(self):
        # Node "b" hangs off the circuit through Rb alone: removing Rb leaves
        # a floating node — a structurally singular matrix — so both engines
        # must report infinite removal influence.
        circuit = Circuit("dangling")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_resistor("RL", "out", "0", 2e3)
        circuit.add_resistor("Rb", "out", "b", 1e4)
        frequencies = np.logspace(1, 6, 5)
        rank1, rebuild = _assert_equivalent(circuit, "out", frequencies)
        for result in (rank1, rebuild):
            influences = {i.name: i for i in result.influences()}
            assert influences["Rb"].removal_error == np.inf
            assert np.isfinite(influences["R1"].removal_error)
        # And the ranking puts the essential element last.
        assert [i.name for i in rank1.influences()][-1] == "Rb"

    def test_output_pair_and_transfer_spec(self, miller):
        circuit, __ = miller
        frequencies = np.logspace(3, 7, 5)
        spec_based = element_sensitivities(
            circuit, TransferSpec(inputs=["vip", "vim"], output="vout"),
            frequencies, elements=["Cc", "CL"])
        pair_based = element_sensitivities(
            circuit, ("vout", "0"), frequencies, elements=["Cc", "CL"])
        assert ([i.name for i in spec_based]
                == [i.name for i in pair_based])

    def test_unknown_element_raises_instead_of_inf(self, miller):
        # The old screening swallowed every exception into an infinite
        # influence figure; real bugs must surface now.
        circuit, spec = miller
        for method in ("rank1", "rebuild"):
            with pytest.raises(UnknownElementError):
                element_sensitivities(circuit, spec, np.logspace(3, 6, 3),
                                      elements=["nope"], method=method)

    def test_rank1_is_the_default(self, miller):
        circuit, spec = miller
        frequencies = np.logspace(3, 7, 5)
        default = screen_elements(circuit, spec, frequencies,
                                  elements=["Cc"])
        assert default.method == "rank1"
