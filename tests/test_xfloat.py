"""Tests for the extended-range float type."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xfloat import XFloat, log10_abs, xfloat


class TestConstruction:
    def test_normalizes_mantissa(self):
        value = XFloat(123.456, 0)
        assert 1.0 <= abs(value.mantissa) < 10.0
        assert value.exponent == 2

    def test_zero(self):
        assert XFloat.zero().is_zero()
        assert XFloat(0.0, 50).is_zero()
        assert float(XFloat.zero()) == 0.0

    def test_negative_values(self):
        value = XFloat(-0.00321, 0)
        assert value.sign() == -1.0
        assert value.exponent == -3
        assert math.isclose(value.mantissa, -3.21)

    def test_from_log10(self):
        value = XFloat.from_log10(-522.3, sign=-1.0)
        assert value.exponent == -523
        assert value.sign() == -1.0
        assert math.isclose(value.log10(), -522.3, rel_tol=1e-12)

    def test_from_xfloat_composes_exponents(self):
        inner = XFloat(2.5, -100)
        outer = XFloat(inner, 10)
        assert math.isclose(outer.log10(), inner.log10() + 10)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValueError):
            XFloat(float("nan"), 0)
        with pytest.raises(ValueError):
            XFloat(float("inf"), 0)

    def test_convenience_constructor(self):
        assert math.isclose(float(xfloat(3.2, -5)), 3.2e-5)


class TestConversion:
    def test_float_roundtrip_in_range(self):
        for value in (1.0, -2.5e-30, 7.7e45, 123.456e-7):
            assert math.isclose(float(XFloat(value, 0)), value, rel_tol=1e-12)

    def test_float_overflow_gives_inf(self):
        assert float(XFloat(1.0, 400)) == math.inf
        assert float(XFloat(-1.0, 400)) == -math.inf

    def test_float_underflow_gives_zero(self):
        assert float(XFloat(1.0, -400)) == 0.0

    def test_log10(self):
        assert math.isclose(XFloat(1.0, -522).log10(), -522.0)
        with pytest.raises(ValueError):
            XFloat.zero().log10()

    def test_log10_abs_helper(self):
        assert log10_abs(100.0) == pytest.approx(2.0)
        assert log10_abs(XFloat(1.0, -50)) == pytest.approx(-50.0)
        assert log10_abs(0.0) == -math.inf


class TestArithmetic:
    def test_multiplication_adds_exponents(self):
        a = XFloat(2.0, -100)
        b = XFloat(3.0, -200)
        product = a * b
        assert math.isclose(product.mantissa, 6.0)
        assert product.exponent == -300

    def test_multiplication_with_plain_floats(self):
        value = XFloat(2.0, -100) * 4.0
        assert math.isclose(value.log10(), math.log10(8.0) - 100)
        value = 4.0 * XFloat(2.0, -100)
        assert math.isclose(value.log10(), math.log10(8.0) - 100)

    def test_division(self):
        a = XFloat(2.0, -100)
        b = XFloat(4.0, -200)
        ratio = a / b
        assert math.isclose(float(ratio) / 1e100, 0.5, rel_tol=1e-12)
        with pytest.raises(ZeroDivisionError):
            a / XFloat.zero()

    def test_addition_same_scale(self):
        total = XFloat(2.0, -300) + XFloat(3.0, -300)
        assert math.isclose(total.mantissa, 5.0)
        assert total.exponent == -300

    def test_addition_disparate_scales_keeps_larger(self):
        big = XFloat(1.0, 0)
        small = XFloat(1.0, -60)
        assert (big + small) == big

    def test_subtraction_and_negation(self):
        a = XFloat(5.0, -10)
        b = XFloat(2.0, -10)
        assert math.isclose((a - b).mantissa, 3.0)
        assert (-a).sign() == -1.0
        assert (a - a).is_zero()

    def test_integer_power(self):
        value = XFloat(2.0, -5) ** 3
        assert math.isclose(value.log10(), 3 * (math.log10(2.0) - 5))
        assert (XFloat(-2.0, 0) ** 3).sign() == -1.0
        assert (XFloat(-2.0, 0) ** 2).sign() == 1.0
        assert (XFloat(3.0, 7) ** 0) == XFloat(1.0, 0)

    def test_power_requires_integer(self):
        with pytest.raises(TypeError):
            XFloat(2.0, 0) ** 0.5

    def test_zero_to_negative_power(self):
        with pytest.raises(ZeroDivisionError):
            XFloat.zero() ** -1

    def test_abs(self):
        assert abs(XFloat(-3.0, -400)).sign() == 1.0


class TestComparison:
    def test_ordering_across_exponents(self):
        assert XFloat(9.0, -10) < XFloat(1.1, -9)
        assert XFloat(1.0, 5) > XFloat(9.9, 4)
        assert XFloat(-1.0, 5) < XFloat(9.9, -10)

    def test_equality_and_hash(self):
        a = XFloat(2.5, -7)
        b = XFloat(25.0, -8)
        assert a == b
        assert hash(a) == hash(b)

    def test_comparison_with_floats(self):
        assert XFloat(2.0, 0) > 1.5
        assert XFloat(2.0, 0) == 2.0
        assert XFloat(200.0, 0) == XFloat(2.0, 2)

    def test_bool(self):
        assert not XFloat.zero()
        assert XFloat(1.0, -500)

    def test_approx_equal(self):
        a = XFloat(1.0, -100)
        b = XFloat(1.0 + 1e-12, -100)
        assert a.approx_equal(b)
        assert not a.approx_equal(-b)
        assert not a.approx_equal(XFloat(1.0, -99))


class TestFormatting:
    def test_format(self):
        assert XFloat(-4.3694, -176).format() == "-4.3694e-176"
        assert XFloat.zero().format() == "0"

    def test_str_and_repr(self):
        value = XFloat(1.5, -20)
        assert "e-20" in str(value)
        assert "XFloat" in repr(value)


class TestProperties:
    @given(st.floats(min_value=-1e9, max_value=1e9).filter(lambda v: abs(v) > 1e-9),
           st.floats(min_value=-1e9, max_value=1e9).filter(lambda v: abs(v) > 1e-9))
    @settings(max_examples=200, deadline=None)
    def test_multiplication_matches_floats(self, a, b):
        result = XFloat(a, 0) * XFloat(b, 0)
        assert math.isclose(float(result), a * b, rel_tol=1e-9)

    @given(st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=200, deadline=None)
    def test_addition_matches_floats(self, a, b):
        result = XFloat(a, 0) + XFloat(b, 0)
        expected = a + b
        if expected == 0.0:
            assert abs(float(result)) <= 1e-6 * max(abs(a), abs(b), 1.0)
        else:
            # abs_tol floor covers subnormal inputs, which float(XFloat)
            # flushes to zero by design.
            assert math.isclose(float(result), expected, rel_tol=1e-9,
                                abs_tol=max(1e-9 * max(abs(a), abs(b)), 1e-300))

    @given(st.floats(min_value=-1e8, max_value=1e8).filter(lambda v: abs(v) > 1e-8),
           st.floats(min_value=-1e8, max_value=1e8).filter(lambda v: abs(v) > 1e-8))
    @settings(max_examples=200, deadline=None)
    def test_ordering_matches_floats(self, a, b):
        assert (XFloat(a, 0) < XFloat(b, 0)) == (a < b)

    @given(st.integers(min_value=-600, max_value=600),
           st.floats(min_value=1.0, max_value=9.999))
    @settings(max_examples=200, deadline=None)
    def test_log10_roundtrip(self, exponent, mantissa):
        value = XFloat(mantissa, exponent)
        rebuilt = XFloat.from_log10(value.log10(), value.sign())
        assert value.approx_equal(rebuilt, rel_tol=1e-9)
