"""The unified engine: formulation protocol, sweep core, analysis session."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.analysis.sensitivity import screen_elements
from repro.circuits.cascode import build_cascode_amplifier
from repro.circuits.filters import (build_sallen_key_lowpass,
                                    build_tow_thomas_biquad)
from repro.circuits.miller_ota import build_miller_ota
from repro.circuits.ota import build_positive_feedback_ota
from repro.circuits.rc_ladder import build_rc_ladder
from repro.circuits.ua741 import build_ua741
from repro.engine import AnalysisSession, Formulation, SweepEngine
from repro.errors import FormulationError
from repro.linalg.config import (DEFAULT_DENSE_CUTOFF, DENSE_CUTOFF_ENV,
                                 dense_cutoff, use_dense)
from repro.mna.builder import build_mna_system, system_dimension
from repro.netlist.transform import to_admittance_form
from repro.nodal.admittance import build_nodal_formulation
from repro.nodal.sampler import NetworkFunctionSampler

#: Every circuit of the library, by name.  Cross-formulation equivalence must
#: hold on all of them.
LIBRARY_CIRCUITS = [
    ("rc_ladder", lambda: build_rc_ladder(4)),
    ("sallen_key", build_sallen_key_lowpass),
    ("tow_thomas", build_tow_thomas_biquad),
    ("ota", build_positive_feedback_ota),
    ("miller_ota", build_miller_ota),
    ("cascode", build_cascode_amplifier),
    ("ua741", build_ua741),
]


# --------------------------------------------------------------------------- #
# cross-formulation equivalence
# --------------------------------------------------------------------------- #


class TestCrossFormulationEquivalence:
    @pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS,
                             ids=[name for name, __ in LIBRARY_CIRCUITS])
    def test_mna_and_nodal_transfer_agree(self, name, builder):
        """MNA and nodal formulations compute the same transfer function.

        Both stacks see the identical admittance-form circuit, so any
        disagreement beyond rounding would mean the two assembly paths have
        diverged — the regression this engine refactor is meant to prevent.
        """
        circuit, spec = builder()
        admittance = to_admittance_form(circuit)
        frequencies = np.logspace(1, 7, 13)
        via_mna = ACAnalysis(admittance, spec).frequency_response(frequencies)
        via_nodal = NetworkFunctionSampler(admittance,
                                           spec).frequency_response(
                                               frequencies)
        # Drives are O(1), so responses below 1e-9 are cancellation noise
        # (the positive-feedback OTA's differential output lives entirely
        # down there): compare those absolutely, everything else relatively.
        deviation = np.abs(via_nodal - via_mna)
        significant = np.abs(via_mna) > 1e-9
        assert np.all(deviation[~significant] <= 1e-9)
        if significant.any():
            relative = deviation[significant] / np.abs(via_mna[significant])
            assert np.max(relative) <= 1e-8

    @pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS[:5],
                             ids=[name for name, __ in LIBRARY_CIRCUITS[:5]])
    def test_both_formulations_satisfy_protocol(self, name, builder):
        circuit, spec = builder()
        admittance = to_admittance_form(circuit)
        mna = build_mna_system(admittance)
        nodal = build_nodal_formulation(admittance, spec)
        for formulation in (mna, nodal):
            assert isinstance(formulation, Formulation)
            constant, dynamic = formulation.sparse_parts()
            assert constant.n_rows == formulation.dimension
            assert dynamic.n_rows == formulation.dimension

    def test_shared_assembly_matches_per_point(self, ua741_circuit):
        """Batched stack assembly equals the per-point sparse assembly."""
        circuit, spec = ua741_circuit
        system = build_mna_system(circuit)
        s = 2j * math.pi * np.logspace(0, 8, 7)
        stack = system.assemble_batch(s)
        for k, point in enumerate(s):
            np.testing.assert_array_equal(stack[k],
                                          system.assemble(point).to_dense())

    def test_nodal_scaled_assembly_matches_per_point(self, ota_circuit):
        circuit, spec = ota_circuit
        formulation = build_nodal_formulation(to_admittance_form(circuit),
                                              spec)
        s = 2j * math.pi * np.logspace(2, 6, 5)
        stack = formulation.assemble_batch(s, 2.5, 1e9)
        for k, point in enumerate(s):
            np.testing.assert_array_equal(
                stack[k], formulation.assemble(point, 2.5, 1e9).to_dense())


# --------------------------------------------------------------------------- #
# the sweep engine proper
# --------------------------------------------------------------------------- #


class TestSweepEngine:
    def test_dense_and_sparse_paths_agree(self, miller_circuit):
        circuit, __ = miller_circuit
        system = build_mna_system(circuit)
        s = 2j * math.pi * np.logspace(1, 7, 9)
        dense = SweepEngine(system, method="dense").solve_sweep(s, system.rhs)
        sparse = SweepEngine(system, method="sparse").solve_sweep(s,
                                                                  system.rhs)
        scale = np.max(np.abs(dense))
        assert np.max(np.abs(dense - sparse)) <= 1e-9 * scale

    def test_factor_sweep_members_match_batched_solve(self, miller_circuit):
        circuit, __ = miller_circuit
        system = build_mna_system(circuit)
        s = 2j * math.pi * np.logspace(1, 7, 6)
        factors = SweepEngine(system).factor_sweep(s)
        batched = factors.solve(system.rhs)
        members = list(factors.members())
        assert len(members) == factors.num_points
        for k, member in enumerate(members):
            solution = member.solve(system.rhs)
            assert np.max(np.abs(solution - batched[k])) <= (
                1e-12 * np.max(np.abs(solution)))

    def test_unknown_method_rejected(self, miller_circuit):
        circuit, __ = miller_circuit
        system = build_mna_system(circuit)
        with pytest.raises(FormulationError):
            SweepEngine(system, method="magic")

    def test_sparse_engine_reuses_pattern_across_calls(self, miller_circuit):
        circuit, __ = miller_circuit
        system = build_mna_system(circuit)
        engine = SweepEngine(system, method="sparse")
        s = 2j * math.pi * np.logspace(1, 5, 4)
        engine.solve_sweep(s, system.rhs)
        assert engine.factorization_count == 1
        assert engine.refactorization_count == 3
        engine.solve_sweep(s, system.rhs)
        # The second sweep refactors every point against the kept pattern.
        assert engine.factorization_count == 1
        assert engine.refactorization_count == 7


# --------------------------------------------------------------------------- #
# the dense/sparse cutoff configuration
# --------------------------------------------------------------------------- #


class TestDenseCutoffConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(DENSE_CUTOFF_ENV, raising=False)
        assert dense_cutoff() == DEFAULT_DENSE_CUTOFF

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(DENSE_CUTOFF_ENV, "7")
        assert dense_cutoff() == 7
        assert use_dense(7) and not use_dense(8)

    def test_invalid_override_falls_back(self, monkeypatch):
        monkeypatch.setenv(DENSE_CUTOFF_ENV, "many")
        assert dense_cutoff() == DEFAULT_DENSE_CUTOFF
        monkeypatch.setenv(DENSE_CUTOFF_ENV, "-3")
        assert dense_cutoff() == DEFAULT_DENSE_CUTOFF

    def test_engine_dispatch_follows_cutoff(self, miller_circuit,
                                            monkeypatch):
        circuit, __ = miller_circuit
        system = build_mna_system(circuit)
        monkeypatch.setenv(DENSE_CUTOFF_ENV, "1")
        assert not SweepEngine(system).is_dense
        monkeypatch.setenv(DENSE_CUTOFF_ENV, str(system.dimension))
        assert SweepEngine(system).is_dense
        assert use_dense(system.dimension, "sparse") is False

    def test_forced_methods_ignore_cutoff(self):
        assert use_dense(10_000, "dense") is True
        assert use_dense(1, "sparse") is False


# --------------------------------------------------------------------------- #
# the analysis session
# --------------------------------------------------------------------------- #


class TestAnalysisSession:
    def test_content_keyed_cache_hits(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        first = session.mna_system(circuit)
        again = session.mna_system(circuit)
        assert again is first
        # A copy with identical content shares the fingerprint and the cache.
        assert session.mna_system(circuit.copy("renamed")) is first
        assert session.hits == 2
        assert session.misses == 1

    def test_mutation_changes_fingerprint(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        original = session.mna_system(circuit)
        scaled = circuit.with_value_scaled("R1", 1.01)
        assert AnalysisSession.fingerprint(scaled) != (
            AnalysisSession.fingerprint(circuit))
        assert session.mna_system(scaled) is not original
        assert session.misses == 2

    def test_factored_sweep_cached_per_grid(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        s = 2j * math.pi * np.logspace(0, 6, 5)
        sweep = session.factored_sweep(circuit, s)
        assert session.factored_sweep(circuit, s) is sweep
        other = session.factored_sweep(circuit, 2.0 * s)
        assert other is not sweep

    def test_frequency_response_matches_ac_analysis(self, ua741_circuit):
        circuit, spec = ua741_circuit
        session = AnalysisSession()
        frequencies = np.logspace(0, 8, 21)
        expected = ACAnalysis(circuit, spec).frequency_response(frequencies)
        via_session = session.frequency_response(circuit, spec, frequencies)
        np.testing.assert_array_equal(via_session, expected)
        # ACAnalysis wired to the session reuses the same factors and stays
        # bit-identical.
        wired = ACAnalysis(circuit, spec,
                           session=session).frequency_response(frequencies)
        np.testing.assert_array_equal(wired, expected)

    def test_screening_result_cached_and_identical(self, miller_circuit):
        circuit, spec = miller_circuit
        session = AnalysisSession()
        frequencies = np.logspace(1, 7, 9)
        cold = screen_elements(circuit, spec, frequencies)
        cached = session.screening(circuit, spec, frequencies)
        assert session.screening(circuit, spec, frequencies) is cached
        assert ([i.name for i in cached.influences()]
                == [i.name for i in cold.influences()])
        np.testing.assert_array_equal(cached.baseline, cold.baseline)

    def test_reference_cached_by_content(self, rc_ladder_3):
        circuit, spec = rc_ladder_3[:2]
        session = AnalysisSession()
        reference = session.reference(circuit, spec)
        assert session.reference(circuit, spec) is reference
        assert session.reference(circuit.copy("again"), spec) is reference

    def test_invalidate_single_circuit(self, simple_rc, miller_circuit):
        circuit, spec = simple_rc
        other, __ = miller_circuit
        session = AnalysisSession()
        session.mna_system(circuit)
        session.mna_system(other)
        s = 2j * math.pi * np.logspace(0, 4, 3)
        session.factored_sweep(circuit, s)
        removed = session.invalidate(circuit)
        assert removed == 2
        assert session.entry_count == 1
        # The surviving entry belongs to the other circuit.
        hits_before = session.hits
        session.mna_system(other)
        assert session.hits == hits_before + 1

    def test_dangling_node_changes_fingerprint(self):
        """Same element list, different node registry → different hash.

        ``with_element_removed`` leaves the removed element's nodes declared,
        and declared nodes change the MNA dimension — so they must be part
        of the content hash or the session would serve a wrong-size system.
        """
        from repro.netlist.circuit import Circuit

        def base():
            circuit = Circuit("rc")
            circuit.add_voltage_source("vin", "in", "0", 1.0)
            circuit.add_resistor("R1", "in", "out", 1e3)
            circuit.add_capacitor("C1", "out", "0", 1e-9)
            return circuit

        dangling = base()
        dangling.add_resistor("RX", "out", "extra", 1e6)
        dangling = dangling.with_element_removed("RX")
        clean = base()
        assert [repr(e) for e in dangling] == [repr(e) for e in clean]
        assert (build_mna_system(dangling).dimension
                != build_mna_system(clean).dimension)
        assert (AnalysisSession.fingerprint(dangling)
                != AnalysisSession.fingerprint(clean))
        session = AnalysisSession()
        assert session.mna_system(dangling) is not session.mna_system(clean)

    def test_screen_elements_memoizes_through_session(self, miller_circuit):
        """The public entry point delegates to the session's result cache."""
        circuit, spec = miller_circuit
        session = AnalysisSession()
        frequencies = np.logspace(1, 6, 7)
        first = screen_elements(circuit, spec, frequencies, session=session)
        assert screen_elements(circuit, spec, frequencies,
                               session=session) is first

    def test_analysis_snapshot_survives_inplace_mutation(self,
                                                         miller_circuit):
        """Session-backed ACAnalysis answers for its construction snapshot."""
        import dataclasses

        from repro.netlist.elements import Capacitor, Resistor

        circuit, spec = miller_circuit
        frequencies = np.logspace(1, 6, 9)
        session = AnalysisSession()
        cold = ACAnalysis(circuit.copy("snap"), spec)
        warm = ACAnalysis(circuit.copy("snap"), spec, session=session)
        target = next(e for e in warm.circuit
                      if isinstance(e, (Resistor, Capacitor)))
        warm.circuit.replace(dataclasses.replace(target,
                                                 value=target.value * 10))
        np.testing.assert_array_equal(warm.frequency_response(frequencies),
                                      cold.frequency_response(frequencies))

    def test_factorization_count_honest_on_cache_hit(self, miller_circuit):
        circuit, spec = miller_circuit
        frequencies = np.logspace(1, 6, 9)
        session = AnalysisSession()
        first = ACAnalysis(circuit, spec, session=session)
        first.frequency_response(frequencies)
        assert first.factorization_count == len(frequencies)
        second = ACAnalysis(circuit, spec, session=session)
        second.frequency_response(frequencies)
        assert second.factorization_count == 0

    def test_sweep_cache_is_bounded(self, simple_rc):
        from repro.engine.session import _MAX_SWEEP_ENTRIES

        circuit, spec = simple_rc
        session = AnalysisSession()
        s = 2j * math.pi * np.logspace(0, 5, 4)
        for index in range(_MAX_SWEEP_ENTRIES + 5):
            session.factored_sweep(circuit, s * (1.0 + index))
        assert len(session._sweeps) == _MAX_SWEEP_ENTRIES
        # The most recent grid is still a hit.
        misses = session.misses
        session.factored_sweep(circuit, s * float(_MAX_SWEEP_ENTRIES + 4))
        assert session.misses == misses

    def test_invalidate_everything(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        session.mna_system(circuit)
        session.factored_sweep(circuit, [1.0 + 0.0j])
        assert session.invalidate() == 2
        assert session.entry_count == 0
        assert session.stats()["entries"] == 0


# --------------------------------------------------------------------------- #
# the compiled-transfer cache
# --------------------------------------------------------------------------- #


class TestCompiledTransferCache:
    def test_stats_report_compiles_and_hits(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        assert session.stats()["compiled"] == {"compiles": 0, "hits": 0,
                                               "evictions": 0}
        model = session.compiled_transfer(circuit, spec)
        for __ in range(3):
            assert session.compiled_transfer(circuit, spec) is model
        stats = session.stats()["compiled"]
        assert stats == {"compiles": 1, "hits": 3, "evictions": 0}
        # A content-identical copy shares the fingerprint and the model.
        assert session.compiled_transfer(circuit.copy("again"), spec) is model
        assert session.stats()["compiled"]["hits"] == 4

    def test_distinct_free_sets_compile_separately(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        wide = session.compiled_transfer(circuit, spec)
        narrow = session.compiled_transfer(circuit, spec,
                                           free_symbols=["R1"])
        assert narrow is not wide
        assert narrow.free_names == ("R1",)
        assert session.stats()["compiled"]["compiles"] == 2

    def test_compile_once_across_chained_workloads(self, miller_circuit):
        """Bode pass, symbolic re-obtain and compiled MC share one compile."""
        from repro.montecarlo import ParameterSpace, compiled_ensemble_sweep

        circuit, spec = miller_circuit
        circuit = circuit.copy("chained")
        for name in ("Cc", "CL"):
            circuit.replace(circuit[name].with_tolerance(0.05))
        session = AnalysisSession()
        frequencies = np.logspace(1, 7, 9)

        # Bode-style verification pass on the compiled model.
        space = ParameterSpace(circuit)
        first = compiled_ensemble_sweep(circuit, spec, frequencies, space,
                                        samples=4, seed=1, session=session)
        # Symbolic stage re-obtains the transfer (hits the transfer cache,
        # not a recompile), then Monte Carlo serves again.
        session.symbolic_transfer(circuit, spec)
        again = compiled_ensemble_sweep(circuit, spec, frequencies, space,
                                        samples=4, seed=2, session=session)
        assert again.responses.shape == first.responses.shape
        stats = session.stats()["compiled"]
        assert stats["compiles"] == 1
        assert stats["hits"] >= 1

    def test_lru_bound_evicts_oldest_free_set(self, simple_rc):
        from repro.engine.session import _MAX_COMPILED_ENTRIES

        circuit, spec = simple_rc
        session = AnalysisSession()
        session.compiled_transfer(circuit, spec)
        first_key = next(iter(session._compiled))
        # Distinct max_terms budgets key distinct entries deterministically.
        for index in range(_MAX_COMPILED_ENTRIES):
            session.compiled_transfer(
                circuit, spec, max_terms=10_000 + index)
        assert len(session._compiled) == _MAX_COMPILED_ENTRIES
        stats = session.stats()["compiled"]
        assert stats["evictions"] == 1
        assert first_key not in session._compiled
        # The most recent entry is still a hit.
        session.compiled_transfer(
            circuit, spec, max_terms=10_000 + _MAX_COMPILED_ENTRIES - 1)
        assert session.stats()["compiled"]["hits"] == 1

    def test_recency_refresh_protects_hot_models(self, simple_rc):
        from repro.engine.session import _MAX_COMPILED_ENTRIES

        circuit, spec = simple_rc
        session = AnalysisSession()
        hot = session.compiled_transfer(circuit, spec)
        for index in range(_MAX_COMPILED_ENTRIES - 1):
            session.compiled_transfer(circuit, spec,
                                      max_terms=10_000 + index)
            # Touching the hot model after every compile keeps it newest.
            assert session.compiled_transfer(circuit, spec) is hot
        # One more distinct compile evicts the oldest *cold* entry instead.
        session.compiled_transfer(circuit, spec, max_terms=99_999)
        assert session.stats()["compiled"]["evictions"] == 1
        assert session.compiled_transfer(circuit, spec) is hot

    def test_invalidate_drops_models_without_counting_evictions(
            self, simple_rc, miller_circuit):
        circuit, spec = simple_rc
        other, other_spec = miller_circuit
        session = AnalysisSession()
        session.compiled_transfer(circuit, spec)
        survivor = session.compiled_transfer(other, other_spec)
        removed = session.invalidate(circuit)
        assert removed >= 1
        stats_before = session.stats()["compiled"]
        assert stats_before["evictions"] == 0
        # The invalidated circuit recompiles; the other circuit still hits.
        session.compiled_transfer(circuit, spec)
        assert session.stats()["compiled"]["compiles"] == 3
        assert session.compiled_transfer(other, other_spec) is survivor

    def test_mutation_changes_key(self, simple_rc):
        circuit, spec = simple_rc
        session = AnalysisSession()
        original = session.compiled_transfer(circuit, spec)
        scaled = circuit.with_value_scaled("R1", 1.25)
        recompiled = session.compiled_transfer(scaled, spec)
        assert recompiled is not original
        assert session.stats()["compiled"]["compiles"] == 2


# --------------------------------------------------------------------------- #
# satellite: the cheap dimension probe
# --------------------------------------------------------------------------- #


class TestSystemDimension:
    @pytest.mark.parametrize("name,builder", LIBRARY_CIRCUITS,
                             ids=[name for name, __ in LIBRARY_CIRCUITS])
    def test_matches_full_build(self, name, builder):
        circuit, __ = builder()
        assert system_dimension(circuit) == build_mna_system(
            circuit).dimension
