"""Property-test harness for the streaming O(F)-memory estimators.

The contract under test (ISSUE 10):

* the ``store_responses=False`` accumulators are **invariant** to how the
  ensemble is executed — order-independent statistics (extremes, counts,
  histogram bins) are *exactly* invariant to shard size, solve-chunk size
  and worker count, and the full accumulator state (moment sums included)
  is **bit-identical** across chunk sizes and worker counts at a fixed
  shard size, because the fixed shard-order merge replays the sequential
  fold addition for addition;
* across *different* shard sizes the non-associative float moment sums
  regroup, so means and standard deviations agree to rounding — the
  harness pins that tolerance too, so a regression from "rounding" to
  "wrong" cannot hide;
* histogram percentiles are within one bin width of the materialized
  ``np.percentile`` envelope, on random circuits from
  :mod:`tests.strategies`;
* the streaming mode never materializes the ``(M, F)`` responses buffer —
  a 10⁵-sample run's peak allocation is asserted under a ceiling a
  fraction of the buffer it replaces (the memory-regression satellite).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from strategies import random_circuit

import repro.montecarlo.engine as ensemble_engine
from repro.analysis.montecarlo import (YieldSpec, monte_carlo_analysis,
                                       yield_analysis)
from repro.circuits.rc_ladder import build_rc_ladder
from repro.errors import FormulationError
from repro.montecarlo import (EnsembleStatistics, ParameterSpace,
                              StreamingYield, ensemble_sweep,
                              parallel_ensemble_sweep)

FREQUENCIES = np.logspace(1, 6, 24)


@pytest.fixture(scope="module")
def ladder():
    circuit, spec = build_rc_ladder(4)
    names = [element.name for element in circuit
             if type(element).__name__ in ("Resistor", "Capacitor")][:5]
    space = ParameterSpace(circuit, {name: 0.1 for name in names})
    return circuit, spec, space


def _toleranced_space(circuit, fraction=0.1, limit=4):
    """A ParameterSpace over the first few R / C elements of a circuit."""
    names = [element.name for element in circuit
             if type(element).__name__ in ("Resistor", "Capacitor")][:limit]
    return ParameterSpace(circuit, {name: fraction for name in names})


def _state_identical(left, right):
    """Full accumulator state, bit for bit (the worker-count contract)."""
    assert left.count == right.count
    np.testing.assert_array_equal(left.sum_db, right.sum_db)
    np.testing.assert_array_equal(left.sumsq_db, right.sumsq_db)
    np.testing.assert_array_equal(left.min_db, right.min_db)
    np.testing.assert_array_equal(left.max_db, right.max_db)
    assert left.weight_sum == right.weight_sum
    assert left.weight_sumsq == right.weight_sumsq
    assert left.max_weight == right.max_weight
    assert left.histogram_bins == right.histogram_bins
    if left.histogram is not None or right.histogram is not None:
        np.testing.assert_array_equal(left.histogram, right.histogram)


class TestShardSizeInvariance:
    """Different shard sizes execute different folds of the same samples."""

    def test_order_independent_state_exact(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(96, seed=3)
        runs = [ensemble_sweep(circuit, spec, FREQUENCIES, space,
                               values=values, store_responses=False,
                               shard_size=size)
                for size in (7, 16, 96)]
        reference = runs[0].statistics
        for run in runs[1:]:
            statistics = run.statistics
            assert statistics.count == reference.count
            np.testing.assert_array_equal(statistics.min_db,
                                          reference.min_db)
            np.testing.assert_array_equal(statistics.max_db,
                                          reference.max_db)
            np.testing.assert_array_equal(statistics.histogram,
                                          reference.histogram)

    def test_moments_agree_to_rounding(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(96, seed=3)
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values, store_responses=False,
                                   shard_size=96).statistics
        for size in (7, 16, 33):
            statistics = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                        values=values,
                                        store_responses=False,
                                        shard_size=size).statistics
            np.testing.assert_allclose(statistics.mean_db(),
                                       reference.mean_db(),
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(statistics.std_db(),
                                       reference.std_db(),
                                       rtol=1e-9, atol=1e-9)

    def test_matches_materialized_moments(self, ladder):
        circuit, spec, space = ladder
        stored = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                samples=64, seed=7)
        magnitudes = stored.magnitudes_db()[stored.surviving_mask()]
        streaming = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   samples=64, seed=7,
                                   store_responses=False,
                                   shard_size=16).statistics
        np.testing.assert_array_equal(streaming.min_db,
                                      magnitudes.min(axis=0))
        np.testing.assert_array_equal(streaming.max_db,
                                      magnitudes.max(axis=0))
        np.testing.assert_allclose(streaming.mean_db(),
                                   magnitudes.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(streaming.std_db(),
                                   magnitudes.std(axis=0),
                                   rtol=1e-9, atol=1e-12)


class TestChunkAndWorkerInvariance:
    """Execution shape must not leak into the accumulator bits."""

    def test_chunk_size_bitwise_invariant(self, ladder, monkeypatch):
        circuit, spec, space = ladder
        values = space.sample_values(64, seed=5)
        reference = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values, store_responses=False,
                                   shard_size=16).statistics
        # Shrink the solve chunk so every shard is split into many stacked
        # solves; the statistics fold sees whole shards either way.
        monkeypatch.setattr(ensemble_engine, "_ENSEMBLE_CHUNK_ELEMENTS", 64)
        chunked = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                 values=values, store_responses=False,
                                 shard_size=16).statistics
        _state_identical(chunked, reference)

    def test_thread_count_bitwise_invariant(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(64, seed=5)
        runs = [ensemble_sweep(circuit, spec, FREQUENCIES, space,
                               values=values, store_responses=False,
                               shard_size=16, workers=workers).statistics
                for workers in (1, 3)]
        _state_identical(runs[0], runs[1])

    def test_worker_processes_bitwise_invariant(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(64, seed=5)
        sequential = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=values, store_responses=False,
                                    shard_size=16).statistics
        for workers in (1, 3):
            parallel = parallel_ensemble_sweep(
                circuit, spec, FREQUENCIES, space, values=values,
                shard_size=16, workers=workers,
                store_responses=False).statistics
            _state_identical(parallel, sequential)


class TestHistogramPercentiles:
    """Fixed-bin envelopes are within one bin width of the exact ones."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bounded_error_on_random_circuits(self, seed):
        circuit, spec = random_circuit(seed, min_nodes=3, max_nodes=5)
        space = _toleranced_space(circuit)
        frequencies = np.logspace(1, 7, 16)
        stored = ensemble_sweep(circuit, spec, frequencies, space,
                                samples=200, seed=seed,
                                on_failure="quarantine")
        magnitudes = stored.magnitudes_db()[stored.surviving_mask()]
        # A range fitted to the data: random circuits can sit hundreds of
        # dB below the production default (essentially-zero transfers),
        # and mass outside the configured range clips to the edge bins.
        low = float(magnitudes.min()) - 1.0
        high = float(magnitudes.max()) + 1.0
        streaming = ensemble_sweep(circuit, spec, frequencies, space,
                                   samples=200, seed=seed,
                                   on_failure="quarantine",
                                   store_responses=False, shard_size=64,
                                   histogram_range=(low, high)).statistics
        width = streaming.histogram_bin_width_db
        for quantile in (5.0, 50.0, 95.0):
            exact = np.percentile(magnitudes, quantile, axis=0)
            approx = streaming.percentile_db(quantile)
            assert np.abs(approx - exact).max() <= width + 1e-9

    def test_out_of_range_mass_clips_to_edge_bins(self):
        statistics = EnsembleStatistics(frequencies=np.array([1.0]),
                                        histogram_bins=10,
                                        histogram_low_db=-10.0,
                                        histogram_high_db=10.0)
        statistics.update(np.array([[-50.0], [0.5], [50.0]]))
        histogram = statistics.histogram[0]
        assert histogram[0] == 1 and histogram[-1] == 1
        assert histogram.sum() == 3
        assert statistics.percentile_db(0.0)[0] == pytest.approx(-10.0)
        assert statistics.percentile_db(100.0)[0] == pytest.approx(10.0)

    def test_envelope_served_from_accumulator(self, ladder):
        circuit, spec, space = ladder
        streaming = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                         samples=128, seed=2,
                                         store_responses=False,
                                         shard_size=32)
        stored = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                      samples=128, seed=2)
        envelope = streaming.envelope()
        reference = stored.envelope()
        np.testing.assert_array_equal(envelope.minimum_db,
                                      reference.minimum_db)
        np.testing.assert_array_equal(envelope.maximum_db,
                                      reference.maximum_db)
        np.testing.assert_allclose(envelope.mean_db, reference.mean_db,
                                   rtol=1e-12)
        width = streaming.ensemble.statistics.histogram_bin_width_db
        assert np.abs(envelope.percentile_high_db
                      - reference.percentile_high_db).max() <= width + 1e-9

    def test_percentile_needs_histogram_and_valid_quantile(self):
        statistics = EnsembleStatistics(frequencies=np.array([1.0, 2.0]))
        with pytest.raises(FormulationError):
            statistics.percentile_db(50.0)
        with_hist = EnsembleStatistics(frequencies=np.array([1.0, 2.0]),
                                       histogram_bins=10)
        with pytest.raises(FormulationError):
            with_hist.percentile_db(101.0)


class TestWeightedAccumulators:
    """Likelihood-ratio weights thread through the same folds."""

    def test_weighted_mean_matches_numpy_average(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(64, seed=8)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.2, 2.0, 64)
        stored = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                values=values)
        magnitudes = stored.magnitudes_db()
        streaming = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   values=values, store_responses=False,
                                   shard_size=16,
                                   weights=weights).statistics
        np.testing.assert_allclose(
            streaming.mean_db(),
            np.average(magnitudes, axis=0, weights=weights), rtol=1e-12)
        assert streaming.weight_sum == pytest.approx(weights.sum())

    def test_weighted_state_invariant_across_workers(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(48, seed=8)
        weights = np.random.default_rng(1).uniform(0.2, 2.0, 48)
        sequential = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=values, store_responses=False,
                                    shard_size=16,
                                    weights=weights).statistics
        parallel = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, values=values,
            shard_size=16, workers=2, store_responses=False,
            weights=weights).statistics
        _state_identical(parallel, sequential)

    def test_unweighted_diagnostics_are_healthy(self, ladder):
        circuit, spec, space = ladder
        streaming = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                   samples=32, seed=1,
                                   store_responses=False,
                                   shard_size=16).statistics
        diagnostics = streaming.weight_diagnostics()
        assert not diagnostics.degenerate
        assert diagnostics.ess == pytest.approx(32.0)


class TestStreamingYieldParity:
    """StreamingYield reproduces the materialized yield_analysis counts."""

    def test_matches_yield_analysis(self, ladder):
        circuit, spec, space = ladder
        result = monte_carlo_analysis(circuit, spec, FREQUENCIES, space,
                                      samples=96, seed=6)
        magnitudes = result.ensemble.magnitudes_db()
        pivot = FREQUENCIES[2]
        threshold = float(np.median(magnitudes[:, 2]))
        specs = [YieldSpec(name="gain", minimum_gain_db=threshold,
                           at_frequency=float(pivot))]
        reference = yield_analysis(result, specs)
        streaming = ensemble_sweep(
            circuit, spec, FREQUENCIES, space,
            values=result.ensemble.values, store_responses=False,
            shard_size=32, yield_specs=specs).yields
        assert streaming.count == reference.total
        assert streaming.passed == reference.passed
        assert streaming.per_spec_count == reference.per_spec
        assert streaming.yield_fraction == pytest.approx(reference.fraction)
        assert streaming.failure_probability == pytest.approx(
            1.0 - reference.fraction)

    def test_yield_invariant_across_workers(self, ladder):
        circuit, spec, space = ladder
        values = space.sample_values(64, seed=6)
        specs = [YieldSpec(name="gain", minimum_gain_db=-200.0,
                           at_frequency=float(FREQUENCIES[1]))]
        sequential = ensemble_sweep(circuit, spec, FREQUENCIES, space,
                                    values=values, store_responses=False,
                                    shard_size=16, yield_specs=specs).yields
        parallel = parallel_ensemble_sweep(
            circuit, spec, FREQUENCIES, space, values=values,
            shard_size=16, workers=2, store_responses=False,
            yield_specs=specs).yields
        assert parallel.count == sequential.count
        assert parallel.passed == sequential.passed
        assert parallel.weight_sum == sequential.weight_sum
        assert parallel.fail_weight == sequential.fail_weight

    def test_merge_rejects_mismatched_specs(self):
        left = StreamingYield(spec_names=["a"])
        right = StreamingYield(spec_names=["b"])
        with pytest.raises(FormulationError):
            left.merge(right)


class TestStoredModeGuards:
    """Streaming-only inputs and accessors fail with typed errors."""

    def test_streaming_kwargs_rejected_in_stored_mode(self, ladder):
        circuit, spec, space = ladder
        for kwargs in ({"weights": np.ones(8)},
                       {"histogram_bins": 100},
                       {"yield_specs": YieldSpec(name="s")}):
            with pytest.raises(FormulationError,
                               match="store_responses=False"):
                ensemble_sweep(circuit, spec, FREQUENCIES, space,
                               samples=8, **kwargs)

    def test_response_accessors_unavailable_when_streaming(self, ladder):
        circuit, spec, space = ladder
        run = ensemble_sweep(circuit, spec, FREQUENCIES, space, samples=16,
                             store_responses=False, shard_size=8)
        assert run.responses is None
        with pytest.raises(FormulationError, match="streaming"):
            run.magnitudes_db()
        assert "streaming" in repr(run)


class TestMemoryRegression:
    """A 10⁵-sample streaming run must stay O(F), not O(M×F)."""

    def test_streaming_peak_allocation_bounded(self, ladder):
        circuit, spec, space = ladder
        samples = 100_000
        frequencies = np.logspace(1, 6, 64)
        materialized_bytes = samples * len(frequencies) * 16
        # The (M, E) value matrix is drawn outside the traced region: the
        # up-front draw is O(M·E) by design and ships to any execution
        # backend.  What this satellite guards is the *fold*: no allocation
        # inside the streaming sweep may approach the O(M×F) responses
        # buffer the mode exists to avoid.
        values = space.sample_values(samples, seed=0)
        tracemalloc.start()
        try:
            baseline, __ = tracemalloc.get_traced_memory()
            run = ensemble_sweep(circuit, spec, frequencies, space,
                                 values=values, store_responses=False,
                                 shard_size=1024)
            __, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert run.statistics.count == samples
        overhead = peak - baseline
        assert overhead < materialized_bytes / 4
        assert overhead < 24 * 1024 * 1024
