"""Tests for the numeric AC analysis, Bode utilities, comparison and poles."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis, ac_sweep
from repro.analysis.bode import (
    BodeData,
    bode_from_response,
    gain_margin_db,
    phase_margin_deg,
    unity_gain_crossover,
)
from repro.analysis.compare import compare_responses
from repro.analysis.poles import polynomial_roots, reference_poles_zeros
from repro.analysis.sensitivity import element_sensitivities
from repro.interpolation.reference import generate_reference
from repro.netlist.circuit import Circuit
from repro.xfloat import XFloat


class TestACAnalysis:
    def test_rc_pole(self, simple_rc):
        circuit, spec = simple_rc
        analysis = ACAnalysis(circuit, spec)
        pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        assert abs(analysis.value_at(2j * math.pi * pole)) == pytest.approx(
            1 / math.sqrt(2), rel=1e-9)
        assert analysis.factorization_count == 1

    def test_frequency_response_and_sweep(self, simple_rc, frequencies_decade):
        circuit, spec = simple_rc
        response = ACAnalysis(circuit, spec).frequency_response(frequencies_decade)
        assert response.shape == frequencies_decade.shape
        sweep = ac_sweep(circuit, "out", frequencies_decade)
        np.testing.assert_allclose(sweep, response)

    def test_differential_output(self):
        circuit = Circuit("diff")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "a", 1e3)
        circuit.add_resistor("R2", "a", "0", 1e3)
        value = ACAnalysis(circuit, ("in", "a")).value_at(0.0)
        assert value == pytest.approx(0.5)

    def test_bode_output(self, simple_rc):
        circuit, spec = simple_rc
        frequencies = np.logspace(3, 7, 17)
        magnitude, phase = ACAnalysis(circuit, spec).bode(frequencies)
        assert magnitude[0] == pytest.approx(0.0, abs=0.1)
        assert magnitude[-1] < -30.0
        assert phase[-1] == pytest.approx(-90.0, abs=2.0)


class TestBodeUtilities:
    def make_single_pole(self, gain=1000.0, pole_hz=1e3):
        frequencies = np.logspace(0, 8, 200)
        response = gain / (1 + 1j * frequencies / pole_hz)
        return bode_from_response(frequencies, response)

    def test_bode_data_interpolation(self):
        data = self.make_single_pole()
        magnitude, phase = data.at(1e3)
        assert magnitude == pytest.approx(20 * math.log10(1000) - 3.01, abs=0.1)
        assert phase == pytest.approx(-45.0, abs=1.0)

    def test_unity_gain_crossover_and_phase_margin(self):
        data = self.make_single_pole(gain=1000.0, pole_hz=1e3)
        crossover = unity_gain_crossover(data)
        assert crossover == pytest.approx(1e6, rel=0.05)
        margin = phase_margin_deg(data)
        assert margin == pytest.approx(90.0, abs=2.0)

    def test_no_crossover(self):
        frequencies = np.logspace(0, 6, 50)
        response = 0.5 * np.ones_like(frequencies) * (1 + 0j)
        data = bode_from_response(frequencies, response)
        assert unity_gain_crossover(data) is None
        assert phase_margin_deg(data) is None

    def test_gain_margin(self):
        # Two-pole response crosses -180° only asymptotically; use three poles.
        frequencies = np.logspace(0, 8, 400)
        pole = 1e3
        response = 100.0 / (1 + 1j * frequencies / pole) ** 3
        data = bode_from_response(frequencies, response)
        margin = gain_margin_db(data)
        assert margin is not None
        # At the -180° frequency (sqrt(3) decades above the pole) the gain is
        # 100/8 = 22 dB -> the gain margin is about -22 dB (unstable if closed).
        assert margin == pytest.approx(-20 * math.log10(100.0 / 8.0), abs=1.5)


class TestCompare:
    def test_identical_responses(self, frequencies_decade):
        response = 1.0 / (1 + 1j * frequencies_decade / 1e4)
        comparison = compare_responses(frequencies_decade, response, response)
        assert comparison.max_magnitude_error_db == pytest.approx(0.0, abs=1e-12)
        assert comparison.max_phase_error_deg == pytest.approx(0.0, abs=1e-12)
        assert comparison.matches()

    def test_known_gain_offset(self, frequencies_decade):
        reference = 1.0 / (1 + 1j * frequencies_decade / 1e4)
        candidate = reference * 2.0
        comparison = compare_responses(frequencies_decade, reference, candidate)
        assert comparison.max_magnitude_error_db == pytest.approx(6.02, abs=0.1)
        assert not comparison.matches()
        assert "dB" in comparison.summary()

    def test_shape_mismatch(self, frequencies_decade):
        with pytest.raises(ValueError):
            compare_responses(frequencies_decade, np.ones(3), np.ones(4))

    def test_zero_baseline_sample_stays_finite(self, frequencies_decade):
        # Regression: the relative error used to divide by the (tiny-floored)
        # reference alone, so a reference passing exactly through zero blew
        # the metric up to ~1/tiny.  With the symmetric max(|a|, |b|, floor)
        # denominator the worst sample-wise relative error is bounded by 1.
        reference = np.ones(len(frequencies_decade), dtype=complex)
        reference[3] = 0.0
        candidate = reference.copy()
        candidate[3] = 1e-3
        comparison = compare_responses(frequencies_decade, reference,
                                       candidate)
        assert np.isfinite(comparison.max_relative_error)
        assert comparison.max_relative_error == pytest.approx(1.0)

    def test_both_zero_samples_count_as_equal(self, frequencies_decade):
        reference = np.ones(len(frequencies_decade), dtype=complex)
        reference[5] = 0.0
        comparison = compare_responses(frequencies_decade, reference,
                                       reference.copy())
        assert comparison.max_relative_error == 0.0


class TestPoles:
    def test_polynomial_roots_simple(self):
        # (s + 10)(s + 1000) = 10000 + 1010 s + s^2
        roots = polynomial_roots([10000.0, 1010.0, 1.0])
        assert sorted(np.real(roots)) == pytest.approx([-1000.0, -10.0], rel=1e-6)

    def test_polynomial_roots_extended_range(self):
        # Coefficients straddling the double-precision range: roots at -1e3, -1e6.
        coefficients = [XFloat(1.0, -400),
                        XFloat(1.001, -403),
                        XFloat(1.0, -409)]
        roots = polynomial_roots(coefficients)
        magnitudes = sorted(abs(root) for root in roots)
        assert magnitudes[0] == pytest.approx(1e3, rel=1e-3)
        assert magnitudes[1] == pytest.approx(1e6, rel=1e-3)

    def test_zero_polynomial_rejected(self):
        with pytest.raises(Exception):
            polynomial_roots([0.0, 0.0])

    def test_leading_zero_coefficients_give_zero_roots(self):
        roots = polynomial_roots([0.0, 0.0, 1.0, 1.0])
        assert sum(1 for root in roots if root == 0) == 2

    def test_reference_poles_of_rc(self, simple_rc):
        circuit, spec = simple_rc
        reference = generate_reference(circuit, spec)
        poles, zeros = reference_poles_zeros(reference)
        assert len(poles) == 1
        assert poles[0].real == pytest.approx(-1.0 / (1e3 * 1e-9), rel=1e-6)


class TestSensitivity:
    def test_ranking_identifies_negligible_element(self):
        circuit = Circuit("rank")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("Rbig", "in", "out", 1e3)
        circuit.add_resistor("Rload", "out", "0", 1e3)
        # A tiny capacitor whose influence in the audio band is negligible.
        circuit.add_capacitor("Ctiny", "out", "0", 1e-18)
        frequencies = np.logspace(1, 5, 9)
        influences = element_sensitivities(circuit, "out", frequencies)
        names = [influence.name for influence in influences]
        assert names[0] == "Ctiny"
        tiny = influences[0]
        assert tiny.negligible(1e-6)
        essential = [i for i in influences if i.name == "Rload"][0]
        assert essential.removal_error > 0.1
