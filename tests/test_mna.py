"""Tests for the MNA builder and AC solution against hand-computed circuits."""

import math

import numpy as np
import pytest

from repro.errors import FormulationError
from repro.mna.builder import build_mna_system
from repro.mna.solve import ac_solve, operating_transfer
from repro.netlist.circuit import Circuit


class TestBasicStamps:
    def test_resistive_divider(self):
        circuit = Circuit("div")
        circuit.add_voltage_source("vin", "in", "0", 6.0)
        circuit.add_resistor("R1", "in", "out", 2e3)
        circuit.add_resistor("R2", "out", "0", 1e3)
        value = operating_transfer(circuit, 0.0, "out")
        assert value == pytest.approx(2.0)

    def test_rc_lowpass_pole(self):
        circuit = Circuit("rc")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-9)
        pole = 1.0 / (2 * math.pi * 1e3 * 1e-9)
        value = operating_transfer(circuit, 2j * math.pi * pole, "out")
        assert abs(value) == pytest.approx(1 / math.sqrt(2), rel=1e-9)

    def test_current_source_into_resistor(self):
        circuit = Circuit("ir")
        circuit.add_current_source("iin", "0", "out", 2e-3)
        circuit.add_resistor("R1", "out", "0", 1e3)
        assert operating_transfer(circuit, 0.0, "out") == pytest.approx(2.0)

    def test_inductor_impedance(self):
        circuit = Circuit("rl")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 100.0)
        circuit.add_inductor("L1", "out", "0", 1e-3)
        s = 2j * math.pi * 15.915e3   # ωL = 100 Ω
        expected = (s * 1e-3) / (100.0 + s * 1e-3)
        assert operating_transfer(circuit, s, "out") == pytest.approx(expected,
                                                                      rel=1e-6)

    def test_branch_current_of_voltage_source(self):
        circuit = Circuit("isense")
        circuit.add_voltage_source("vin", "in", "0", 10.0)
        circuit.add_resistor("R1", "in", "0", 2e3)
        system = build_mna_system(circuit)
        solution = ac_solve(system, 0.0)
        # MNA convention: the branch current flows from + to - through the
        # source, so a source driving a resistor sees a negative current.
        assert system.branch_current(solution, "vin") == pytest.approx(-5e-3)


class TestControlledSources:
    def test_vcvs_gain(self):
        circuit = Circuit("vcvs")
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_vcvs("E1", "b", "0", "a", "0", 12.0)
        circuit.add_resistor("RL", "b", "0", 1e3)
        assert operating_transfer(circuit, 0.0, "b") == pytest.approx(12.0)

    def test_vccs_transconductance(self):
        circuit = Circuit("vccs")
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_vccs("G1", "b", "0", "a", "0", 2e-3)
        circuit.add_resistor("RL", "b", "0", 1e3)
        # Current 2 mA leaves node b, so the output is -2 V.
        assert operating_transfer(circuit, 0.0, "b") == pytest.approx(-2.0)

    def test_cccs_current_mirror(self):
        circuit = Circuit("cccs")
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "0", 1e3)      # 1 mA through vin
        circuit.add_cccs("F1", "0", "b", "vin", 2.0)
        circuit.add_resistor("RL", "b", "0", 1e3)
        value = operating_transfer(circuit, 0.0, "b")
        # The control current is -1 mA (it flows out of the source's + terminal
        # into the resistor), so F injects 2 * (-1 mA) into node b.
        assert value == pytest.approx(-2.0)

    def test_ccvs(self):
        circuit = Circuit("ccvs")
        circuit.add_voltage_source("vin", "a", "0", 1.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_ccvs("H1", "b", "0", "vin", 500.0)
        circuit.add_resistor("RL", "b", "0", 1e3)
        assert operating_transfer(circuit, 0.0, "b") == pytest.approx(-0.5)

    def test_missing_control_source(self):
        circuit = Circuit("bad")
        circuit.add_cccs("F1", "a", "0", "nope", 1.0)
        circuit.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(FormulationError):
            build_mna_system(circuit)


class TestSystemQueries:
    def test_dimension_and_indices(self):
        circuit = Circuit("dims")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_inductor("L1", "out", "0", 1e-6)
        system = build_mna_system(circuit)
        # 2 node unknowns + 2 branch currents (vin, L1)
        assert system.dimension == 4
        assert system.node_index("out") == 1
        assert system.branch_index("L1") == 3
        with pytest.raises(FormulationError):
            system.node_index("0")
        with pytest.raises(FormulationError):
            system.branch_index("R1")

    def test_assemble_is_frequency_dependent(self):
        circuit = Circuit("freq")
        circuit.add_current_source("iin", "0", "a", 1.0)
        circuit.add_capacitor("C1", "a", "0", 1e-9)
        circuit.add_resistor("R1", "a", "0", 1e3)
        system = build_mna_system(circuit)
        low = system.assemble(1.0)
        high = system.assemble(1e9)
        assert abs(high.get(0, 0)) > abs(low.get(0, 0))

    def test_differential_output(self):
        circuit = Circuit("diff")
        circuit.add_voltage_source("vin", "in", "0", 2.0)
        circuit.add_resistor("R1", "in", "a", 1e3)
        circuit.add_resistor("R2", "a", "b", 1e3)
        circuit.add_resistor("R3", "b", "0", 2e3)
        value = operating_transfer(circuit, 0.0, ("a", "b"))
        assert value == pytest.approx(0.5)
