"""Tests for admittance-form circuit transformations."""

import math

import numpy as np
import pytest

from repro.analysis.ac import ACAnalysis
from repro.errors import FormulationError
from repro.netlist.circuit import Circuit
from repro.netlist.elements import Capacitor, Conductor, CurrentSource, Resistor, VCCS
from repro.netlist.transform import (
    merge_parallel_admittances,
    norton_transform_sources,
    to_admittance_form,
    transform_inductors,
)


def rlc_circuit():
    """Series RLC low-pass driven by a voltage source, output across C."""
    circuit = Circuit("rlc")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "mid", 50.0)
    circuit.add_inductor("L1", "mid", "out", 1e-6)
    circuit.add_capacitor("C1", "out", "0", 1e-9)
    return circuit


class TestInductorTransformation:
    def test_inductors_removed(self):
        transformed = transform_inductors(rlc_circuit())
        assert not transformed.elements_of_type(type(rlc_circuit()["L1"]))
        assert "L1.gy1" in transformed
        assert "L1.gy2" in transformed
        assert transformed["L1.cl"].value == pytest.approx(1e-6)

    def test_frequency_response_preserved(self):
        """The gyrator-C equivalent must reproduce the RLC response exactly."""
        original = rlc_circuit()
        transformed = transform_inductors(original)
        frequencies = np.logspace(5, 8, 31)
        original_response = ACAnalysis(original, "out").frequency_response(frequencies)
        transformed_response = ACAnalysis(transformed, "out").frequency_response(
            frequencies)
        np.testing.assert_allclose(transformed_response, original_response,
                                   rtol=1e-9)

    def test_analytic_resonance(self):
        """Check against the analytic RLC transfer function at a few points."""
        transformed = transform_inductors(rlc_circuit())
        analysis = ACAnalysis(transformed, "out")
        for frequency in (1e5, 5.0329e6, 2e7):
            s = 2j * math.pi * frequency
            expected = 1.0 / (1.0 + s * 1e-9 * 50.0 + s * s * 1e-6 * 1e-9)
            assert analysis.value_at(s) == pytest.approx(expected, rel=1e-9)

    def test_custom_gyrator_gm(self):
        transformed = transform_inductors(rlc_circuit(), gyrator_gm=2.0)
        assert transformed["L1.cl"].value == pytest.approx(4e-6)
        frequencies = np.logspace(5, 7, 7)
        original_response = ACAnalysis(rlc_circuit(), "out").frequency_response(
            frequencies)
        transformed_response = ACAnalysis(transformed, "out").frequency_response(
            frequencies)
        np.testing.assert_allclose(transformed_response, original_response,
                                   rtol=1e-9)


class TestNortonTransform:
    def test_series_rv_becomes_norton(self):
        circuit = Circuit("norton")
        circuit.add_voltage_source("vin", "in", "0", 2.0)
        circuit.add_resistor("Rs", "in", "out", 1e3)
        circuit.add_resistor("RL", "out", "0", 1e3)
        transformed = norton_transform_sources(circuit)
        assert isinstance(transformed["vin"], CurrentSource)
        assert transformed["vin"].value == pytest.approx(2e-3)
        # Output voltage must be preserved: divider gives 1.0 V.
        response = ACAnalysis(transformed, "out").value_at(0.0)
        assert response == pytest.approx(1.0)

    def test_source_without_series_resistor_untouched(self, simple_rc):
        circuit, __ = simple_rc
        circuit.add_resistor("R2", "in", "out", 2e3)  # 'in' now has 3 elements
        transformed = norton_transform_sources(circuit)
        assert not isinstance(transformed["vin"], CurrentSource)


class TestMergeParallel:
    def test_parallel_capacitors_add(self):
        circuit = Circuit("par")
        circuit.add_capacitor("C1", "a", "0", 1e-12)
        circuit.add_capacitor("C2", "a", "0", 2e-12)
        circuit.add_capacitor("C3", "0", "a", 3e-12)
        circuit.add_resistor("R1", "a", "0", 1e3)
        merged = merge_parallel_admittances(circuit)
        capacitors = merged.elements_of_type(Capacitor)
        assert len(capacitors) == 1
        assert capacitors[0].value == pytest.approx(6e-12)

    def test_parallel_conductances_add(self):
        circuit = Circuit("par")
        circuit.add_resistor("R1", "a", "0", 1e3)
        circuit.add_resistor("R2", "a", "0", 1e3)
        circuit.add_conductor("g1", "a", "0", 1e-3)
        circuit.add_capacitor("C1", "a", "0", 1e-12)
        merged = merge_parallel_admittances(circuit)
        conductors = merged.elements_of_type(Conductor)
        assert len(conductors) == 1
        assert conductors[0].value == pytest.approx(3e-3)

    def test_vccs_and_sources_not_merged(self):
        circuit = Circuit("par")
        circuit.add_vccs("gm1", "a", "0", "b", "0", 1e-3)
        circuit.add_vccs("gm2", "a", "0", "b", "0", 1e-3)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_voltage_source("vin", "b", "0", 1.0)
        merged = merge_parallel_admittances(circuit)
        assert len(merged.elements_of_type(VCCS)) == 2

    def test_merge_reduces_degree_estimate(self):
        circuit = Circuit("deg")
        circuit.add_voltage_source("vin", "in", "0", 1.0)
        circuit.add_resistor("R1", "in", "a", 1e3)
        for index in range(3):
            circuit.add_capacitor(f"C{index}", "a", "0", 1e-12)
        assert circuit.capacitor_count() == 3
        merged = merge_parallel_admittances(circuit)
        assert merged.capacitor_count() == 1


class TestToAdmittanceForm:
    def test_passthrough_for_admittance_circuit(self, simple_rc):
        circuit, __ = simple_rc
        transformed = to_admittance_form(circuit)
        assert len(transformed) == len(circuit)

    def test_rejects_vcvs(self):
        circuit = Circuit("bad")
        circuit.add_vcvs("E1", "a", "0", "b", "0", 10.0)
        circuit.add_resistor("R1", "a", "b", 1e3)
        circuit.add_resistor("R2", "b", "0", 1e3)
        with pytest.raises(FormulationError):
            to_admittance_form(circuit)

    def test_transforms_inductors_and_merges(self):
        circuit = rlc_circuit()
        circuit.add_capacitor("C2", "out", "0", 1e-9)
        transformed = to_admittance_form(circuit, merge_parallel=True)
        # L is gone, the two output capacitors are merged.
        assert "L1.cl" in transformed
        capacitors = [e for e in transformed.elements_of_type(Capacitor)
                      if set(e.nodes) == {"out", "0"}]
        assert len(capacitors) == 1
        assert capacitors[0].value == pytest.approx(2e-9)
