"""SDG error control (Eq. 3) driven by the numerical reference.

Generates the numerical reference of a two-stage Miller OTA, the complete
symbolic network function, and then applies the simplification-during-
generation stopping rule for several error budgets ε, showing how many of the
thousands of symbolic terms actually matter.

Run with::

    python examples/sdg_simplification.py
"""

import math

from repro import build_miller_ota, generate_reference
from repro.symbolic.generation import symbolic_network_function
from repro.symbolic.sdg import simplification_during_generation


def main():
    circuit, spec = build_miller_ota()
    print(f"circuit: {circuit.name} ({len(circuit)} small-signal elements)")

    reference = generate_reference(circuit, spec)
    print(reference.summary())
    print()

    transfer = symbolic_network_function(circuit, spec)
    n_terms, d_terms = transfer.term_count()
    print(f"complete symbolic network function: {n_terms} numerator terms, "
          f"{d_terms} denominator terms")
    print()

    print(f"{'epsilon':>8} | {'kept terms':>10} | {'discarded':>9} | worst coefficient error")
    for epsilon in (0.1, 0.05, 0.01, 0.001):
        result = simplification_during_generation(
            circuit, spec, reference, epsilon=epsilon,
            transfer_function=transfer)
        kept, total = result.total_terms()
        worst = max((report.achieved_error for report in result.reports
                     if math.isfinite(report.achieved_error)), default=0.0)
        print(f"{epsilon:>8g} | {kept:>10} | {100 * result.compression():>8.1f}% "
              f"| {worst:.2e}")
    print()

    # Accuracy of the simplified expression at a few frequencies (ε = 0.01).
    result = simplification_during_generation(circuit, spec, reference,
                                              epsilon=0.01,
                                              transfer_function=transfer)
    print("simplified vs complete expression (epsilon = 0.01):")
    for frequency in (1e2, 1e4, 1e6, 1e8):
        s = 2j * math.pi * frequency
        full_value = abs(transfer.evaluate(s))
        simple_value = abs(result.simplified.evaluate(s))
        error = abs(simple_value - full_value) / full_value
        print(f"  f = {frequency:>8.3g} Hz : |H| = {full_value:>10.4g} "
              f"(full) vs {simple_value:>10.4g} (simplified), error {error:.2e}")


if __name__ == "__main__":
    main()
