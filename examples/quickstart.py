"""Quickstart: generate a numerical reference for an RC ladder.

The example builds a 10-section RC ladder, generates the numerical reference
(network-function coefficients with only ``s`` symbolic) using the adaptive
scaling interpolation, verifies the coefficients against the ladder's exact
polynomial recursion and prints a small Bode table.

Run with::

    python examples/quickstart.py
"""

import math

import numpy as np

from repro import build_rc_ladder, generate_reference
from repro.circuits.rc_ladder import rc_ladder_denominator_coefficients


def main():
    stages = 10
    resistances = [1e3 * (1 + 0.5 * i) for i in range(stages)]
    capacitances = [1e-9 / (1 + 0.7 * i) for i in range(stages)]
    circuit, spec = build_rc_ladder(stages, resistances, capacitances)

    print(f"circuit: {circuit.name} ({len(circuit)} elements, "
          f"{len(circuit.nodes)} nodes)")
    print(f"transfer function: {spec.describe()}")
    print()

    reference = generate_reference(circuit, spec)
    print(reference.summary())
    print()

    # The ladder's denominator has an exact polynomial recursion — compare.
    expected = rc_ladder_denominator_coefficients(resistances, capacitances)
    denominator = reference.coefficients("denominator")
    scale = float(denominator[0])
    print("denominator coefficients (normalized to d0 = 1):")
    print(f"{'power':>6} | {'interpolated':>14} | {'exact recursion':>15} | rel. error")
    for power, exact in enumerate(expected):
        interpolated = float(denominator[power]) / scale
        relative = abs(interpolated - exact) / abs(exact)
        print(f"{power:>6} | {interpolated:>14.6e} | {exact:>15.6e} | {relative:.2e}")
    print()

    frequencies = np.logspace(2, 7, 11)
    magnitude, phase = reference.bode(frequencies)
    print("Bode table of the reference transfer function:")
    print(f"{'f [Hz]':>10} | {'mag [dB]':>9} | {'phase [deg]':>11}")
    for f, m, p in zip(frequencies, magnitude, phase):
        print(f"{f:>10.3g} | {m:>9.2f} | {p:>11.1f}")


if __name__ == "__main__":
    main()
