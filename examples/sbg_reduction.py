"""SBG circuit reduction driven by the numerical reference.

Uses the numerical reference of the two-stage Miller OTA as the error-control
baseline for simplification *before* generation: elements whose removal keeps
the frequency response within ε of the reference are deleted from the circuit,
and the symbolic expression of the reduced circuit is compared (in term count
and in accuracy) with that of the full circuit.

Run with::

    python examples/sbg_reduction.py
"""

import math

import numpy as np

from repro import build_miller_ota, generate_reference
from repro.analysis.ac import ACAnalysis
from repro.symbolic.generation import symbolic_network_function
from repro.symbolic.sbg import simplification_before_generation


def main():
    circuit, spec = build_miller_ota()
    reference = generate_reference(circuit, spec)
    print(reference.summary())
    print()

    epsilon = 0.05
    result = simplification_before_generation(circuit, spec, reference,
                                              epsilon=epsilon)
    print(result.summary())
    print()
    print("removed elements (least influential first):")
    for removal in result.removals:
        print(f"  {removal.element:<12} individual error {removal.individual_error:.2e}, "
              f"accumulated {removal.accumulated_error:.2e}")
    print()

    full = symbolic_network_function(circuit, spec)
    reduced = symbolic_network_function(result.reduced, spec)
    print(f"symbolic terms, full circuit    : numerator {full.term_count()[0]}, "
          f"denominator {full.term_count()[1]}")
    print(f"symbolic terms, reduced circuit : numerator {reduced.term_count()[0]}, "
          f"denominator {reduced.term_count()[1]}")
    print()

    frequencies = np.logspace(1, 9, 17)
    full_response = ACAnalysis(circuit, spec).frequency_response(frequencies)
    reduced_response = ACAnalysis(result.reduced, spec).frequency_response(frequencies)
    worst = float(np.max(np.abs(reduced_response - full_response)
                         / np.abs(full_response)))
    print(f"worst-case response deviation of the reduced circuit: {worst:.2e} "
          f"(budget {epsilon})")


if __name__ == "__main__":
    main()
