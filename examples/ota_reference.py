"""Table 1 reproduction: why plain interpolation fails on integrated circuits.

The positive-feedback OTA of the paper's Fig. 1 is interpolated twice:

* on the unit circle without any scaling (Table 1a) — only the lowest-order
  coefficients survive the round-off error level, and the corrupted ones show
  imaginary parts as large as their real parts;
* with a frequency scale factor of 1e9 (Table 1b) — the valid region covers
  (nearly) the whole polynomial.

Finally the adaptive algorithm is run, which finds all coefficients without
the user choosing any scale factor.

Run with::

    python examples/ota_reference.py
"""

from repro import build_positive_feedback_ota, generate_reference
from repro.reporting.experiments import run_table1
from repro.reporting.tables import format_coefficient_table, format_table1


def main():
    result = run_table1(frequency_scale=1e9)
    print(format_table1(result))
    print()
    print(f"valid denominator coefficients, unscaled : "
          f"{result.unscaled_valid_count()} of {result.degree_bound + 1}")
    print(f"valid denominator coefficients, f = 1e9  : "
          f"{result.scaled_valid_count()} of {result.degree_bound + 1}")
    print()

    circuit, spec = build_positive_feedback_ota()
    reference = generate_reference(circuit, spec)
    print("adaptive scaling result:")
    print(reference.summary())
    print()
    print(format_coefficient_table(reference.coefficients("denominator"),
                                   kind="denominator",
                                   status=reference.denominator.status))


if __name__ == "__main__":
    main()
