"""Tables 2-3 and Fig. 2 reproduction: µA741 adaptive reference + Bode overlay.

Runs the adaptive scaling algorithm on the µA741 voltage-gain denominator
(printing the per-interpolation valid regions and scale factors, the analogue
of Tables 2 and 3), then overlays the Bode plot computed from the interpolated
coefficients with a direct numeric AC simulation (Fig. 2) and reports the
worst-case deviation.

Run with::

    python examples/ua741_bode.py
"""

from repro.analysis.bode import bode_from_response, phase_margin_deg, unity_gain_crossover
from repro.reporting.experiments import run_fig2, run_table2_table3
from repro.reporting.tables import (
    format_adaptive_iterations,
    format_bode_comparison,
    format_coefficient_table,
)


def main():
    print("=== Tables 2-3: adaptive scaling on the uA741 denominator ===")
    table23 = run_table2_table3()
    print(format_adaptive_iterations(table23.adaptive))
    print()
    print(format_coefficient_table(table23.adaptive.coefficients,
                                   kind="denominator",
                                   status=table23.adaptive.status,
                                   max_rows=15))
    print()

    print("=== Fig. 2: interpolated coefficients vs electrical simulator ===")
    fig2 = run_fig2(points_per_decade=6)
    print(format_bode_comparison(fig2, rows=14))
    print()

    data = bode_from_response(fig2.frequencies, fig2.interpolated_response)
    crossover = unity_gain_crossover(data)
    margin = phase_margin_deg(data)
    if crossover is not None:
        print(f"unity-gain frequency (from the reference): {crossover:.3g} Hz")
    if margin is not None:
        print(f"phase margin (from the reference)        : {margin:.1f} deg")


if __name__ == "__main__":
    main()
