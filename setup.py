"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` also works on minimal offline environments where the
``wheel`` package (needed by the PEP 660 editable path of older setuptools)
is not available — pip then falls back to the legacy ``setup.py develop``
route.
"""

from setuptools import setup

setup()
