"""Dense complex LU with partial pivoting, scalar and batched.

Used for cross-checking the sparse factorization and as the default for small
systems where sparse bookkeeping is not worth it.  Implemented directly on
numpy arrays (no ``scipy`` dependency) with the same result interface as the
sparse factorization: ``solve`` and exponent-tracked determinants.

:func:`batched_dense_lu` factors a whole stack of same-structure matrices —
one per frequency-sweep point — in a single pass whose elimination loop is
vectorized over the batch axis.  It applies exactly the same algorithm as
:func:`dense_lu` (partial pivoting by column magnitude, identical operation
order), so a batched sweep reproduces the per-point results to rounding.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

from ..errors import LinAlgError, SingularMatrixError
from ..xfloat import XFloat

__all__ = ["dense_lu", "DenseLU", "batched_dense_lu", "BatchedDenseLU",
           "batched_solve", "sweep_chunk_size"]

#: Complex entries per assembled dense sweep chunk (~64 MB): sweeps longer
#: than this per-matrix budget are factored chunk by chunk so memory stays
#: bounded regardless of grid size.
_SWEEP_CHUNK_ELEMENTS = 4_000_000


def sweep_chunk_size(dimension) -> int:
    """Number of ``dimension``-sized matrices per batched sweep chunk."""
    dimension = max(1, int(dimension))
    return max(1, _SWEEP_CHUNK_ELEMENTS // (dimension * dimension))

#: Powers of ten built with Python's scalar pow, which numpy's vectorized
#: ``10.0**x`` does not always match to the last ulp.  The batched determinant
#: renormalization indexes this table so that batched and per-point sweeps
#: stay bit-for-bit identical.  Single-step shifts cannot leave ±308 (one
#: pivot times a normalized mantissa is a finite double).
_POW10_OFFSET = 330
_POW10 = np.array([10.0**e if e <= 308 else math.inf
                   for e in range(-_POW10_OFFSET, _POW10_OFFSET + 1)])


class DenseLU:
    """Result of :func:`dense_lu`: packed LU factors plus the row permutation."""

    def __init__(self, lu, permutation, n_swaps):
        self.lu = lu
        self.permutation = permutation
        self.n_swaps = n_swaps
        self.n = lu.shape[0]

    def determinant_mantissa_exponent(self) -> Tuple[complex, int]:
        """``det(A)`` as ``(complex mantissa, decimal exponent)``."""
        mantissa = complex(-1.0 if self.n_swaps % 2 else 1.0)
        exponent = 0
        for k in range(self.n):
            mantissa *= self.lu[k, k]
            if mantissa == 0:
                return 0.0 + 0.0j, 0
            magnitude = abs(mantissa)
            shift = int(math.floor(math.log10(magnitude)))
            if shift:
                mantissa /= 10.0**shift
                exponent += shift
        return mantissa, exponent

    def determinant(self) -> complex:
        """``det(A)`` as a plain complex (may overflow / underflow)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return 0.0 + 0.0j
        if exponent > 300:
            return mantissa * cmath.inf
        if exponent < -300:
            return 0.0 + 0.0j
        return mantissa * 10.0**exponent

    def determinant_xfloat(self) -> Tuple[XFloat, float]:
        """``|det(A)|`` as :class:`XFloat` plus the phase in radians."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return XFloat.zero(), 0.0
        return XFloat(abs(mantissa), exponent), cmath.phase(mantissa)

    def log10_determinant_magnitude(self) -> float:
        """``log10 |det(A)|`` (``-inf`` when singular)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return -math.inf
        return math.log10(abs(mantissa)) + exponent

    def solve(self, rhs):
        """Solve ``A x = b``."""
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.shape[0] != self.n:
            raise LinAlgError(f"rhs has {rhs.shape[0]} entries, expected {self.n}")
        work = rhs[self.permutation].astype(complex)
        n = self.n
        # Forward substitution (unit lower triangle).
        for i in range(n):
            work[i] -= np.dot(self.lu[i, :i], work[:i])
        # Back substitution.
        for i in range(n - 1, -1, -1):
            work[i] -= np.dot(self.lu[i, i + 1:], work[i + 1:])
            pivot = self.lu[i, i]
            if pivot == 0:
                raise SingularMatrixError("zero pivot in back substitution",
                                          pivot_index=i, dimension=self.n)
            work[i] /= pivot
        return work

    def solve_many(self, rhs_matrix):
        """Solve ``A X = B`` column by column."""
        rhs_matrix = np.asarray(rhs_matrix, dtype=complex)
        if rhs_matrix.ndim == 1:
            return self.solve(rhs_matrix)
        columns = [self.solve(rhs_matrix[:, j]) for j in range(rhs_matrix.shape[1])]
        return np.column_stack(columns)


def dense_lu(matrix):
    """Factor a dense (or sparse, converted) complex matrix with partial pivoting.

    Parameters
    ----------
    matrix:
        A square 2-D numpy array or an object with ``to_dense()``.

    Raises
    ------
    SingularMatrixError
        When a zero pivot column is encountered.
    """
    if hasattr(matrix, "to_dense"):
        array = matrix.to_dense()
    else:
        array = np.array(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise LinAlgError("dense_lu expects a square matrix")
    lu = array.astype(complex).copy()
    n = lu.shape[0]
    permutation = np.arange(n)
    n_swaps = 0
    for k in range(n):
        pivot_index = int(np.argmax(np.abs(lu[k:, k]))) + k
        if lu[pivot_index, k] == 0:
            raise SingularMatrixError(f"matrix is singular at column {k}",
                                      pivot_index=k, dimension=n)
        if pivot_index != k:
            lu[[k, pivot_index], :] = lu[[pivot_index, k], :]
            permutation[[k, pivot_index]] = permutation[[pivot_index, k]]
            n_swaps += 1
        multipliers = lu[k + 1:, k] / lu[k, k]
        lu[k + 1:, k] = multipliers
        lu[k + 1:, k + 1:] -= np.outer(multipliers, lu[k, k + 1:])
    return DenseLU(lu, permutation, n_swaps)


class BatchedDenseLU:
    """Result of :func:`batched_dense_lu`: stacked LU factors for ``B`` matrices.

    Attributes
    ----------
    lu:
        ``(B, n, n)`` packed LU factors (unit lower triangle + upper triangle).
    permutations:
        ``(B, n)`` row permutation per matrix.
    swap_parity:
        ``(B,)`` number of row swaps per matrix (only its parity matters).
    singular:
        ``(B,)`` boolean mask of matrices where a zero pivot column appeared;
        their factors, determinants and solutions are meaningless.  Unlike
        :func:`dense_lu` the batched routine does not raise — callers decide
        whether one singular sweep point should abort the whole sweep.
    """

    def __init__(self, lu, permutations, swap_parity, singular):
        self.lu = lu
        self.permutations = permutations
        self.swap_parity = swap_parity
        self.singular = singular
        self.batch = lu.shape[0]
        self.n = lu.shape[1]

    def member(self, index) -> "DenseLU":
        """The ``index``-th matrix's factors as a scalar :class:`DenseLU` view.

        The factors produced by the batched elimination are bit-for-bit the
        ones :func:`dense_lu` computes, so driving the scalar determinant /
        solve code through this view reproduces the per-point results exactly
        — numpy's vectorized ufuncs round complex multiplies differently from
        the scalar operations, which is why the batched
        :meth:`determinants_mantissa_exponent` / :meth:`solve` agree with the
        per-point path only to rounding, not to the bit.
        """
        return DenseLU(self.lu[index], self.permutations[index],
                       int(self.swap_parity[index]))

    def determinants_mantissa_exponent(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-matrix ``det(A)`` as ``(mantissas, exponents)`` arrays.

        Mantissas are complex with magnitude normalized into ``[1, 10)`` (or
        exactly 0 for singular matrices); exponents are decimal.  The pivots
        are multiplied in the same order, with the same per-step
        renormalization, as :meth:`DenseLU.determinant_mantissa_exponent`.
        """
        mantissa = np.where(self.swap_parity % 2 == 1, -1.0, 1.0).astype(complex)
        exponent = np.zeros(self.batch, dtype=np.int64)
        dead = self.singular.copy()
        for k in range(self.n):
            mantissa = mantissa * self.lu[:, k, k]
            dead |= mantissa == 0
            magnitude = np.abs(np.where(dead, 1.0, mantissa))
            shift = np.floor(np.log10(magnitude)).astype(np.int64)
            mantissa = np.where(shift != 0,
                                mantissa / _POW10[shift + _POW10_OFFSET],
                                mantissa)
            exponent += shift
        mantissa = np.where(dead, 0.0 + 0.0j, mantissa)
        exponent = np.where(dead, 0, exponent)
        return mantissa, exponent

    def solve(self, rhs):
        """Solve ``A_b x_b = b_b`` for every matrix of the stack.

        Parameters
        ----------
        rhs:
            Either one shared right-hand side of length ``n`` (broadcast over
            the batch) or a ``(B, n)`` stack of per-matrix right-hand sides.

        Returns
        -------
        numpy.ndarray
            ``(B, n)`` complex solutions.  Rows of singular matrices are zero.
        """
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.ndim == 1:
            if rhs.shape[0] != self.n:
                raise LinAlgError(
                    f"rhs has {rhs.shape[0]} entries, expected {self.n}"
                )
            rhs = np.broadcast_to(rhs, (self.batch, self.n))
        elif rhs.shape != (self.batch, self.n):
            raise LinAlgError(
                f"rhs stack has shape {rhs.shape}, expected "
                f"({self.batch}, {self.n})"
            )
        work = np.take_along_axis(rhs, self.permutations, axis=1)
        # Forward substitution (unit lower triangle), vectorized over the batch.
        for i in range(1, self.n):
            work[:, i] -= np.einsum("bj,bj->b", self.lu[:, i, :i], work[:, :i])
        # Back substitution.
        for i in range(self.n - 1, -1, -1):
            if i < self.n - 1:
                work[:, i] -= np.einsum("bj,bj->b", self.lu[:, i, i + 1:],
                                        work[:, i + 1:])
            pivots = self.lu[:, i, i]
            work[:, i] /= np.where(pivots == 0, 1.0, pivots)
        if self.singular.any():
            work[self.singular] = 0.0
        return work

    def solve_matrix(self, rhs_matrix):
        """Solve ``A_b X_b = B`` for a whole right-hand-side *matrix* at once.

        This is the multi-column counterpart of :meth:`solve`, vectorized over
        both the batch and the columns — the screening engine uses it to push
        every element's incidence vector through the cached factors in one
        pass.

        Parameters
        ----------
        rhs_matrix:
            Either one shared ``(n, m)`` right-hand-side matrix (broadcast
            over the batch) or a ``(B, n, m)`` stack.

        Returns
        -------
        numpy.ndarray
            ``(B, n, m)`` complex solutions.  Slices of singular matrices are
            zero, mirroring :meth:`solve`.
        """
        rhs_matrix = np.asarray(rhs_matrix, dtype=complex)
        if rhs_matrix.ndim == 2:
            if rhs_matrix.shape[0] != self.n:
                raise LinAlgError(
                    f"rhs matrix has {rhs_matrix.shape[0]} rows, "
                    f"expected {self.n}"
                )
            rhs_matrix = np.broadcast_to(
                rhs_matrix, (self.batch,) + rhs_matrix.shape)
        elif (rhs_matrix.ndim != 3
              or rhs_matrix.shape[:2] != (self.batch, self.n)):
            raise LinAlgError(
                f"rhs stack has shape {rhs_matrix.shape}, expected "
                f"({self.batch}, {self.n}, m)"
            )
        work = np.take_along_axis(rhs_matrix, self.permutations[:, :, None],
                                  axis=1)
        # Forward substitution (unit lower triangle), vectorized over batch
        # and columns.
        for i in range(1, self.n):
            work[:, i, :] -= np.einsum("bj,bjm->bm", self.lu[:, i, :i],
                                       work[:, :i, :])
        # Back substitution.
        for i in range(self.n - 1, -1, -1):
            if i < self.n - 1:
                work[:, i, :] -= np.einsum("bj,bjm->bm", self.lu[:, i, i + 1:],
                                           work[:, i + 1:, :])
            pivots = self.lu[:, i, i]
            work[:, i, :] /= np.where(pivots == 0, 1.0, pivots)[:, None]
        if self.singular.any():
            work[self.singular] = 0.0
        return work


def batched_solve(stack, rhs) -> np.ndarray:
    """Solve ``A_b x_b = b_b`` for a ``(B, n, n)`` stack via LAPACK (``zgesv``).

    This is the high-throughput solver of the Monte Carlo ensemble engine:
    several times faster than :func:`batched_dense_lu` + ``solve`` at typical
    circuit sizes, at the price of not exposing factors, determinants or
    member views.  LAPACK factors every matrix of the stack independently,
    so the result for a given matrix is **bit-for-bit independent of the
    batch it is solved in** — solving one matrix alone, or inside a stack of
    thousands, returns identical bits (asserted by the ensemble test suite).
    Use it when only solutions are needed; sweeps that extract determinants
    (the interpolation sampler) or bit-parity member views stay on
    :func:`batched_dense_lu`.

    Parameters
    ----------
    stack:
        ``(B, n, n)`` complex matrices.
    rhs:
        One shared right-hand side of length ``n`` (broadcast over the
        batch) or a ``(B, n)`` stack.

    Returns
    -------
    numpy.ndarray
        ``(B, n)`` complex solutions.

    Raises
    ------
    SingularMatrixError
        When any matrix of the stack is exactly singular.  The exception's
        ``batch_index`` attribute carries the index of the first offender
        (``None`` when LAPACK flagged the stack but no exactly-zero pivot
        was found), so callers can name the failing member without
        re-factoring the stack.
    """
    stack = np.asarray(stack, dtype=complex)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise LinAlgError("batched_solve expects a (B, n, n) stack")
    batch, n = stack.shape[0], stack.shape[1]
    rhs = np.asarray(rhs, dtype=complex)
    if rhs.ndim == 1:
        if rhs.shape[0] != n:
            raise LinAlgError(f"rhs has {rhs.shape[0]} entries, expected {n}")
        columns = np.broadcast_to(rhs[None, :, None], (batch, n, 1))
    elif rhs.shape == (batch, n):
        columns = rhs[:, :, None]
    else:
        raise LinAlgError(
            f"rhs stack has shape {rhs.shape}, expected ({batch}, {n})")
    try:
        return np.linalg.solve(stack, columns)[:, :, 0]
    except np.linalg.LinAlgError as error:
        # Locate the offending matrix for a precise diagnostic (the gufunc
        # reports only that *some* member is singular).
        factorization = batched_dense_lu(stack)
        if factorization.singular.any():
            index = int(np.argmax(factorization.singular))
            raise SingularMatrixError(
                f"matrix {index} of the batch is singular",
                batch_index=index, dimension=n) from error
        raise SingularMatrixError(
            "a matrix of the batch is numerically singular",
            dimension=n) from error


def batched_dense_lu(stack, overwrite=False) -> BatchedDenseLU:
    """Factor a ``(B, n, n)`` stack of complex matrices in one vectorized pass.

    Each matrix is factored with partial pivoting exactly as :func:`dense_lu`
    does — the pivot choice (largest magnitude in the pivot column, ties to
    the first row) and the elimination arithmetic are identical — but the
    elimination loop runs once over ``n`` steps with every operation applied
    to all ``B`` matrices at once, instead of ``B`` separate Python loops.

    Singular matrices are flagged in :attr:`BatchedDenseLU.singular` rather
    than raising, so one degenerate sweep point cannot abort a whole batch.

    ``overwrite=True`` factors in place, destroying ``stack`` — the sweep
    paths pass freshly assembled throwaway stacks, sparing a full-chunk copy.
    """
    if overwrite:
        stack = np.asarray(stack, dtype=complex)
    else:
        stack = np.array(stack, dtype=complex)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise LinAlgError("batched_dense_lu expects a (B, n, n) stack")
    batch, n = stack.shape[0], stack.shape[1]
    lu = stack
    permutations = np.tile(np.arange(n), (batch, 1))
    swap_parity = np.zeros(batch, dtype=np.int64)
    singular = np.zeros(batch, dtype=bool)
    batch_index = np.arange(batch)
    for k in range(n):
        pivot_index = np.argmax(np.abs(lu[:, k:, k]), axis=1) + k
        singular |= lu[batch_index, pivot_index, k] == 0
        needs_swap = pivot_index != k
        if needs_swap.any():
            swap_batch = batch_index[needs_swap]
            swap_pivot = pivot_index[needs_swap]
            rows_k = lu[swap_batch, k, :].copy()
            lu[swap_batch, k, :] = lu[swap_batch, swap_pivot, :]
            lu[swap_batch, swap_pivot, :] = rows_k
            perm_k = permutations[swap_batch, k].copy()
            permutations[swap_batch, k] = permutations[swap_batch, swap_pivot]
            permutations[swap_batch, swap_pivot] = perm_k
            swap_parity += needs_swap
        pivots = lu[:, k, k]
        safe_pivots = np.where(pivots == 0, 1.0, pivots)
        multipliers = lu[:, k + 1:, k] / safe_pivots[:, None]
        lu[:, k + 1:, k] = multipliers
        lu[:, k + 1:, k + 1:] -= multipliers[:, :, None] * lu[:, k, None, k + 1:]
    return BatchedDenseLU(lu, permutations, swap_parity, singular)
