"""Dense complex LU with partial pivoting.

Used for cross-checking the sparse factorization and as the default for small
systems where sparse bookkeeping is not worth it.  Implemented directly on
numpy arrays (no ``scipy`` dependency) with the same result interface as the
sparse factorization: ``solve`` and exponent-tracked determinants.
"""

from __future__ import annotations

import cmath
import math
from typing import Tuple

import numpy as np

from ..errors import LinAlgError, SingularMatrixError
from ..xfloat import XFloat

__all__ = ["dense_lu", "DenseLU"]


class DenseLU:
    """Result of :func:`dense_lu`: packed LU factors plus the row permutation."""

    def __init__(self, lu, permutation, n_swaps):
        self.lu = lu
        self.permutation = permutation
        self.n_swaps = n_swaps
        self.n = lu.shape[0]

    def determinant_mantissa_exponent(self) -> Tuple[complex, int]:
        """``det(A)`` as ``(complex mantissa, decimal exponent)``."""
        mantissa = complex(-1.0 if self.n_swaps % 2 else 1.0)
        exponent = 0
        for k in range(self.n):
            mantissa *= self.lu[k, k]
            if mantissa == 0:
                return 0.0 + 0.0j, 0
            magnitude = abs(mantissa)
            shift = int(math.floor(math.log10(magnitude)))
            if shift:
                mantissa /= 10.0**shift
                exponent += shift
        return mantissa, exponent

    def determinant(self) -> complex:
        """``det(A)`` as a plain complex (may overflow / underflow)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return 0.0 + 0.0j
        if exponent > 300:
            return mantissa * cmath.inf
        if exponent < -300:
            return 0.0 + 0.0j
        return mantissa * 10.0**exponent

    def determinant_xfloat(self) -> Tuple[XFloat, float]:
        """``|det(A)|`` as :class:`XFloat` plus the phase in radians."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return XFloat.zero(), 0.0
        return XFloat(abs(mantissa), exponent), cmath.phase(mantissa)

    def log10_determinant_magnitude(self) -> float:
        """``log10 |det(A)|`` (``-inf`` when singular)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return -math.inf
        return math.log10(abs(mantissa)) + exponent

    def solve(self, rhs):
        """Solve ``A x = b``."""
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.shape[0] != self.n:
            raise LinAlgError(f"rhs has {rhs.shape[0]} entries, expected {self.n}")
        work = rhs[self.permutation].astype(complex)
        n = self.n
        # Forward substitution (unit lower triangle).
        for i in range(n):
            work[i] -= np.dot(self.lu[i, :i], work[:i])
        # Back substitution.
        for i in range(n - 1, -1, -1):
            work[i] -= np.dot(self.lu[i, i + 1:], work[i + 1:])
            pivot = self.lu[i, i]
            if pivot == 0:
                raise SingularMatrixError("zero pivot in back substitution")
            work[i] /= pivot
        return work

    def solve_many(self, rhs_matrix):
        """Solve ``A X = B`` column by column."""
        rhs_matrix = np.asarray(rhs_matrix, dtype=complex)
        if rhs_matrix.ndim == 1:
            return self.solve(rhs_matrix)
        columns = [self.solve(rhs_matrix[:, j]) for j in range(rhs_matrix.shape[1])]
        return np.column_stack(columns)


def dense_lu(matrix):
    """Factor a dense (or sparse, converted) complex matrix with partial pivoting.

    Parameters
    ----------
    matrix:
        A square 2-D numpy array or an object with ``to_dense()``.

    Raises
    ------
    SingularMatrixError
        When a zero pivot column is encountered.
    """
    if hasattr(matrix, "to_dense"):
        array = matrix.to_dense()
    else:
        array = np.array(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise LinAlgError("dense_lu expects a square matrix")
    lu = array.astype(complex).copy()
    n = lu.shape[0]
    permutation = np.arange(n)
    n_swaps = 0
    for k in range(n):
        pivot_index = int(np.argmax(np.abs(lu[k:, k]))) + k
        if lu[pivot_index, k] == 0:
            raise SingularMatrixError(f"matrix is singular at column {k}")
        if pivot_index != k:
            lu[[k, pivot_index], :] = lu[[pivot_index, k], :]
            permutation[[k, pivot_index]] = permutation[[pivot_index, k]]
            n_swaps += 1
        multipliers = lu[k + 1:, k] / lu[k, k]
        lu[k + 1:, k] = multipliers
        lu[k + 1:, k + 1:] -= np.outer(multipliers, lu[k, k + 1:])
    return DenseLU(lu, permutation, n_swaps)
