"""Sparse LU factorization with Markowitz threshold pivoting.

The factorization computes ``P A Q = L U`` where ``P`` and ``Q`` are row and
column permutations chosen at each elimination step by the Markowitz
criterion: among numerically acceptable pivots (magnitude at least
``threshold`` times the largest magnitude in the candidate's column), pick the
entry minimizing ``(r_i - 1)(c_j - 1)`` — the classical fill-in heuristic used
by sparse circuit simulators.

Two results matter downstream:

* :meth:`LUFactorization.solve` — solve ``A x = b`` (Eq. 7 of the paper) to
  obtain the network function value at one interpolation point,
* :meth:`LUFactorization.determinant` — ``det(A)`` as the product of pivots
  (Eq. 9), tracked as a complex mantissa plus a decimal exponent so that very
  large or very small determinants (routine for scaled admittance matrices)
  never overflow IEEE doubles.
"""

from __future__ import annotations

import cmath
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import LinAlgError, SingularMatrixError
from ..xfloat import XFloat
from .sparse import SparseMatrix

__all__ = ["sparse_lu", "sparse_lu_refactor", "sparse_lu_reusing",
           "LUFactorization"]


def _permutation_sign(perm: Sequence[int]) -> int:
    """Sign of a permutation given as the image list ``perm[k] = original index``."""
    seen = [False] * len(perm)
    sign = 1
    for start in range(len(perm)):
        if seen[start]:
            continue
        length = 0
        node = start
        while not seen[node]:
            seen[node] = True
            node = perm[node]
            length += 1
        if length % 2 == 0:
            sign = -sign
    return sign


class LUFactorization:
    """Result of :func:`sparse_lu`.

    The factorization stores, per elimination step ``k``:

    * ``pivot_rows[k]`` / ``pivot_cols[k]`` — the original row / column chosen,
    * ``pivots[k]`` — the pivot value,
    * ``eliminations[k]`` — list of ``(row, multiplier)`` pairs applied to the
      remaining rows,
    * ``upper_rows[k]`` — the pivot row after elimination (``{col: value}``).
    """

    def __init__(self, n, pivot_rows, pivot_cols, pivots, eliminations,
                 upper_rows, fill_in):
        self.n = n
        self.pivot_rows = pivot_rows
        self.pivot_cols = pivot_cols
        self.pivots = pivots
        self.eliminations = eliminations
        self.upper_rows = upper_rows
        self.fill_in = fill_in

    # -- determinant ---------------------------------------------------------

    def determinant_mantissa_exponent(self) -> Tuple[complex, int]:
        """Return ``det(A)`` as ``(mantissa, exponent)`` with ``mantissa * 10**exponent``.

        The mantissa is complex with magnitude normalized into ``[1, 10)``;
        a zero determinant returns ``(0j, 0)``.
        """
        mantissa = complex(1.0)
        exponent = 0
        for pivot in self.pivots:
            mantissa *= pivot
            if mantissa == 0:
                return 0.0 + 0.0j, 0
            magnitude = abs(mantissa)
            shift = int(math.floor(math.log10(magnitude)))
            if shift:
                mantissa /= 10.0**shift
                exponent += shift
        sign = (_permutation_sign(self.pivot_rows)
                * _permutation_sign(self.pivot_cols))
        mantissa *= sign
        return mantissa, exponent

    def determinant(self) -> complex:
        """``det(A)`` as a plain complex number (may overflow/underflow)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return 0.0 + 0.0j
        if exponent > 300:
            return mantissa * cmath.inf
        if exponent < -300:
            return 0.0 + 0.0j
        return mantissa * 10.0**exponent

    def determinant_xfloat(self) -> Tuple[XFloat, float]:
        """``|det(A)|`` as an :class:`~repro.xfloat.XFloat` plus the phase in radians."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return XFloat.zero(), 0.0
        return XFloat(abs(mantissa), exponent), cmath.phase(mantissa)

    def log10_determinant_magnitude(self) -> float:
        """``log10 |det(A)|`` (``-inf`` for a singular matrix)."""
        mantissa, exponent = self.determinant_mantissa_exponent()
        if mantissa == 0:
            return -math.inf
        return math.log10(abs(mantissa)) + exponent

    # -- solve -----------------------------------------------------------------

    def solve(self, rhs):
        """Solve ``A x = b`` for a single right-hand side.

        Parameters
        ----------
        rhs:
            Sequence of length ``n`` (complex or real).

        Returns
        -------
        numpy.ndarray
            Complex solution vector of length ``n``.
        """
        rhs = np.asarray(rhs, dtype=complex)
        if rhs.shape[0] != self.n:
            raise LinAlgError(
                f"rhs has {rhs.shape[0]} entries, expected {self.n}"
            )
        work = rhs.copy()
        # Forward elimination replay: the same row operations applied to A are
        # applied to b, in elimination order.
        for step in range(self.n):
            pivot_value = work[self.pivot_rows[step]]
            if pivot_value != 0:
                for row, multiplier in self.eliminations[step]:
                    work[row] -= multiplier * pivot_value
        # Back substitution over the stored upper rows.
        solution = np.zeros(self.n, dtype=complex)
        for step in range(self.n - 1, -1, -1):
            row_index = self.pivot_rows[step]
            col_index = self.pivot_cols[step]
            accumulator = work[row_index]
            for col, value in self.upper_rows[step].items():
                if col != col_index:
                    accumulator -= value * solution[col]
            solution[col_index] = accumulator / self.pivots[step]
        return solution

    def solve_many(self, rhs_matrix):
        """Solve ``A X = B`` column by column; ``rhs_matrix`` is ``n x m``."""
        rhs_matrix = np.asarray(rhs_matrix, dtype=complex)
        if rhs_matrix.ndim == 1:
            return self.solve(rhs_matrix)
        columns = [self.solve(rhs_matrix[:, j])
                   for j in range(rhs_matrix.shape[1])]
        return np.column_stack(columns)


def sparse_lu(matrix, threshold=0.1, pivoting="markowitz", column_order=None):
    """Factor a square :class:`~repro.linalg.sparse.SparseMatrix`.

    Parameters
    ----------
    matrix:
        Square sparse matrix (it is not modified).
    threshold:
        Relative threshold ``u`` for numerically acceptable pivots: a candidate
        ``a_ij`` is acceptable when ``|a_ij| >= u * max_i |a_ij|`` over its
        column.  Smaller values favour sparsity over numerical safety.
    pivoting:
        ``"markowitz"`` (default) or ``"partial"`` (plain column-order with
        row pivoting, mostly useful for tests).
    column_order:
        Optional fill-reducing elimination order (a permutation of
        ``range(n)``, e.g. from
        :func:`~repro.linalg.ordering.fill_reducing_order`): step ``k``
        eliminates column ``column_order[k]``, preferring the structurally
        symmetric pivot row ``column_order[k]`` when its magnitude passes the
        ``threshold`` test against the column maximum, else falling back to
        the largest-magnitude row (threshold partial pivoting).  This replaces
        the O(active²) per-step Markowitz search with an O(column) choice —
        the production configuration for pre-ordered post-layout-scale
        matrices.  Overrides ``pivoting``.

    Returns
    -------
    LUFactorization

    Raises
    ------
    SingularMatrixError
        If no acceptable non-zero pivot can be found at some step (for
        ``column_order``, also when an ordered column is structurally empty —
        a structurally deficient matrix).
    """
    if matrix.n_rows != matrix.n_cols:
        raise LinAlgError("LU factorization requires a square matrix")
    if pivoting not in ("markowitz", "partial"):
        raise LinAlgError(f"unknown pivoting strategy {pivoting!r}")
    n = matrix.n_rows
    if column_order is not None:
        column_order = [int(col) for col in column_order]
        if sorted(column_order) != list(range(n)):
            raise LinAlgError(
                f"column_order must be a permutation of range({n})")
    if n == 0:
        return LUFactorization(0, [], [], [], [], [], 0)

    # Working row-wise copy plus a column index for pivot searching.
    rows: List[Dict[int, complex]] = matrix.rows()
    col_index: List[set] = [set() for __ in range(n)]
    for i, row in enumerate(rows):
        for j in row:
            col_index[j].add(i)

    active_rows = set(range(n))
    active_cols = set(range(n))
    pivot_rows: List[int] = []
    pivot_cols: List[int] = []
    pivots: List[complex] = []
    eliminations: List[List[Tuple[int, complex]]] = []
    upper_rows: List[Dict[int, complex]] = []
    initial_nnz = matrix.nnz
    fill_in = 0

    for step in range(n):
        if column_order is not None:
            pivot_row, pivot_col = _select_ordered_pivot(
                rows, col_index, active_rows, threshold, column_order[step]
            )
        else:
            pivot_row, pivot_col = _select_pivot(
                rows, col_index, active_rows, active_cols, threshold, pivoting
            )
        if pivot_row is None:
            raise SingularMatrixError(
                f"matrix is singular (no acceptable pivot at step "
                f"{len(pivots)} of {n})",
                pivot_index=len(pivots), dimension=n,
            )
        pivot_value = rows[pivot_row][pivot_col]
        pivot_rows.append(pivot_row)
        pivot_cols.append(pivot_col)
        pivots.append(pivot_value)
        upper_rows.append(dict(rows[pivot_row]))

        active_rows.discard(pivot_row)
        active_cols.discard(pivot_col)

        # Eliminate pivot_col from every remaining active row that has it.
        target_rows = [i for i in col_index[pivot_col] if i in active_rows]
        step_eliminations, step_fill = _eliminate_pivot_column(
            rows, col_index, active_cols, pivot_row, pivot_col, pivot_value,
            target_rows,
        )
        fill_in += step_fill
        eliminations.append(step_eliminations)

    return LUFactorization(
        n, pivot_rows, pivot_cols, pivots, eliminations, upper_rows, fill_in
    )


def _eliminate_pivot_column(rows, col_index, active_cols, pivot_row,
                            pivot_col, pivot_value, target_rows):
    """One elimination step shared by :func:`sparse_lu` and
    :func:`sparse_lu_refactor`: remove ``pivot_col`` from ``target_rows`` and
    update their remaining entries.  Returns ``(eliminations, fill_in)``.
    """
    step_eliminations: List[Tuple[int, complex]] = []
    fill_in = 0
    pivot_row_items = [(j, v) for j, v in rows[pivot_row].items()
                       if j in active_cols]
    for i in target_rows:
        multiplier = rows[i][pivot_col] / pivot_value
        step_eliminations.append((i, multiplier))
        row_i = rows[i]
        # Remove the eliminated entry.
        del row_i[pivot_col]
        col_index[pivot_col].discard(i)
        # Update the rest of the row.
        for j, pivot_entry in pivot_row_items:
            existing = row_i.get(j)
            if existing is None:
                new_value = -multiplier * pivot_entry
                if new_value != 0:
                    row_i[j] = new_value
                    col_index[j].add(i)
                    fill_in += 1
            else:
                new_value = existing - multiplier * pivot_entry
                if new_value == 0:
                    del row_i[j]
                    col_index[j].discard(i)
                else:
                    row_i[j] = new_value
    return step_eliminations, fill_in


def sparse_lu_refactor(matrix, pattern, stability=1e-8) -> LUFactorization:
    """Refactor ``matrix`` numerically, reusing the pivot order of ``pattern``.

    During a frequency sweep every matrix ``g·G + s_k·f·C`` shares one
    sparsity structure, so the (expensive) Markowitz pivot search only needs
    to run once: subsequent points replay the same elimination order with
    fresh numbers.  This is the classical factor-once / refactor-many split of
    sparse circuit simulators.

    Parameters
    ----------
    matrix:
        Square :class:`~repro.linalg.sparse.SparseMatrix` with (a subset of)
        the sparsity structure that produced ``pattern``.
    pattern:
        An :class:`LUFactorization` of a structurally identical matrix whose
        ``pivot_rows`` / ``pivot_cols`` sequence is reused.
    stability:
        A pivot is rejected when its magnitude falls below ``stability`` times
        the largest magnitude in its column over the remaining rows.  Callers
        should fall back to a fresh :func:`sparse_lu` (new pivot order) on
        :class:`~repro.errors.SingularMatrixError`.

    Raises
    ------
    SingularMatrixError
        When a reused pivot is zero or numerically unacceptable at the new
        frequency point.
    """
    if matrix.n_rows != matrix.n_cols:
        raise LinAlgError("LU refactorization requires a square matrix")
    n = matrix.n_rows
    if pattern.n != n:
        raise LinAlgError(
            f"pattern is for a {pattern.n}x{pattern.n} matrix, "
            f"got {n}x{n}"
        )
    rows: List[Dict[int, complex]] = matrix.rows()
    col_index: List[set] = [set() for __ in range(n)]
    for i, row in enumerate(rows):
        for j in row:
            col_index[j].add(i)

    active_rows = set(range(n))
    active_cols = set(range(n))
    pivots: List[complex] = []
    eliminations: List[List[Tuple[int, complex]]] = []
    upper_rows: List[Dict[int, complex]] = []
    fill_in = 0

    for step in range(n):
        pivot_row = pattern.pivot_rows[step]
        pivot_col = pattern.pivot_cols[step]
        pivot_value = rows[pivot_row].get(pivot_col, 0.0 + 0.0j)
        target_rows = [i for i in col_index[pivot_col]
                       if i in active_rows and i != pivot_row]
        if pivot_value == 0:
            raise SingularMatrixError(
                f"reused pivot ({pivot_row}, {pivot_col}) is zero at "
                f"step {step}; refactor with fresh pivoting",
                pivot_index=step, dimension=n,
            )
        if stability and target_rows:
            column_max = max(abs(rows[i][pivot_col]) for i in target_rows)
            if abs(pivot_value) < stability * column_max:
                raise SingularMatrixError(
                    f"reused pivot ({pivot_row}, {pivot_col}) lost "
                    f"{1.0 / stability:.0e} of its column magnitude at "
                    f"step {step}; refactor with fresh pivoting",
                    pivot_index=step, dimension=n,
                )
        pivots.append(pivot_value)
        upper_rows.append(dict(rows[pivot_row]))
        active_rows.discard(pivot_row)
        active_cols.discard(pivot_col)

        step_eliminations, step_fill = _eliminate_pivot_column(
            rows, col_index, active_cols, pivot_row, pivot_col, pivot_value,
            target_rows,
        )
        fill_in += step_fill
        eliminations.append(step_eliminations)

    return LUFactorization(
        n, list(pattern.pivot_rows), list(pattern.pivot_cols), pivots,
        eliminations, upper_rows, fill_in
    )


def sparse_lu_reusing(matrix, pattern, stability=1e-8, column_order=None):
    """Factor ``matrix``, reusing ``pattern``'s pivot order when possible.

    The factor-once / refactor-many policy shared by every sparse sweep path:
    with no ``pattern`` (first point) run the full pivot search — along the
    fill-reducing ``column_order`` when one is given, else the Markowitz
    scan — otherwise refactor along the known pivot order, falling back to a
    fresh factorization when a reused pivot is zero or numerically degraded.

    Returns
    -------
    (LUFactorization, LUFactorization, bool)
        The factorization, the pattern to reuse for the next point (a fresh
        factorization replaces a degraded pattern), and whether the cheap
        refactorization path was taken.
    """
    if pattern is not None:
        try:
            return (sparse_lu_refactor(matrix, pattern, stability=stability),
                    pattern, True)
        except SingularMatrixError:
            pass
    factorization = sparse_lu(matrix, column_order=column_order)
    return factorization, factorization, False


def _select_ordered_pivot(rows, col_index, active_rows, threshold, col):
    """Pivot for one pre-ordered elimination step: column ``col``, preferring
    the structurally symmetric row ``col`` under threshold partial pivoting.
    Returns ``(row, col)`` or ``(None, None)`` when the column has no usable
    entry (structurally or numerically deficient).
    """
    candidates = [i for i in col_index[col] if i in active_rows]
    if not candidates:
        return None, None
    best_row = max(candidates, key=lambda i: abs(rows[i][col]))
    column_max = abs(rows[best_row][col])
    if column_max == 0.0:
        return None, None
    if col in active_rows:
        diagonal = rows[col].get(col)
        if diagonal is not None and abs(diagonal) >= threshold * column_max:
            return col, col
    return best_row, col


def _select_pivot(rows, col_index, active_rows, active_cols, threshold,
                  pivoting):
    """Pick the next pivot; returns ``(row, col)`` or ``(None, None)``."""
    if not active_rows:
        return None, None

    if pivoting == "partial":
        # Eliminate the lowest-numbered active column, choosing the largest
        # magnitude entry in that column.
        for col in sorted(active_cols):
            candidates = [i for i in col_index[col] if i in active_rows]
            if not candidates:
                continue
            best_row = max(candidates, key=lambda i: abs(rows[i][col]))
            if abs(rows[best_row][col]) > 0.0:
                return best_row, col
        return None, None

    # Markowitz with threshold pivoting.
    # Per-column maximum magnitude over active rows (numerical acceptance).
    best = None
    best_cost = None
    best_magnitude = 0.0
    row_counts = {i: sum(1 for j in rows[i] if j in active_cols)
                  for i in active_rows}
    for col in active_cols:
        col_rows = [i for i in col_index[col] if i in active_rows]
        if not col_rows:
            continue
        col_max = max(abs(rows[i][col]) for i in col_rows)
        if col_max == 0.0:
            continue
        col_count = len(col_rows)
        for i in col_rows:
            magnitude = abs(rows[i][col])
            if magnitude < threshold * col_max or magnitude == 0.0:
                continue
            cost = (row_counts[i] - 1) * (col_count - 1)
            if (best_cost is None or cost < best_cost
                    or (cost == best_cost and magnitude > best_magnitude)):
                best = (i, col)
                best_cost = cost
                best_magnitude = magnitude
    if best is None:
        return None, None
    return best
