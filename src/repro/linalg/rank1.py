"""Sherman–Morrison rank-1 update solves on cached factorizations.

Every passive admittance element (resistor, conductor, capacitor, and VCCS as
an outer product of output and control incidences) stamps the nodal / MNA
matrix as a rank-1 modification

``A' = A + Δy · u · vᵀ``

with constant incidence vectors ``u``, ``v`` and a scalar admittance change
``Δy(s) = Δg + s·Δc``.  Given any factorization of the *baseline* ``A``, the
modified system ``A' x = b`` is therefore solvable in O(n²) — two triangular
solves plus vector arithmetic — via the Sherman–Morrison formula

``x = x₀ − (Δy · vᵀx₀) / (1 + Δy · vᵀw) · w``,
``x₀ = A⁻¹ b``,  ``w = A⁻¹ u``,

instead of the O(n³) refactorization of ``A'``.  This is the kernel under the
element-sensitivity screening of :mod:`repro.analysis.sensitivity`: the
baseline is factored once per frequency batch and every element's removal /
perturbation response follows from the cached factors.

The denominator ``1 + Δy·vᵀA⁻¹u`` equals ``det(A') / det(A)`` (the matrix
determinant lemma); when it vanishes the updated matrix is singular — for a
removal update this is exactly the "element is essential, removing it
disconnects the circuit" case — and :class:`~repro.errors.SingularMatrixError`
is raised.

:func:`rank1_update_solve` accepts every factorization produced by this
package: :class:`~repro.linalg.dense.DenseLU`, a whole frequency batch at once
through :class:`~repro.linalg.dense.BatchedDenseLU` (the update vectorizes
across the batch, with ``Δy`` varying per point), and the sparse
:class:`~repro.linalg.lu.LUFactorization` — including factors produced by
:func:`~repro.linalg.lu.sparse_lu_refactor`, so sweeps above the dense cutoff
reuse their refactorization pattern unchanged.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import LinAlgError, SingularMatrixError
from .dense import BatchedDenseLU

__all__ = ["Rank1Stamp", "rank1_update_solve"]

#: Relative threshold below which the Sherman–Morrison denominator
#: ``1 + Δy·vᵀA⁻¹u = det(A')/det(A)`` is treated as zero.  For a structurally
#: singular update the denominator is pure rounding noise (~1e-16·cond), while
#: merely influential elements keep it many orders of magnitude larger.
SINGULAR_UPDATE_THRESHOLD = 1e-9


@dataclasses.dataclass
class Rank1Stamp:
    """One element's matrix contribution ``(g + s·c) · u · vᵀ``.

    Built by :meth:`repro.mna.builder.MnaSystem.element_stamp` and
    :meth:`repro.nodal.admittance.NodalFormulation.element_stamp`; consumed by
    :func:`rank1_update_solve` and the sensitivity screening.

    Attributes
    ----------
    u, v:
        Real incidence vectors over the formulation's unknowns (``u`` the row
        pattern, ``v`` the column pattern; equal for two-terminal elements).
    conductance:
        Frequency-independent admittance ``g`` (conductance or
        transconductance) of the element.
    capacitance:
        Frequency-proportional admittance ``c``; the element admittance is
        ``y(s) = g + s·c``.
    rhs_projection:
        Nodal formulations drop forced-node columns into the right-hand side;
        this scalar is the element's column incidence over the forced nodes
        dotted with the forced voltages (per unit drive).  A change ``Δy`` of
        the element then also shifts the excitation:
        ``rhs' = rhs − Δy · rhs_projection · u``.  Zero for MNA stamps.
    """

    u: np.ndarray
    v: np.ndarray
    conductance: float = 0.0
    capacitance: float = 0.0
    rhs_projection: complex = 0.0 + 0.0j

    def admittance(self, s_values, conductance_scale=1.0, frequency_scale=1.0):
        """Element admittance ``g·g_scale + s·f_scale·c`` at ``s_values``.

        Accepts a scalar or an array of complex frequencies and returns the
        matching shape; the scale factors are the Eq. (11) conductance /
        frequency factors of the nodal formulation (both 1 for MNA).
        """
        s = np.asarray(s_values, dtype=complex)
        result = (conductance_scale * self.conductance
                  + s * (frequency_scale * self.capacitance))
        return result if s.ndim else complex(result)


def _denominator_is_singular(denominator, t, threshold):
    """Elementwise singularity test for ``denominator = 1 + t``."""
    return np.abs(denominator) <= threshold * np.maximum(1.0, np.abs(t))


def rank1_update_solve(factorization, u, v, delta, rhs, *,
                       baseline_solution=None, update_solution=None,
                       singular_threshold=SINGULAR_UPDATE_THRESHOLD):
    """Solve ``(A + delta·u·vᵀ) x = rhs`` from a factorization of ``A``.

    Parameters
    ----------
    factorization:
        A :class:`~repro.linalg.dense.DenseLU`, sparse
        :class:`~repro.linalg.lu.LUFactorization` (including refactorizations
        from :func:`~repro.linalg.lu.sparse_lu_refactor`), or a
        :class:`~repro.linalg.dense.BatchedDenseLU` covering a whole frequency
        batch at once.
    u, v:
        Incidence vectors of length ``n`` (``v`` enters untransposed —
        ``vᵀx``, not ``vᴴx``).
    delta:
        The scalar ``Δy``; for a batched factorization it may be an array of
        length ``B`` (one admittance change per batch member, e.g. ``s_k·ΔC``
        for a capacitor across a sweep).
    rhs:
        Right-hand side of length ``n``; for a batched factorization a
        ``(B, n)`` stack is also accepted.
    baseline_solution, update_solution:
        Optional precomputed ``A⁻¹·rhs`` and ``A⁻¹·u``, so callers screening
        many updates against one baseline can share one baseline solve across
        every element and one update solve per element across removal *and*
        perturbation.  (The bulk screening engine applies the same formula
        inlined and vectorized over whole element blocks — see
        ``repro.analysis.sensitivity._screen_rank1`` — with this function as
        the single-element reference form.)
    singular_threshold:
        Relative tolerance on the Sherman–Morrison denominator; see
        :data:`SINGULAR_UPDATE_THRESHOLD`.

    Returns
    -------
    numpy.ndarray
        The solution — ``(n,)`` for scalar factorizations, ``(B, n)`` batched.

    Raises
    ------
    SingularMatrixError
        When the updated matrix is (numerically) singular, i.e. the
        denominator ``1 + delta·vᵀA⁻¹u = det(A')/det(A)`` vanishes.
    """
    u = np.asarray(u, dtype=complex)
    v = np.asarray(v, dtype=complex)
    rhs = np.asarray(rhs, dtype=complex)

    if isinstance(factorization, BatchedDenseLU):
        x0 = (np.asarray(baseline_solution, dtype=complex)
              if baseline_solution is not None else factorization.solve(rhs))
        w = (np.asarray(update_solution, dtype=complex)
             if update_solution is not None else factorization.solve(u))
        delta = np.broadcast_to(np.asarray(delta, dtype=complex),
                                (factorization.batch,))
        t = delta * (w @ v)
        denominator = 1.0 + t
        singular = _denominator_is_singular(denominator, t, singular_threshold)
        if singular.any():
            index = int(np.argmax(singular))
            raise SingularMatrixError(
                f"rank-1 update makes the matrix singular at batch member "
                f"{index} (|det ratio| = {abs(denominator[index]):.3e})"
            )
        coefficient = delta * (x0 @ v) / denominator
        return x0 - coefficient[:, None] * w

    if u.shape[0] != v.shape[0]:
        raise LinAlgError(
            f"u has {u.shape[0]} entries but v has {v.shape[0]}"
        )
    x0 = (np.asarray(baseline_solution, dtype=complex)
          if baseline_solution is not None else factorization.solve(rhs))
    w = (np.asarray(update_solution, dtype=complex)
         if update_solution is not None else factorization.solve(u))
    delta = complex(delta)
    t = delta * np.dot(v, w)
    denominator = 1.0 + t
    if _denominator_is_singular(denominator, t, singular_threshold):
        raise SingularMatrixError(
            f"rank-1 update makes the matrix singular "
            f"(|det ratio| = {abs(denominator):.3e})"
        )
    return x0 - (delta * np.dot(v, x0) / denominator) * w
