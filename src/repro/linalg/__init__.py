"""Sparse complex linear algebra substrate.

The interpolation engine needs, for every interpolation point ``s_k``, the
determinant of the nodal admittance matrix and the solution of one linear
system (Eqs. 7–10 of the paper).  The paper notes the algorithm "has been
implemented using sparse matrix techniques"; this package provides that
substrate from scratch:

* :class:`~repro.linalg.sparse.SparseMatrix` — a complex sparse matrix with
  dictionary-of-keys storage and row-wise access,
* :func:`~repro.linalg.lu.sparse_lu` — sparse LU factorization with Markowitz
  (threshold) pivoting, producing determinants with decimal-exponent tracking
  so very large / very small determinants never overflow,
* :func:`~repro.linalg.lu.sparse_lu_refactor` — numeric refactorization that
  reuses the pivot order of a previous factorization, the factor-once /
  refactor-many primitive of the batched frequency-sweep engine,
* :func:`~repro.linalg.dense.dense_lu` — a dense LU with partial pivoting used
  for cross-checking and for small systems,
* :func:`~repro.linalg.dense.batched_dense_lu` — the same dense algorithm
  vectorized over a whole stack of sweep matrices at once,
* :func:`~repro.linalg.rank1.rank1_update_solve` — Sherman–Morrison solve of
  a rank-1-modified system ``(A + Δy·u·vᵀ) x = b`` in O(n²) from any cached
  factorization (dense, batched, or sparse), the kernel of the element
  sensitivity screening,
* :mod:`~repro.linalg.det` — convenience determinant / solve wrappers.
"""

from .config import DEFAULT_DENSE_CUTOFF, dense_cutoff, sparse_ordering
from .sparse import SparseMatrix
from .lu import sparse_lu, sparse_lu_refactor, LUFactorization
from .ordering import (amd_order, rcm_order, fill_reducing_order,
                       inverse_permutation, permute_symmetric)
from .dense import dense_lu, DenseLU, batched_dense_lu, BatchedDenseLU
from .rank1 import Rank1Stamp, rank1_update_solve
from .det import determinant, solve_linear_system, log10_determinant

__all__ = [
    "DEFAULT_DENSE_CUTOFF",
    "dense_cutoff",
    "sparse_ordering",
    "SparseMatrix",
    "sparse_lu",
    "sparse_lu_refactor",
    "LUFactorization",
    "amd_order",
    "rcm_order",
    "fill_reducing_order",
    "inverse_permutation",
    "permute_symmetric",
    "dense_lu",
    "DenseLU",
    "batched_dense_lu",
    "BatchedDenseLU",
    "Rank1Stamp",
    "rank1_update_solve",
    "determinant",
    "solve_linear_system",
    "log10_determinant",
]
