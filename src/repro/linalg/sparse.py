"""Complex sparse matrices with dictionary-of-keys storage.

:class:`SparseMatrix` is intentionally simple: circuit matrices have at most a
few thousand non-zeros, so a dict-of-keys representation with row-wise views is
fast enough while keeping the LU code readable.  The class supports the
operations the rest of the library needs: stamping (``add``), row/column
queries, matrix-vector products, dense conversion and structural statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

import numpy as np

from ..errors import LinAlgError

__all__ = ["SparseMatrix", "merged_structure"]


def merged_structure(first, second):
    """Union sparsity structure of two same-shape matrices.

    The batched sweep primitive: collect the combined ``(row, col)`` key list
    once, plus each matrix's values over those keys, so per sweep point only
    a vectorized ``first_values + factor * second_values`` and a dict rebuild
    remain.

    Returns
    -------
    (keys, first_values, second_values)
        Sorted key list and two aligned complex value arrays.
    """
    if first.shape != second.shape:
        raise LinAlgError("matrix shape mismatch in merged_structure()")
    keys = sorted(
        {(row, col) for row, col, __ in first.entries()}
        | {(row, col) for row, col, __ in second.entries()}
    )
    first_values = np.array([first.get(row, col) for row, col in keys],
                            dtype=complex)
    second_values = np.array([second.get(row, col) for row, col in keys],
                             dtype=complex)
    return keys, first_values, second_values


class SparseMatrix:
    """A complex sparse matrix stored as ``{(row, col): value}``.

    Parameters
    ----------
    n_rows, n_cols:
        Matrix dimensions.  ``n_cols`` defaults to ``n_rows`` (square).
    """

    def __init__(self, n_rows, n_cols=None):
        if n_cols is None:
            n_cols = n_rows
        if n_rows < 0 or n_cols < 0:
            raise LinAlgError("matrix dimensions must be non-negative")
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self._data: Dict[Tuple[int, int], complex] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dense(cls, array):
        """Build from a 2-D numpy array (zeros are dropped)."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise LinAlgError("from_dense expects a 2-D array")
        matrix = cls(array.shape[0], array.shape[1])
        rows, cols = np.nonzero(array)
        for i, j in zip(rows.tolist(), cols.tolist()):
            matrix._data[(i, j)] = complex(array[i, j])
        return matrix

    @classmethod
    def from_entries(cls, n_rows, n_cols, entries):
        """Build from ``((row, col), value)`` pairs (zeros are dropped).

        Duplicate keys overwrite; indices are not bounds-checked (the caller
        is expected to supply a pre-validated structure, e.g. the cached key
        list of a batched sweep).
        """
        matrix = cls(n_rows, n_cols)
        matrix._data = {key: complex(value) for key, value in entries
                        if value != 0}
        return matrix

    @classmethod
    def identity(cls, n):
        """The n×n identity matrix."""
        matrix = cls(n, n)
        for i in range(n):
            matrix._data[(i, i)] = 1.0 + 0.0j
        return matrix

    def copy(self):
        """Deep copy."""
        duplicate = SparseMatrix(self.n_rows, self.n_cols)
        duplicate._data = dict(self._data)
        return duplicate

    def permuted(self, row_order, col_order=None):
        """Permuted copy ``B[i, j] = A[row_order[i], col_order[j]]``.

        ``row_order`` / ``col_order`` are image lists (``order[k]`` is the
        original index landing at position ``k``); ``col_order`` defaults to
        ``row_order`` (symmetric permutation).  Entry *insertion order*
        follows this matrix, so downstream dict iteration (notably the LU
        elimination) visits corresponding entries in corresponding positions.
        """
        if col_order is None:
            col_order = row_order
        if (sorted(row_order) != list(range(self.n_rows))
                or sorted(col_order) != list(range(self.n_cols))):
            raise LinAlgError(
                f"permutations must cover range({self.n_rows}) / "
                f"range({self.n_cols})")
        inverse_row = [0] * self.n_rows
        for position, original in enumerate(row_order):
            inverse_row[original] = position
        inverse_col = [0] * self.n_cols
        for position, original in enumerate(col_order):
            inverse_col[original] = position
        permuted = SparseMatrix(self.n_rows, self.n_cols)
        for (row, col), value in self._data.items():
            permuted._data[(inverse_row[row], inverse_col[col])] = value
        return permuted

    # -- element access ------------------------------------------------------

    def _check_index(self, row, col):
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise LinAlgError(
                f"index ({row}, {col}) out of bounds for "
                f"{self.n_rows}x{self.n_cols} matrix"
            )

    def get(self, row, col):
        """Entry value (0 for structural zeros)."""
        return self._data.get((row, col), 0.0 + 0.0j)

    def set(self, row, col, value):
        """Set an entry (setting 0 removes it)."""
        self._check_index(row, col)
        value = complex(value)
        if value == 0:
            self._data.pop((row, col), None)
        else:
            self._data[(row, col)] = value

    def add(self, row, col, value):
        """Add ``value`` to an entry — the stamping primitive."""
        self._check_index(row, col)
        value = complex(value)
        if value == 0:
            return
        key = (row, col)
        new_value = self._data.get(key, 0.0 + 0.0j) + value
        if new_value == 0:
            self._data.pop(key, None)
        else:
            self._data[key] = new_value

    def __getitem__(self, index):
        row, col = index
        return self.get(row, col)

    def __setitem__(self, index, value):
        row, col = index
        self.set(row, col, value)

    # -- queries --------------------------------------------------------------

    @property
    def shape(self):
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def nnz(self):
        """Number of stored non-zero entries."""
        return len(self._data)

    def density(self):
        """Fraction of entries that are non-zero."""
        total = self.n_rows * self.n_cols
        if total == 0:
            return 0.0
        return self.nnz / total

    def entries(self) -> Iterator[Tuple[int, int, complex]]:
        """Iterate over ``(row, col, value)`` triples in unspecified order."""
        for (row, col), value in self._data.items():
            yield row, col, value

    def rows(self) -> List[Dict[int, complex]]:
        """Row-wise view: list of ``{col: value}`` dicts (copies)."""
        rows: List[Dict[int, complex]] = [dict() for __ in range(self.n_rows)]
        for (row, col), value in self._data.items():
            rows[row][col] = value
        return rows

    def columns(self) -> List[Dict[int, complex]]:
        """Column-wise view: list of ``{row: value}`` dicts (copies)."""
        cols: List[Dict[int, complex]] = [dict() for __ in range(self.n_cols)]
        for (row, col), value in self._data.items():
            cols[col][row] = value
        return cols

    def row_nnz(self) -> List[int]:
        """Non-zero count per row."""
        counts = [0] * self.n_rows
        for (row, __) in self._data:
            counts[row] += 1
        return counts

    def col_nnz(self) -> List[int]:
        """Non-zero count per column."""
        counts = [0] * self.n_cols
        for (__, col) in self._data:
            counts[col] += 1
        return counts

    # -- arithmetic ------------------------------------------------------------

    def matvec(self, vector):
        """Matrix-vector product with a sequence or numpy vector."""
        vector = np.asarray(vector, dtype=complex)
        if vector.shape[0] != self.n_cols:
            raise LinAlgError(
                f"matvec dimension mismatch: matrix has {self.n_cols} columns, "
                f"vector has {vector.shape[0]} entries"
            )
        result = np.zeros(self.n_rows, dtype=complex)
        for (row, col), value in self._data.items():
            result[row] += value * vector[col]
        return result

    def transpose(self):
        """Return the transpose as a new matrix."""
        transposed = SparseMatrix(self.n_cols, self.n_rows)
        for (row, col), value in self._data.items():
            transposed._data[(col, row)] = value
        return transposed

    def scaled(self, factor):
        """Return ``factor * self`` as a new matrix."""
        result = SparseMatrix(self.n_rows, self.n_cols)
        factor = complex(factor)
        if factor != 0:
            for key, value in self._data.items():
                result._data[key] = value * factor
        return result

    def diagonally_shifted(self, shift):
        """Return ``self + shift·I`` as a new matrix (square matrices only).

        The diagonal-regularization primitive of the resilient solve layer
        (:mod:`repro.engine.resilience`): a last-resort solve factors
        ``A + εI`` instead of a numerically singular ``A``, then validates
        the solution against the *original* matrix.
        """
        if self.n_rows != self.n_cols:
            raise LinAlgError("diagonal shift requires a square matrix")
        result = self.copy()
        shift = complex(shift)
        if shift != 0:
            for index in range(self.n_rows):
                result.add(index, index, shift)
        return result

    def plus(self, other, factor=1.0):
        """Return ``self + factor * other`` as a new matrix."""
        if self.shape != other.shape:
            raise LinAlgError("matrix shape mismatch in plus()")
        result = self.copy()
        for (row, col), value in other._data.items():
            result.add(row, col, factor * value)
        return result

    def to_dense(self):
        """Convert to a dense complex numpy array."""
        dense = np.zeros((self.n_rows, self.n_cols), dtype=complex)
        for (row, col), value in self._data.items():
            dense[row, col] = value
        return dense

    def max_abs(self):
        """Largest entry magnitude (0.0 for an empty matrix)."""
        if not self._data:
            return 0.0
        return max(abs(value) for value in self._data.values())

    def __repr__(self):
        return (
            f"SparseMatrix({self.n_rows}x{self.n_cols}, nnz={self.nnz}, "
            f"density={self.density():.3f})"
        )
