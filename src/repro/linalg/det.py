"""Convenience wrappers: determinant and solve with automatic method choice."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import LinAlgError
from ..xfloat import XFloat
from .config import use_dense
from .dense import dense_lu
from .lu import sparse_lu
from .sparse import SparseMatrix

__all__ = ["determinant", "log10_determinant", "solve_linear_system"]


def _factor(matrix, method="auto"):
    if method not in ("auto", "sparse", "dense"):
        raise LinAlgError(f"unknown method {method!r}")
    if isinstance(matrix, SparseMatrix):
        if use_dense(matrix.n_rows, method):
            return dense_lu(matrix)
        return sparse_lu(matrix)
    array = np.asarray(matrix, dtype=complex)
    if method == "sparse":
        return sparse_lu(SparseMatrix.from_dense(array))
    return dense_lu(array)


def determinant(matrix, method="auto") -> Tuple[complex, int]:
    """Determinant of ``matrix`` as ``(complex mantissa, decimal exponent)``.

    ``method`` is ``"auto"`` (dense at or below
    :func:`repro.linalg.config.dense_cutoff` unknowns, sparse above),
    ``"sparse"`` or ``"dense"``.
    """
    return _factor(matrix, method).determinant_mantissa_exponent()


def log10_determinant(matrix, method="auto") -> float:
    """``log10 |det(matrix)|`` (``-inf`` when singular)."""
    mantissa, exponent = determinant(matrix, method)
    if mantissa == 0:
        return -math.inf
    return math.log10(abs(mantissa)) + exponent


def solve_linear_system(matrix, rhs, method="auto"):
    """Solve ``matrix @ x = rhs``; returns a complex numpy vector."""
    return _factor(matrix, method).solve(rhs)
