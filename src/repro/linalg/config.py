"""Shared linear-algebra configuration.

Two knobs live here:

* the **dense/sparse dispatch cutoff** — systems at or below
  :func:`dense_cutoff` unknowns are factored with the vectorizable dense LU
  (:func:`~repro.linalg.dense.dense_lu` / its batched variant); larger systems
  go through the sparse LU.  Historically three copies of this constant
  existed (``linalg.det``, ``mna.solve``, ``nodal.sampler``) and had drifted
  apart; every ``method="auto"`` decision now reads this module, so the whole
  stack flips backend at the same dimension.  Overridable per process through
  ``REPRO_DENSE_CUTOFF``.  Long-lived consumers (notably
  :class:`~repro.engine.sweep.SweepEngine`) snapshot the cutoff at
  construction, so one engine never mixes backends mid-sweep when the
  environment changes under it.

* the **sparse elimination ordering** — which fill-reducing order
  (:mod:`repro.linalg.ordering`) the sparse sweep path computes ahead of its
  first factorization.  ``"auto"`` (the default) is AMD with an RCM fallback;
  ``"markowitz"`` restores the dynamic per-step pivot search (the pre-ordering
  legacy behavior, still the right choice for very small or wildly
  unsymmetric systems).  Overridable through ``REPRO_SPARSE_ORDERING``.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_DENSE_CUTOFF", "DENSE_CUTOFF_ENV", "dense_cutoff",
           "use_dense", "DEFAULT_SPARSE_ORDERING", "SPARSE_ORDERING_ENV",
           "SPARSE_ORDERINGS", "sparse_ordering"]

#: Default dimension at or below which the dense LU is used by ``"auto"``.
DEFAULT_DENSE_CUTOFF = 150

#: Environment variable overriding :data:`DEFAULT_DENSE_CUTOFF`.
DENSE_CUTOFF_ENV = "REPRO_DENSE_CUTOFF"

#: Default elimination-ordering strategy of the sparse sweep path.
DEFAULT_SPARSE_ORDERING = "auto"

#: Environment variable overriding :data:`DEFAULT_SPARSE_ORDERING`.
SPARSE_ORDERING_ENV = "REPRO_SPARSE_ORDERING"

#: Accepted ordering strategies: the :mod:`repro.linalg.ordering` methods
#: plus ``"markowitz"`` (no pre-ordering; dynamic pivot search every step).
SPARSE_ORDERINGS = ("auto", "amd", "rcm", "natural", "markowitz")


def dense_cutoff() -> int:
    """The active dense/sparse cutoff (env override, else the default).

    Read at every call so tests and benchmarks can flip the backend by
    setting ``REPRO_DENSE_CUTOFF`` without re-importing anything.  Invalid
    or negative values fall back to the default.
    """
    raw = os.environ.get(DENSE_CUTOFF_ENV)
    if raw is None:
        return DEFAULT_DENSE_CUTOFF
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_DENSE_CUTOFF
    return value if value >= 0 else DEFAULT_DENSE_CUTOFF


def sparse_ordering() -> str:
    """The active sparse elimination-ordering strategy.

    Read from ``REPRO_SPARSE_ORDERING`` at every call (unknown values fall
    back to the default), snapshot per :class:`~repro.engine.sweep.SweepEngine`
    construction like the dense cutoff.
    """
    raw = os.environ.get(SPARSE_ORDERING_ENV)
    if raw is None:
        return DEFAULT_SPARSE_ORDERING
    value = raw.strip().lower()
    return value if value in SPARSE_ORDERINGS else DEFAULT_SPARSE_ORDERING


def use_dense(dimension, method="auto", cutoff=None) -> bool:
    """Resolve a factorization ``method`` against the dense/sparse cutoff.

    ``method`` must be ``"auto"``, ``"dense"`` or ``"sparse"`` — validation
    (and the error type raised for anything else) stays with the caller.
    ``cutoff`` lets a caller pin the decision to a snapshot taken earlier
    (``None`` reads the live :func:`dense_cutoff`).
    """
    if method == "dense":
        return True
    if method == "sparse":
        return False
    return dimension <= (dense_cutoff() if cutoff is None else cutoff)
