"""Shared linear-algebra configuration.

One knob lives here: the dense/sparse dispatch cutoff.  Systems at or below
:func:`dense_cutoff` unknowns are factored with the vectorizable dense LU
(:func:`~repro.linalg.dense.dense_lu` / its batched variant); larger systems
go through the Markowitz sparse LU.  Historically three copies of this
constant existed (``linalg.det``, ``mna.solve``, ``nodal.sampler``) and had
drifted apart; every ``method="auto"`` decision now reads this module, so the
whole stack flips backend at the same dimension.

The cutoff is overridable per process through the ``REPRO_DENSE_CUTOFF``
environment variable — useful for forcing one backend in benchmarks or for
tuning on hardware where the crossover sits elsewhere.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_DENSE_CUTOFF", "DENSE_CUTOFF_ENV", "dense_cutoff",
           "use_dense"]

#: Default dimension at or below which the dense LU is used by ``"auto"``.
DEFAULT_DENSE_CUTOFF = 150

#: Environment variable overriding :data:`DEFAULT_DENSE_CUTOFF`.
DENSE_CUTOFF_ENV = "REPRO_DENSE_CUTOFF"


def dense_cutoff() -> int:
    """The active dense/sparse cutoff (env override, else the default).

    Read at every call so tests and benchmarks can flip the backend by
    setting ``REPRO_DENSE_CUTOFF`` without re-importing anything.  Invalid
    or negative values fall back to the default.
    """
    raw = os.environ.get(DENSE_CUTOFF_ENV)
    if raw is None:
        return DEFAULT_DENSE_CUTOFF
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_DENSE_CUTOFF
    return value if value >= 0 else DEFAULT_DENSE_CUTOFF


def use_dense(dimension, method="auto") -> bool:
    """Resolve a factorization ``method`` against the active cutoff.

    ``method`` must be ``"auto"``, ``"dense"`` or ``"sparse"`` — validation
    (and the error type raised for anything else) stays with the caller.
    """
    if method == "dense":
        return True
    if method == "sparse":
        return False
    return dimension <= dense_cutoff()
