"""Shared linear-algebra configuration.

Two knobs live here:

* the **dense/sparse dispatch cutoff** — systems at or below
  :func:`dense_cutoff` unknowns are factored with the vectorizable dense LU
  (:func:`~repro.linalg.dense.dense_lu` / its batched variant); larger systems
  go through the sparse LU.  Historically three copies of this constant
  existed (``linalg.det``, ``mna.solve``, ``nodal.sampler``) and had drifted
  apart; every ``method="auto"`` decision now reads this module, so the whole
  stack flips backend at the same dimension.  Overridable per process through
  ``REPRO_DENSE_CUTOFF``.  Long-lived consumers (notably
  :class:`~repro.engine.sweep.SweepEngine`) snapshot the cutoff at
  construction, so one engine never mixes backends mid-sweep when the
  environment changes under it.

* the **sparse elimination ordering** — which fill-reducing order
  (:mod:`repro.linalg.ordering`) the sparse sweep path computes ahead of its
  first factorization.  ``"auto"`` (the default) is AMD with an RCM fallback;
  ``"markowitz"`` restores the dynamic per-step pivot search (the pre-ordering
  legacy behavior, still the right choice for very small or wildly
  unsymmetric systems).  Overridable through ``REPRO_SPARSE_ORDERING``.
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_DENSE_CUTOFF", "DENSE_CUTOFF_ENV", "dense_cutoff",
           "use_dense", "DEFAULT_SPARSE_ORDERING", "SPARSE_ORDERING_ENV",
           "SPARSE_ORDERINGS", "sparse_ordering",
           "DEFAULT_RESIDUAL_LIMIT", "RESIDUAL_LIMIT_ENV",
           "DEFAULT_CONDITION_LIMIT", "CONDITION_LIMIT_ENV",
           "residual_limit", "condition_limit"]

#: Default dimension at or below which the dense LU is used by ``"auto"``.
DEFAULT_DENSE_CUTOFF = 150

#: Environment variable overriding :data:`DEFAULT_DENSE_CUTOFF`.
DENSE_CUTOFF_ENV = "REPRO_DENSE_CUTOFF"

#: Default elimination-ordering strategy of the sparse sweep path.
DEFAULT_SPARSE_ORDERING = "auto"

#: Environment variable overriding :data:`DEFAULT_SPARSE_ORDERING`.
SPARSE_ORDERING_ENV = "REPRO_SPARSE_ORDERING"

#: Accepted ordering strategies: the :mod:`repro.linalg.ordering` methods
#: plus ``"markowitz"`` (no pre-ordering; dynamic pivot search every step).
SPARSE_ORDERINGS = ("auto", "amd", "rcm", "natural", "markowitz")


def dense_cutoff() -> int:
    """The active dense/sparse cutoff (env override, else the default).

    Read at every call so tests and benchmarks can flip the backend by
    setting ``REPRO_DENSE_CUTOFF`` without re-importing anything.  Invalid
    or negative values fall back to the default.
    """
    raw = os.environ.get(DENSE_CUTOFF_ENV)
    if raw is None:
        return DEFAULT_DENSE_CUTOFF
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_DENSE_CUTOFF
    return value if value >= 0 else DEFAULT_DENSE_CUTOFF


def sparse_ordering() -> str:
    """The active sparse elimination-ordering strategy.

    Read from ``REPRO_SPARSE_ORDERING`` at every call (unknown values fall
    back to the default), snapshot per :class:`~repro.engine.sweep.SweepEngine`
    construction like the dense cutoff.
    """
    raw = os.environ.get(SPARSE_ORDERING_ENV)
    if raw is None:
        return DEFAULT_SPARSE_ORDERING
    value = raw.strip().lower()
    return value if value in SPARSE_ORDERINGS else DEFAULT_SPARSE_ORDERING


#: Default scaled-residual acceptance limit of the resilient solve layer:
#: an escalated solution with ``‖Ax − b‖∞ / (‖A‖₁·‖x‖∞ + ‖b‖∞)`` above this
#: is rejected and escalation continues (see
#: :class:`repro.engine.resilience.SolvePolicy`).
DEFAULT_RESIDUAL_LIMIT = 1e-8

#: Environment variable overriding :data:`DEFAULT_RESIDUAL_LIMIT`.
RESIDUAL_LIMIT_ENV = "REPRO_RESIDUAL_LIMIT"

#: Default 1-norm condition-estimate threshold above which a solution is
#: flagged *degraded* in resilience diagnostics (reported, not rejected).
DEFAULT_CONDITION_LIMIT = 1e13

#: Environment variable overriding :data:`DEFAULT_CONDITION_LIMIT`.
CONDITION_LIMIT_ENV = "REPRO_CONDITION_LIMIT"


def _float_env(name, default) -> float:
    """A positive-float environment override (invalid values → default)."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        return default
    return value if value > 0.0 else default


def residual_limit() -> float:
    """The active resilience residual limit (env override, else the default)."""
    return _float_env(RESIDUAL_LIMIT_ENV, DEFAULT_RESIDUAL_LIMIT)


def condition_limit() -> float:
    """The active resilience condition threshold (env override, else default)."""
    return _float_env(CONDITION_LIMIT_ENV, DEFAULT_CONDITION_LIMIT)


def use_dense(dimension, method="auto", cutoff=None) -> bool:
    """Resolve a factorization ``method`` against the dense/sparse cutoff.

    ``method`` must be ``"auto"``, ``"dense"`` or ``"sparse"`` — validation
    (and the error type raised for anything else) stays with the caller.
    ``cutoff`` lets a caller pin the decision to a snapshot taken earlier
    (``None`` reads the live :func:`dense_cutoff`).
    """
    if method == "dense":
        return True
    if method == "sparse":
        return False
    return dimension <= (dense_cutoff() if cutoff is None else cutoff)
