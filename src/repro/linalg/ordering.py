"""Fill-reducing elimination orderings for the sparse LU path.

The Markowitz pivot search of :func:`~repro.linalg.lu.sparse_lu` scans every
active column at every elimination step — an O(n²)-and-up cost that is
irrelevant at µA741 size (n = 43) but dominates once post-layout parasitic
networks reach 10³–10⁴ unknowns.  The classical remedy is to *pre-order* the
matrix from its structure alone and then eliminate along that fixed order with
cheap threshold pivoting: the expensive combinatorial work runs once per
sparsity pattern instead of once per factorization step.

Two orderings are provided, both pure Python over the existing
:class:`~repro.linalg.sparse.SparseMatrix` structure objects:

* :func:`amd_order` — minimum-degree on the quotient (element) graph, the
  ordering family behind AMD/MMD.  Eliminated variables collapse into
  *elements* (cliques) instead of materializing their fill edges, so the
  symbolic cost tracks the fill, not its square.  Degrees are the standard
  AMD-style upper bound ``|A_v| + Σ_e (|L_e| − 1)`` (element overlaps are not
  deduplicated), which keeps the update O(clique) per elimination.
* :func:`rcm_order` — reverse Cuthill–McKee, the bandwidth-minimizing BFS
  ordering.  Cheaper and more robust (no degree bookkeeping), with more fill
  than minimum degree on meshes; it is the fallback when AMD fails.

:func:`fill_reducing_order` is the front door: ``method="auto"`` tries AMD and
falls back to RCM, ``"natural"`` returns the identity order (banded matrices
in their native numbering).  The result feeds ``column_order=`` of
:func:`~repro.linalg.lu.sparse_lu`, which prefers the structurally symmetric
pivot of each ordered column under the usual relative-magnitude threshold.

Orderings are purely structural: the same key list always yields the same
permutation, so factor-once / refactor-many sweeps stay deterministic.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from ..errors import LinAlgError

__all__ = ["amd_order", "rcm_order", "fill_reducing_order",
           "inverse_permutation", "permute_symmetric", "ORDERING_METHODS"]

#: Accepted ``method`` values of :func:`fill_reducing_order`.
ORDERING_METHODS = ("auto", "amd", "rcm", "natural")


def _symmetrized_adjacency(n, keys) -> List[set]:
    """Undirected adjacency of the symmetrized structure ``A + Aᵀ``.

    Diagonal keys are ignored; out-of-range keys raise, matching the bounds
    discipline of :class:`~repro.linalg.sparse.SparseMatrix`.
    """
    adjacency: List[set] = [set() for __ in range(n)]
    for row, col in keys:
        if not (0 <= row < n and 0 <= col < n):
            raise LinAlgError(
                f"structure key ({row}, {col}) out of bounds for a "
                f"{n}x{n} matrix")
        if row != col:
            adjacency[row].add(col)
            adjacency[col].add(row)
    return adjacency


def amd_order(n, keys) -> List[int]:
    """Approximate-minimum-degree elimination order of an ``n×n`` structure.

    Parameters
    ----------
    n:
        Matrix dimension.
    keys:
        Iterable of ``(row, col)`` structure keys (values are irrelevant).

    Returns
    -------
    list of int
        ``order[k]`` is the original index eliminated at step ``k``.
    """
    if n < 0:
        raise LinAlgError("ordering requires a non-negative dimension")
    adjacency = _symmetrized_adjacency(n, keys)

    # Quotient graph: eliminated pivots become *elements* (cliques).  Each
    # live variable v sees plain neighbors ``adjacency[v]`` plus the member
    # sets of the elements in ``variable_elements[v]``.
    elements: dict = {}
    variable_elements: List[set] = [set() for __ in range(n)]
    eliminated = [False] * n
    degrees = [len(adjacency[v]) for v in range(n)]
    heap = [(degrees[v], v) for v in range(n)]
    heapq.heapify(heap)

    order: List[int] = []
    next_element = 0
    while heap:
        degree, pivot = heapq.heappop(heap)
        if eliminated[pivot] or degree != degrees[pivot]:
            continue   # stale heap entry
        eliminated[pivot] = True
        order.append(pivot)

        # The pivot's clique: plain neighbors plus every member of every
        # element it touches (those elements are absorbed into the new one).
        clique = set(adjacency[pivot])
        absorbed = variable_elements[pivot]
        for element in absorbed:
            clique |= elements.pop(element)
        clique.discard(pivot)
        adjacency[pivot] = set()
        variable_elements[pivot] = set()
        if not clique:
            continue

        element_id = next_element
        next_element += 1
        elements[element_id] = clique
        for variable in clique:
            # Edges inside the clique are now represented by the element.
            adjacency[variable] -= clique
            adjacency[variable].discard(pivot)
            variable_elements[variable] -= absorbed
            variable_elements[variable].add(element_id)
            # AMD-style degree bound: plain neighbors plus element sizes.
            degree = len(adjacency[variable])
            for element in variable_elements[variable]:
                degree += len(elements[element]) - 1
            degrees[variable] = degree
            heapq.heappush(heap, (degree, variable))
    return order


def rcm_order(n, keys) -> List[int]:
    """Reverse Cuthill–McKee elimination order of an ``n×n`` structure.

    Breadth-first search from a minimum-degree start node per connected
    component, neighbors visited by increasing degree, final order reversed.
    """
    if n < 0:
        raise LinAlgError("ordering requires a non-negative dimension")
    adjacency = _symmetrized_adjacency(n, keys)
    degrees = [len(adjacency[v]) for v in range(n)]
    neighbors = [sorted(adjacency[v], key=lambda u: (degrees[u], u))
                 for v in range(n)]
    visited = [False] * n
    order: List[int] = []
    for start in sorted(range(n), key=lambda v: (degrees[v], v)):
        if visited[start]:
            continue
        visited[start] = True
        queue = [start]
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            order.append(node)
            for neighbor in neighbors[node]:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    queue.append(neighbor)
    order.reverse()
    return order


def fill_reducing_order(n, keys, method="auto") -> List[int]:
    """A fill-reducing elimination order for an ``n×n`` sparse structure.

    Parameters
    ----------
    n:
        Matrix dimension.
    keys:
        Iterable of ``(row, col)`` structure keys — typically the merged
        key list of :func:`~repro.linalg.sparse.merged_structure`.
    method:
        ``"auto"`` (AMD, falling back to RCM on failure), ``"amd"``,
        ``"rcm"`` or ``"natural"`` (the identity order).

    Returns
    -------
    list of int
        A permutation of ``range(n)``; ``order[k]`` is the original column
        (and preferred pivot row) of elimination step ``k``.
    """
    if method not in ORDERING_METHODS:
        raise LinAlgError(f"unknown ordering method {method!r}")
    if method == "natural":
        return list(range(n))
    keys = list(keys)
    if method == "rcm":
        return rcm_order(n, keys)
    if method == "amd":
        return amd_order(n, keys)
    try:
        return amd_order(n, keys)
    except Exception:   # pragma: no cover - AMD is total on valid input
        return rcm_order(n, keys)


def inverse_permutation(order: Sequence[int]) -> List[int]:
    """Inverse of a permutation given as the image list ``order[k] = original``."""
    inverse = [0] * len(order)
    for position, original in enumerate(order):
        inverse[original] = position
    return inverse


def permute_symmetric(matrix, order) -> "object":
    """Symmetrically permuted copy ``B[i, j] = A[order[i], order[j]]``.

    Entry *insertion order* follows the original matrix (see
    :meth:`~repro.linalg.sparse.SparseMatrix.permuted`), so the row dicts the
    LU code iterates see corresponding entries in corresponding positions —
    this is what makes factoring ``B`` in natural order bit-for-bit identical
    to factoring ``A`` with ``column_order=order`` (the permutation
    round-trip property the ordering tests pin down).
    """
    if matrix.n_rows != matrix.n_cols:
        raise LinAlgError("symmetric permutation requires a square matrix")
    return matrix.permuted(order)
