"""MNA system assembly.

Unknowns are the non-ground node voltages plus one branch current for every
element that needs an auxiliary equation: independent voltage sources, VCVS,
CCVS and inductors.  The system matrix is split into a constant part ``G`` and
a frequency-proportional part ``C`` so that ``A(s) = G + s·C`` can be
assembled at any complex frequency; the right-hand side collects the
independent source values.

The stamps follow the standard MNA conventions (see Vlach & Singhal, the
paper's reference [6]).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.formulation import FormulationBase
from ..errors import FormulationError
from ..linalg.rank1 import Rank1Stamp
from ..linalg.sparse import SparseMatrix
from ..netlist.circuit import Circuit
from ..netlist.elements import (
    CCCS,
    CCVS,
    Capacitor,
    Conductor,
    CurrentSource,
    GROUND,
    Inductor,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)

__all__ = ["MnaSystem", "build_mna_system", "system_dimension",
           "stamp_element", "system_sparsity", "SparsitySummary"]

#: Element types that require an auxiliary branch-current unknown.
_BRANCH_TYPES = (VoltageSource, VCVS, CCVS, Inductor)


class MnaSystem(FormulationBase):
    """Assembled MNA matrices for a circuit.

    Implements the :class:`~repro.engine.formulation.Formulation` protocol —
    assembly (single-point, batched, merged sparse structure) is inherited
    from :class:`~repro.engine.formulation.FormulationBase`.

    Attributes
    ----------
    node_names:
        Unknown node voltages in matrix order.
    branch_names:
        Elements owning an auxiliary current unknown, in matrix order.
    constant, dynamic:
        :class:`SparseMatrix` ``G`` and ``C`` with ``A(s) = G + s·C``.
    rhs:
        Excitation vector (complex) from the independent sources' AC values.
    """

    def __init__(self, circuit, node_names, branch_names, constant, dynamic, rhs):
        self.circuit = circuit
        self.node_names = node_names
        self.branch_names = branch_names
        self.constant = constant
        self.dynamic = dynamic
        self.rhs = rhs
        self._node_index = {name: i for i, name in enumerate(node_names)}
        self._branch_index = {
            name.lower(): len(node_names) + i for i, name in enumerate(branch_names)
        }

    @property
    def dimension(self):
        """Total number of unknowns (node voltages + branch currents)."""
        return len(self.node_names) + len(self.branch_names)

    def node_index(self, node):
        """Index of a node voltage unknown (raises for ground / unknown nodes)."""
        if node == GROUND:
            raise FormulationError("ground has no unknown index")
        if node not in self._node_index:
            raise FormulationError(f"node {node!r} is not an MNA unknown")
        return self._node_index[node]

    def branch_index(self, element_name):
        """Index of a branch-current unknown."""
        key = str(element_name).lower()
        if key not in self._branch_index:
            raise FormulationError(
                f"element {element_name!r} has no branch current unknown"
            )
        return self._branch_index[key]

    def sparse_parts(self):
        """``(G, C)`` with ``A(s) = G + s·C`` (the Formulation protocol)."""
        return self.constant, self.dynamic

    def element_stamp(self, name) -> Rank1Stamp:
        """The rank-1 matrix contribution ``(g + s·c)·u·vᵀ`` of one element.

        Supported are the elements whose stamp is a pure admittance outer
        product over the node unknowns: resistors / conductors (``g = G``),
        capacitors (``c = C``) and VCCS (``g = gm`` with the output incidence
        as ``u`` and the control incidence as ``v``).  With the returned stamp
        an element's removal or value change becomes a rank-1 update of the
        assembled matrix — ``A'(s) = A(s) + Δy(s)·u·vᵀ`` — locatable without
        re-assembling the system (see :mod:`repro.linalg.rank1`).

        Raises
        ------
        FormulationError
            For element types whose stamp involves auxiliary branch equations
            (sources, inductors, VCVS/CCCS/CCVS).
        """
        element = self.circuit[name]

        def incidence(positive, negative):
            vector = np.zeros(self.dimension)
            if positive != GROUND:
                vector[self.node_index(positive)] = 1.0
            if negative != GROUND:
                vector[self.node_index(negative)] = -1.0
            return vector

        if isinstance(element, (Resistor, Conductor)):
            u = incidence(element.node_pos, element.node_neg)
            return Rank1Stamp(u=u, v=u, conductance=element.conductance)
        if isinstance(element, Capacitor):
            u = incidence(element.node_pos, element.node_neg)
            return Rank1Stamp(u=u, v=u, capacitance=element.capacitance)
        if isinstance(element, VCCS):
            return Rank1Stamp(
                u=incidence(element.node_pos, element.node_neg),
                v=incidence(element.ctrl_pos, element.ctrl_neg),
                conductance=element.gm,
            )
        raise FormulationError(
            f"element {element.name!r} of type {type(element).__name__} does "
            "not stamp as a rank-1 admittance outer product"
        )

    def node_voltage(self, solution, node):
        """Extract a node voltage from a solution vector (0 for ground)."""
        if node == GROUND:
            return 0.0 + 0.0j
        return complex(solution[self.node_index(node)])

    def node_voltages(self, solutions, node) -> np.ndarray:
        """Vectorized :meth:`node_voltage` over a ``(K, n)`` solution stack."""
        solutions = np.asarray(solutions, dtype=complex)
        if node == GROUND:
            return np.zeros(solutions.shape[0], dtype=complex)
        return solutions[:, self.node_index(node)]

    def branch_current(self, solution, element_name):
        """Extract a branch current from a solution vector."""
        return complex(solution[self.branch_index(element_name)])


def system_dimension(circuit) -> int:
    """Dimension of the circuit's MNA system without assembling any matrices.

    The unknown count — non-ground node voltages plus one branch current per
    voltage source / VCVS / CCVS / inductor — follows from the element list
    alone, so callers that only need the size (reports, chunk sizing) can
    skip the full :func:`build_mna_system` stamping pass.
    """
    branch_count = sum(1 for element in circuit
                       if isinstance(element, _BRANCH_TYPES))
    return len(circuit.non_ground_nodes) + branch_count


def stamp_element(element, constant, dynamic, rhs_add, node, branch_index):
    """Stamp one element into the MNA matrices / right-hand side.

    This is the single source of truth for the MNA stamps:
    :func:`build_mna_system` drives it with real matrices, and the Monte
    Carlo value program (:mod:`repro.montecarlo.program`) drives it with
    recording matrices to learn, per element, exactly which entries it
    touches and in which order — so a vectorized re-stamping reproduces the
    builder's accumulation arithmetic to the last bit.

    Parameters
    ----------
    element:
        The circuit element to stamp.
    constant, dynamic:
        Objects with ``add(row, col, value)`` (the ``G`` and ``C`` targets).
    rhs_add:
        Callable ``rhs_add(index, value)`` accumulating the excitation.
    node:
        Callable mapping a node name to its unknown index (``None`` for
        ground).
    branch_index:
        Mapping of lowercase element name to branch-current unknown index.
    """

    def stamp_pair(matrix, a, b, value):
        """Standard two-terminal admittance stamp between nodes a and b."""
        ia, ib = node(a), node(b)
        if ia is not None:
            matrix.add(ia, ia, value)
        if ib is not None:
            matrix.add(ib, ib, value)
        if ia is not None and ib is not None:
            matrix.add(ia, ib, -value)
            matrix.add(ib, ia, -value)

    if isinstance(element, (Resistor, Conductor)):
        stamp_pair(constant, element.node_pos, element.node_neg,
                   element.conductance)
    elif isinstance(element, Capacitor):
        stamp_pair(dynamic, element.node_pos, element.node_neg,
                   element.capacitance)
    elif isinstance(element, VCCS):
        out_pos, out_neg = node(element.node_pos), node(element.node_neg)
        ctrl_pos, ctrl_neg = node(element.ctrl_pos), node(element.ctrl_neg)
        for row, row_sign in ((out_pos, +1.0), (out_neg, -1.0)):
            if row is None:
                continue
            if ctrl_pos is not None:
                constant.add(row, ctrl_pos, row_sign * element.gm)
            if ctrl_neg is not None:
                constant.add(row, ctrl_neg, -row_sign * element.gm)
    elif isinstance(element, CurrentSource):
        pos, neg = node(element.node_pos), node(element.node_neg)
        if pos is not None:
            rhs_add(pos, -element.value)
        if neg is not None:
            rhs_add(neg, element.value)
    elif isinstance(element, VoltageSource):
        branch = branch_index[element.name.lower()]
        pos, neg = node(element.node_pos), node(element.node_neg)
        if pos is not None:
            constant.add(pos, branch, 1.0)
            constant.add(branch, pos, 1.0)
        if neg is not None:
            constant.add(neg, branch, -1.0)
            constant.add(branch, neg, -1.0)
        rhs_add(branch, element.value)
    elif isinstance(element, VCVS):
        branch = branch_index[element.name.lower()]
        pos, neg = node(element.node_pos), node(element.node_neg)
        ctrl_pos, ctrl_neg = node(element.ctrl_pos), node(element.ctrl_neg)
        if pos is not None:
            constant.add(pos, branch, 1.0)
            constant.add(branch, pos, 1.0)
        if neg is not None:
            constant.add(neg, branch, -1.0)
            constant.add(branch, neg, -1.0)
        if ctrl_pos is not None:
            constant.add(branch, ctrl_pos, -element.gain)
        if ctrl_neg is not None:
            constant.add(branch, ctrl_neg, element.gain)
    elif isinstance(element, CCCS):
        ctrl_branch = branch_index[element.ctrl_source.lower()]
        pos, neg = node(element.node_pos), node(element.node_neg)
        if pos is not None:
            constant.add(pos, ctrl_branch, element.gain)
        if neg is not None:
            constant.add(neg, ctrl_branch, -element.gain)
    elif isinstance(element, CCVS):
        branch = branch_index[element.name.lower()]
        ctrl_branch = branch_index[element.ctrl_source.lower()]
        pos, neg = node(element.node_pos), node(element.node_neg)
        if pos is not None:
            constant.add(pos, branch, 1.0)
            constant.add(branch, pos, 1.0)
        if neg is not None:
            constant.add(neg, branch, -1.0)
            constant.add(branch, neg, -1.0)
        constant.add(branch, ctrl_branch, -element.gain)
    elif isinstance(element, Inductor):
        branch = branch_index[element.name.lower()]
        pos, neg = node(element.node_pos), node(element.node_neg)
        if pos is not None:
            constant.add(pos, branch, 1.0)
            constant.add(branch, pos, 1.0)
        if neg is not None:
            constant.add(neg, branch, -1.0)
            constant.add(branch, neg, -1.0)
        dynamic.add(branch, branch, -element.inductance)
    else:
        raise FormulationError(
            f"element {element.name!r} of type {type(element).__name__} is "
            "not supported by the MNA builder"
        )


def system_structure(circuit):
    """Unknown layout of the circuit's MNA system (no matrices assembled).

    Returns
    -------
    (node_names, branch_names, node, branch_index)
        ``node`` maps a node name to its unknown index (``None`` for ground);
        ``branch_index`` maps lowercase element names to branch-current
        indices.

    Raises
    ------
    FormulationError
        For dangling controlled-source references.
    """
    node_names: List[str] = list(circuit.non_ground_nodes)
    node_index = {name: i for i, name in enumerate(node_names)}
    branch_names: List[str] = [
        element.name for element in circuit
        if isinstance(element, _BRANCH_TYPES)
    ]
    # CCCS / CCVS control currents flow through a named voltage source (or any
    # element with a branch unknown); verify the reference exists.
    branch_lookup = {name.lower() for name in branch_names}
    for element in circuit.elements_of_type(CCCS, CCVS):
        if element.ctrl_source.lower() not in branch_lookup:
            raise FormulationError(
                f"{element.name}: controlling source {element.ctrl_source!r} "
                "must be an element with a branch current (e.g. a voltage source)"
            )

    n_nodes = len(node_names)
    branch_index = {name.lower(): n_nodes + i
                    for i, name in enumerate(branch_names)}

    def node(n):
        return None if n == GROUND else node_index[n]

    return node_names, branch_names, node, branch_index


def build_mna_system(circuit) -> MnaSystem:
    """Assemble the MNA matrices of ``circuit``.

    Raises
    ------
    FormulationError
        For unsupported element types or dangling controlled-source references.
    """
    node_names, branch_names, node, branch_index = system_structure(circuit)
    dimension = len(node_names) + len(branch_names)
    constant = SparseMatrix(dimension, dimension)
    dynamic = SparseMatrix(dimension, dimension)
    rhs = np.zeros(dimension, dtype=complex)

    def rhs_add(index, value):
        rhs[index] += value

    for element in circuit:
        stamp_element(element, constant, dynamic, rhs_add, node, branch_index)

    return MnaSystem(circuit, node_names, branch_names, constant, dynamic, rhs)


def system_sparsity(system) -> "SparsitySummary":
    """Structural summary of a circuit's MNA system — the big-net preflight.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    The summary reads the cached union structure the sparse sweep path
    iterates over, so calling it before a sweep costs nothing extra; the
    generator benchmarks and the scaling tests use it to label workloads by
    actual unknown count and density rather than nominal grid size.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    keys, __, ___ = system.merged_sparse_structure()
    dimension = system.dimension
    key_set = set(keys)
    off_diagonal = sum(1 for row, col in keys if row != col)
    return SparsitySummary(
        dimension=dimension,
        nnz=len(keys),
        density=(len(keys) / (dimension * dimension) if dimension else 0.0),
        off_diagonal=off_diagonal,
        structurally_symmetric=all(
            (col, row) in key_set for row, col in keys if row != col),
    )


@dataclasses.dataclass(frozen=True)
class SparsitySummary:
    """Structure statistics of one MNA system (see :func:`system_sparsity`)."""

    dimension: int
    nnz: int
    density: float
    off_diagonal: int
    structurally_symmetric: bool

    def __repr__(self):
        return (f"SparsitySummary(n={self.dimension}, nnz={self.nnz}, "
                f"density={self.density:.2e}, "
                f"symmetric={self.structurally_symmetric})")
