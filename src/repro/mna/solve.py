"""Frequency-domain solution of MNA systems.

:func:`ac_solve` handles one complex frequency; :func:`ac_sweep` handles a
whole grid at once, assembling the constant (``G``) and frequency-proportional
(``C``) parts a single time and then reusing the factorization structure
across points: dense systems go through the vectorized
:func:`~repro.linalg.dense.batched_dense_lu`, sparse systems run the pivot
search once and refactor numerically everywhere else.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import FormulationError, SingularMatrixError
from ..linalg.dense import batched_dense_lu, dense_lu, sweep_chunk_size
from ..linalg.lu import sparse_lu, sparse_lu_reusing
from ..linalg.sparse import SparseMatrix, merged_structure
from .builder import MnaSystem, build_mna_system

__all__ = ["ac_solve", "ac_sweep", "operating_transfer"]

#: Systems at or below this dimension use the dense LU.
_DENSE_CUTOFF = 150


def _factor(matrix, method="auto"):
    if method == "dense" or (method == "auto" and matrix.n_rows <= _DENSE_CUTOFF):
        return dense_lu(matrix)
    if method in ("auto", "sparse"):
        return sparse_lu(matrix)
    raise FormulationError(f"unknown factorization method {method!r}")


def ac_solve(system: Union[MnaSystem, "object"], s, method="auto") -> np.ndarray:
    """Solve the MNA system at complex frequency ``s`` with its own excitation.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    Returns the full unknown vector (node voltages then branch currents).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    matrix = system.assemble(s)
    factorization = _factor(matrix, method)
    return factorization.solve(system.rhs)


def ac_sweep(system: Union[MnaSystem, "object"], s_values,
             method="auto") -> np.ndarray:
    """Solve the MNA system at every complex frequency of ``s_values``.

    The system is built (at most) once and the sweep reuses everything that
    does not depend on the frequency: the dense path stacks all matrices and
    factors them in one vectorized pass, the sparse path derives the pivot
    order at the first point and refactors numerically at the others (with a
    fresh factorization as fallback when a reused pivot degrades).

    Parameters
    ----------
    system:
        An :class:`MnaSystem` or a circuit (built on the fly).
    s_values:
        Sequence of complex frequencies.
    method:
        ``"auto"`` (dense at or below 150 unknowns), ``"dense"`` or
        ``"sparse"``.

    Returns
    -------
    numpy.ndarray
        ``(K, dimension)`` complex solutions, one row per frequency, in input
        order (node voltages then branch currents, as in :func:`ac_solve`).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    s = np.asarray(list(s_values), dtype=complex)
    if s.size == 0:
        return np.zeros((0, system.dimension), dtype=complex)
    if method == "dense" or (method == "auto"
                             and system.dimension <= _DENSE_CUTOFF):
        chunk = sweep_chunk_size(system.dimension)
        solutions = np.zeros((len(s), system.dimension), dtype=complex)
        for start in range(0, len(s), chunk):
            block = s[start:start + chunk]
            factorization = batched_dense_lu(system.assemble_batch(block),
                                             overwrite=True)
            if factorization.singular.any():
                index = int(np.argmax(factorization.singular))
                raise SingularMatrixError(
                    f"MNA matrix is singular at sweep point {start + index} "
                    f"(s={complex(block[index])!r})"
                )
            solutions[start:start + chunk] = factorization.solve(system.rhs)
        return solutions
    if method not in ("auto", "sparse"):
        raise FormulationError(f"unknown factorization method {method!r}")
    # Collect the union sparsity structure once; per point only the values
    # change (G + s_k C over the same keys), and the pivot order found at the
    # first point is reused by numeric refactorization wherever possible.
    keys, constant_values, dynamic_values = merged_structure(system.constant,
                                                             system.dynamic)
    pattern = None
    solutions = np.zeros((len(s), system.dimension), dtype=complex)
    for k, point in enumerate(s):
        values = constant_values + complex(point) * dynamic_values
        matrix = SparseMatrix.from_entries(
            system.dimension, system.dimension, zip(keys, values.tolist())
        )
        factorization, pattern, __ = sparse_lu_reusing(matrix, pattern)
        solutions[k] = factorization.solve(system.rhs)
    return solutions


def operating_transfer(system: Union[MnaSystem, "object"], s, output,
                       method="auto") -> complex:
    """Output voltage at complex frequency ``s`` with the circuit's own sources.

    Parameters
    ----------
    output:
        Node name, or ``(positive, negative)`` pair for differential outputs.

    Notes
    -----
    With the input sources set to a unit (or ±half for differential drives)
    AC value, the returned voltage *is* the transfer function value — this is
    exactly what an electrical simulator's ``.AC`` analysis reports and serves
    as the Fig. 2 reference curve.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    solution = ac_solve(system, s, method=method)
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return (system.node_voltage(solution, positive)
                - system.node_voltage(solution, negative))
    return system.node_voltage(solution, output)
