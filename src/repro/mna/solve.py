"""Frequency-domain solution of MNA systems."""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import FormulationError
from ..linalg.dense import dense_lu
from ..linalg.lu import sparse_lu
from .builder import MnaSystem, build_mna_system

__all__ = ["ac_solve", "operating_transfer"]

#: Systems at or below this dimension use the dense LU.
_DENSE_CUTOFF = 150


def _factor(matrix, method="auto"):
    if method == "dense" or (method == "auto" and matrix.n_rows <= _DENSE_CUTOFF):
        return dense_lu(matrix)
    if method in ("auto", "sparse"):
        return sparse_lu(matrix)
    raise FormulationError(f"unknown factorization method {method!r}")


def ac_solve(system: Union[MnaSystem, "object"], s, method="auto") -> np.ndarray:
    """Solve the MNA system at complex frequency ``s`` with its own excitation.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    Returns the full unknown vector (node voltages then branch currents).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    matrix = system.assemble(s)
    factorization = _factor(matrix, method)
    return factorization.solve(system.rhs)


def operating_transfer(system: Union[MnaSystem, "object"], s, output,
                       method="auto") -> complex:
    """Output voltage at complex frequency ``s`` with the circuit's own sources.

    Parameters
    ----------
    output:
        Node name, or ``(positive, negative)`` pair for differential outputs.

    Notes
    -----
    With the input sources set to a unit (or ±half for differential drives)
    AC value, the returned voltage *is* the transfer function value — this is
    exactly what an electrical simulator's ``.AC`` analysis reports and serves
    as the Fig. 2 reference curve.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    solution = ac_solve(system, s, method=method)
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return (system.node_voltage(solution, positive)
                - system.node_voltage(solution, negative))
    return system.node_voltage(solution, output)
