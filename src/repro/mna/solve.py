"""Frequency-domain solution of MNA systems.

:func:`ac_solve` handles one complex frequency; :func:`ac_sweep` and
:func:`ac_factor_sweep` handle whole grids through the shared sweep engine
(:mod:`repro.engine.sweep`), which assembles the constant (``G``) and
frequency-proportional (``C``) parts a single time and reuses the
factorization structure across points: dense systems go through the
vectorized :func:`~repro.linalg.dense.batched_dense_lu`, sparse systems run
the pivot search once and refactor numerically everywhere else.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..engine.sweep import SweepEngine, SweepFactors
from ..errors import FormulationError
from ..linalg.config import use_dense
from ..linalg.dense import dense_lu
from ..linalg.lu import sparse_lu
from .builder import MnaSystem, build_mna_system

__all__ = ["ac_solve", "ac_sweep", "ac_factor_sweep", "SweepFactorization",
           "operating_transfer"]

#: Noun used in singular-matrix diagnostics from MNA sweeps.
_SINGULAR_LABEL = "MNA matrix"


def _factor(matrix, method="auto"):
    if method not in ("auto", "dense", "sparse"):
        raise FormulationError(f"unknown factorization method {method!r}")
    if use_dense(matrix.n_rows, method):
        return dense_lu(matrix)
    return sparse_lu(matrix)


def ac_solve(system: Union[MnaSystem, "object"], s, method="auto") -> np.ndarray:
    """Solve the MNA system at complex frequency ``s`` with its own excitation.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    Returns the full unknown vector (node voltages then branch currents).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    matrix = system.assemble(s)
    factorization = _factor(matrix, method)
    return factorization.solve(system.rhs)


def ac_sweep(system: Union[MnaSystem, "object"], s_values,
             method="auto") -> np.ndarray:
    """Solve the MNA system at every complex frequency of ``s_values``.

    The system is built (at most) once and the sweep runs through
    :class:`~repro.engine.sweep.SweepEngine`, which reuses everything that
    does not depend on the frequency: the dense path stacks all matrices and
    factors them in one vectorized pass, the sparse path derives the pivot
    order at the first point and refactors numerically at the others (with a
    fresh factorization as fallback when a reused pivot degrades).

    Parameters
    ----------
    system:
        An :class:`MnaSystem` or a circuit (built on the fly).
    s_values:
        Sequence of complex frequencies.
    method:
        ``"auto"`` (dense at or below the configured
        :func:`~repro.linalg.config.dense_cutoff`), ``"dense"`` or
        ``"sparse"``.

    Returns
    -------
    numpy.ndarray
        ``(K, dimension)`` complex solutions, one row per frequency, in input
        order (node voltages then branch currents, as in :func:`ac_solve`).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    s = np.asarray(list(s_values), dtype=complex)
    engine = SweepEngine(system, method=method,
                         singular_label=_SINGULAR_LABEL)
    return engine.solve_sweep(s, system.rhs)


class SweepFactorization(SweepFactors):
    """Cached LU factors of ``A(s_k)`` across one whole MNA frequency sweep.

    The MNA-flavoured :class:`~repro.engine.sweep.SweepFactors`: constructing
    it factors the system at every sweep point through the shared engine and
    keeps the factors for O(n²)-per-right-hand-side reuse (the rank-1
    sensitivity screening's baseline).  Build via :func:`ac_factor_sweep`.

    Raises
    ------
    SingularMatrixError
        On construction, when the baseline matrix is singular at some sweep
        point (matching :func:`ac_sweep`).
    """

    def __init__(self, system, s_values, method="auto"):
        engine = SweepEngine(system, method=method,
                             singular_label=_SINGULAR_LABEL)
        factors = engine.factor_sweep(np.asarray(list(s_values),
                                                 dtype=complex))
        super().__init__(system, factors.s_values, factors.is_dense,
                         factors.factors)

    @property
    def system(self):
        """The underlying :class:`MnaSystem` (alias of ``formulation``)."""
        return self.formulation


def ac_factor_sweep(system: Union[MnaSystem, "object"], s_values,
                    method="auto") -> SweepFactorization:
    """Factor the MNA system at every point of a sweep and keep the factors.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    See :class:`SweepFactorization`.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    return SweepFactorization(system, s_values, method=method)


def operating_transfer(system: Union[MnaSystem, "object"], s, output,
                       method="auto") -> complex:
    """Output voltage at complex frequency ``s`` with the circuit's own sources.

    Parameters
    ----------
    output:
        Node name, or ``(positive, negative)`` pair for differential outputs.

    Notes
    -----
    With the input sources set to a unit (or ±half for differential drives)
    AC value, the returned voltage *is* the transfer function value — this is
    exactly what an electrical simulator's ``.AC`` analysis reports and serves
    as the Fig. 2 reference curve.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    solution = ac_solve(system, s, method=method)
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return (system.node_voltage(solution, positive)
                - system.node_voltage(solution, negative))
    return system.node_voltage(solution, output)
