"""Frequency-domain solution of MNA systems.

:func:`ac_solve` handles one complex frequency; :func:`ac_sweep` handles a
whole grid at once, assembling the constant (``G``) and frequency-proportional
(``C``) parts a single time and then reusing the factorization structure
across points: dense systems go through the vectorized
:func:`~repro.linalg.dense.batched_dense_lu`, sparse systems run the pivot
search once and refactor numerically everywhere else.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import FormulationError, SingularMatrixError
from ..linalg.dense import batched_dense_lu, dense_lu, sweep_chunk_size
from ..linalg.lu import sparse_lu, sparse_lu_reusing
from ..linalg.sparse import SparseMatrix, merged_structure
from .builder import MnaSystem, build_mna_system

__all__ = ["ac_solve", "ac_sweep", "ac_factor_sweep", "SweepFactorization",
           "operating_transfer"]

#: Systems at or below this dimension use the dense LU.
_DENSE_CUTOFF = 150


def _factor(matrix, method="auto"):
    if method == "dense" or (method == "auto" and matrix.n_rows <= _DENSE_CUTOFF):
        return dense_lu(matrix)
    if method in ("auto", "sparse"):
        return sparse_lu(matrix)
    raise FormulationError(f"unknown factorization method {method!r}")


def ac_solve(system: Union[MnaSystem, "object"], s, method="auto") -> np.ndarray:
    """Solve the MNA system at complex frequency ``s`` with its own excitation.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    Returns the full unknown vector (node voltages then branch currents).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    matrix = system.assemble(s)
    factorization = _factor(matrix, method)
    return factorization.solve(system.rhs)


def ac_sweep(system: Union[MnaSystem, "object"], s_values,
             method="auto") -> np.ndarray:
    """Solve the MNA system at every complex frequency of ``s_values``.

    The system is built (at most) once and the sweep reuses everything that
    does not depend on the frequency: the dense path stacks all matrices and
    factors them in one vectorized pass, the sparse path derives the pivot
    order at the first point and refactors numerically at the others (with a
    fresh factorization as fallback when a reused pivot degrades).

    Parameters
    ----------
    system:
        An :class:`MnaSystem` or a circuit (built on the fly).
    s_values:
        Sequence of complex frequencies.
    method:
        ``"auto"`` (dense at or below 150 unknowns), ``"dense"`` or
        ``"sparse"``.

    Returns
    -------
    numpy.ndarray
        ``(K, dimension)`` complex solutions, one row per frequency, in input
        order (node voltages then branch currents, as in :func:`ac_solve`).
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    s = np.asarray(list(s_values), dtype=complex)
    if s.size == 0:
        return np.zeros((0, system.dimension), dtype=complex)
    if method == "dense" or (method == "auto"
                             and system.dimension <= _DENSE_CUTOFF):
        chunk = sweep_chunk_size(system.dimension)
        solutions = np.zeros((len(s), system.dimension), dtype=complex)
        for start in range(0, len(s), chunk):
            block = s[start:start + chunk]
            factorization = batched_dense_lu(system.assemble_batch(block),
                                             overwrite=True)
            if factorization.singular.any():
                index = int(np.argmax(factorization.singular))
                raise SingularMatrixError(
                    f"MNA matrix is singular at sweep point {start + index} "
                    f"(s={complex(block[index])!r})"
                )
            solutions[start:start + chunk] = factorization.solve(system.rhs)
        return solutions
    if method not in ("auto", "sparse"):
        raise FormulationError(f"unknown factorization method {method!r}")
    # Collect the union sparsity structure once; per point only the values
    # change (G + s_k C over the same keys), and the pivot order found at the
    # first point is reused by numeric refactorization wherever possible.
    keys, constant_values, dynamic_values = merged_structure(system.constant,
                                                             system.dynamic)
    pattern = None
    solutions = np.zeros((len(s), system.dimension), dtype=complex)
    for k, point in enumerate(s):
        values = constant_values + complex(point) * dynamic_values
        matrix = SparseMatrix.from_entries(
            system.dimension, system.dimension, zip(keys, values.tolist())
        )
        factorization, pattern, __ = sparse_lu_reusing(matrix, pattern)
        solutions[k] = factorization.solve(system.rhs)
    return solutions


class SweepFactorization:
    """Cached LU factors of ``A(s_k)`` across one whole frequency sweep.

    Where :func:`ac_sweep` factors, solves once and discards, this object
    *keeps* the factors — the dense path as chunked
    :class:`~repro.linalg.dense.BatchedDenseLU` stacks (same chunking as
    :func:`ac_sweep`, so solutions are bit-identical to it), the sparse path
    as one :class:`~repro.linalg.lu.LUFactorization` per point sharing the
    first point's pivot order via
    :func:`~repro.linalg.lu.sparse_lu_reusing`.  Repeated solves against the
    same sweep — the baseline plus one solve per screened element in the
    rank-1 sensitivity engine — then cost O(n²) per right-hand side instead
    of an O(n³) refactorization.

    Build via :func:`ac_factor_sweep`.

    Raises
    ------
    SingularMatrixError
        On construction, when the baseline matrix is singular at some sweep
        point (matching :func:`ac_sweep`).
    """

    def __init__(self, system, s_values, method="auto"):
        self.system = system
        self.s_values = np.asarray(list(s_values), dtype=complex)
        dense = (method == "dense"
                 or (method == "auto" and system.dimension <= _DENSE_CUTOFF))
        if not dense and method not in ("auto", "sparse"):
            raise FormulationError(f"unknown factorization method {method!r}")
        self.is_dense = dense
        #: Dense path: list of ``(start_index, BatchedDenseLU)`` chunks;
        #: sparse path: one LUFactorization per sweep point.
        self.factors = []
        s = self.s_values
        if dense:
            chunk = sweep_chunk_size(system.dimension)
            for start in range(0, len(s), chunk):
                block = s[start:start + chunk]
                factorization = batched_dense_lu(system.assemble_batch(block),
                                                 overwrite=True)
                if factorization.singular.any():
                    index = int(np.argmax(factorization.singular))
                    raise SingularMatrixError(
                        f"MNA matrix is singular at sweep point "
                        f"{start + index} (s={complex(block[index])!r})"
                    )
                self.factors.append((start, factorization))
        else:
            keys, constant_values, dynamic_values = merged_structure(
                system.constant, system.dynamic)
            pattern = None
            for point in s:
                values = constant_values + complex(point) * dynamic_values
                matrix = SparseMatrix.from_entries(
                    system.dimension, system.dimension,
                    zip(keys, values.tolist())
                )
                factorization, pattern, __ = sparse_lu_reusing(matrix, pattern)
                self.factors.append(factorization)

    @property
    def num_points(self):
        """Number of sweep points covered by the cached factors."""
        return len(self.s_values)

    def solve(self, rhs) -> np.ndarray:
        """Solve ``A(s_k) x_k = rhs`` at every point; returns ``(K, n)``."""
        rhs = np.asarray(rhs, dtype=complex)
        solutions = np.zeros((len(self.s_values), self.system.dimension),
                             dtype=complex)
        if self.is_dense:
            for start, factorization in self.factors:
                solutions[start:start + factorization.batch] = (
                    factorization.solve(rhs))
        else:
            for k, factorization in enumerate(self.factors):
                solutions[k] = factorization.solve(rhs)
        return solutions

    def solve_columns(self, columns) -> np.ndarray:
        """Solve ``A(s_k) W = U`` for an ``(n, m)`` column stack at every point.

        Returns ``(K, n, m)`` — one solved column per right-hand-side column
        per sweep point.  The rank-1 screening pushes every element's
        incidence vector through the cached factors with a single call.
        """
        columns = np.asarray(columns, dtype=complex)
        if columns.ndim != 2 or columns.shape[0] != self.system.dimension:
            raise FormulationError(
                f"columns must be ({self.system.dimension}, m), "
                f"got {columns.shape}"
            )
        solutions = np.zeros(
            (len(self.s_values), self.system.dimension, columns.shape[1]),
            dtype=complex)
        if self.is_dense:
            for start, factorization in self.factors:
                solutions[start:start + factorization.batch] = (
                    factorization.solve_matrix(columns))
        else:
            for k, factorization in enumerate(self.factors):
                solutions[k] = factorization.solve_many(columns)
        return solutions


def ac_factor_sweep(system: Union[MnaSystem, "object"], s_values,
                    method="auto") -> SweepFactorization:
    """Factor the MNA system at every point of a sweep and keep the factors.

    ``system`` may be an :class:`MnaSystem` or a circuit (built on the fly).
    See :class:`SweepFactorization`.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    return SweepFactorization(system, s_values, method=method)


def operating_transfer(system: Union[MnaSystem, "object"], s, output,
                       method="auto") -> complex:
    """Output voltage at complex frequency ``s`` with the circuit's own sources.

    Parameters
    ----------
    output:
        Node name, or ``(positive, negative)`` pair for differential outputs.

    Notes
    -----
    With the input sources set to a unit (or ±half for differential drives)
    AC value, the returned voltage *is* the transfer function value — this is
    exactly what an electrical simulator's ``.AC`` analysis reports and serves
    as the Fig. 2 reference curve.
    """
    if not isinstance(system, MnaSystem):
        system = build_mna_system(system)
    solution = ac_solve(system, s, method=method)
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return (system.node_voltage(solution, positive)
                - system.node_voltage(solution, negative))
    return system.node_voltage(solution, output)
