"""Modified nodal analysis (MNA) — the general-purpose formulation.

The interpolation engine uses the restricted admittance-form nodal
formulation (:mod:`repro.nodal`) because the scale-factor bookkeeping demands
it.  Everything else — the numeric AC simulator standing in for the paper's
"commercial electrical simulator" (Fig. 2), cross-checks, SBG what-if
evaluations — uses the full MNA formulation in this package, which supports
ideal voltage sources, all four controlled-source types and inductors without
any transformation.
"""

from .builder import MnaSystem, build_mna_system, system_dimension
from .solve import (ac_factor_sweep, ac_solve, ac_sweep, operating_transfer,
                    SweepFactorization)

__all__ = ["MnaSystem", "build_mna_system", "system_dimension", "ac_solve",
           "ac_sweep", "ac_factor_sweep", "SweepFactorization",
           "operating_transfer"]
