"""Numerical reference generation for symbolic analysis of large analog circuits.

Reproduction of García-Vargas, Galán, Fernández and Rodríguez-Vázquez,
*"An algorithm for numerical reference generation in symbolic analysis of
large analog circuits"*, DATE 1997.

The package is organised in layers:

* structural substrates — :mod:`repro.netlist`, :mod:`repro.devices`,
  :mod:`repro.linalg`, :mod:`repro.nodal`, :mod:`repro.mna`, with the shared
  assembly/factorization core and the cached analysis session in
  :mod:`repro.engine`,
* the paper's contribution — :mod:`repro.interpolation` (polynomial
  interpolation with adaptive frequency / conductance scaling),
* consumers and evaluation — :mod:`repro.symbolic` (SAG / SDG / SBG),
  :mod:`repro.analysis` (numeric AC simulator, Bode comparison, Monte Carlo
  statistics), :mod:`repro.montecarlo` (tolerance ensembles over the sweep
  core), :mod:`repro.circuits` (benchmark circuits), :mod:`repro.reporting`
  (experiment harness).

Quickstart
----------
::

    from repro import build_rc_ladder, generate_reference

    circuit, spec = build_rc_ladder(stages=12)
    reference = generate_reference(circuit, spec)
    print(reference.summary())
    magnitude_db, phase_deg = reference.bode([1e3, 1e4, 1e5])
"""

from .xfloat import XFloat
from .netlist import (
    Circuit,
    parse_netlist,
    parse_netlist_file,
    write_netlist,
    validate_circuit,
    to_admittance_form,
)
from .engine import AnalysisSession
from .montecarlo import (
    ParameterSpace,
    Tolerance,
    compiled_ensemble_sweep,
    ensemble_sweep,
)
from .symbolic import CompiledTransferModel, compile_transfer_model
from .nodal import TransferSpec, NetworkFunctionSampler, BatchSampler
from .interpolation import (
    AdaptiveOptions,
    AdaptiveScalingInterpolator,
    NumericalReference,
    Polynomial,
    RationalFunction,
    ScaleFactors,
    generate_reference,
    initial_scale_factors,
    interpolate_network_function,
)
from .circuits import (
    build_rc_ladder,
    build_positive_feedback_ota,
    build_ua741,
    build_ua741_macro,
    build_miller_ota,
    build_cascode_amplifier,
)

__version__ = "1.0.0"

__all__ = [
    "XFloat",
    "Circuit",
    "parse_netlist",
    "parse_netlist_file",
    "write_netlist",
    "validate_circuit",
    "to_admittance_form",
    "AnalysisSession",
    "Tolerance",
    "ParameterSpace",
    "ensemble_sweep",
    "compiled_ensemble_sweep",
    "CompiledTransferModel",
    "compile_transfer_model",
    "TransferSpec",
    "NetworkFunctionSampler",
    "BatchSampler",
    "AdaptiveOptions",
    "AdaptiveScalingInterpolator",
    "NumericalReference",
    "Polynomial",
    "RationalFunction",
    "ScaleFactors",
    "generate_reference",
    "initial_scale_factors",
    "interpolate_network_function",
    "build_rc_ladder",
    "build_positive_feedback_ota",
    "build_ua741",
    "build_ua741_macro",
    "build_miller_ota",
    "build_cascode_amplifier",
    "__version__",
]
