"""Extended-range floating point numbers.

The denormalized network-function coefficients of large analog circuits lie far
outside the range of IEEE double precision: the µA741 denominator coefficients
reported in the paper span ``-1.6e-90`` (s^0) down to ``-1.1e-522`` (s^48),
while IEEE doubles underflow at roughly ``1e-308``.  Inside the interpolation
engine coefficients only ever exist as *normalized* values together with the
frequency / conductance scale factors, but user-facing results (and the SDG /
SBG error-control consumers) need the true magnitudes.

:class:`XFloat` stores a number as ``mantissa * 10**exponent`` with a float
mantissa normalized to ``[1, 10)`` (or ``(-10, -1]``) and an integer decimal
exponent, giving an essentially unbounded dynamic range while keeping ordinary
double-precision accuracy in the mantissa.

The class supports the arithmetic needed by the library (multiplication,
division, addition, powers, comparisons, ``abs``, ``log10``) and converts to
``float`` when the value is representable.
"""

from __future__ import annotations

import math
from typing import Union

__all__ = ["XFloat", "xfloat", "log10_abs"]

Number = Union[int, float, "XFloat"]

#: Mantissas closer to zero than this are treated as exactly zero.
_ZERO_EPS = 0.0


class XFloat:
    """A floating-point value ``mantissa * 10**exponent`` with unbounded range.

    Parameters
    ----------
    mantissa:
        Any finite float (it is renormalized into ``[1, 10)`` by magnitude).
    exponent:
        Integer power of ten.

    Notes
    -----
    Instances are immutable and hashable.  Arithmetic with plain ``int`` /
    ``float`` operands is supported and returns :class:`XFloat`.
    """

    __slots__ = ("_m", "_e")

    def __init__(self, mantissa=0.0, exponent=0):
        if isinstance(mantissa, XFloat):
            mantissa, extra = mantissa._m, mantissa._e
            exponent = exponent + extra
        mantissa = float(mantissa)
        if math.isnan(mantissa) or math.isinf(mantissa):
            raise ValueError(f"XFloat mantissa must be finite, got {mantissa!r}")
        if mantissa == _ZERO_EPS:
            self._m = 0.0
            self._e = 0
            return
        shift = int(math.floor(math.log10(abs(mantissa))))
        if -308 < shift < 308:
            mantissa = mantissa / 10.0**shift
        else:
            # Subnormal or near-overflow inputs: 10**shift is not representable,
            # so renormalize through logarithms instead of a direct division.
            mantissa = math.copysign(
                10.0 ** (math.log10(abs(mantissa)) - shift), mantissa
            )
        # Guard against log10 edge cases (e.g. mantissa exactly 10 after division).
        if abs(mantissa) >= 10.0:
            mantissa /= 10.0
            shift += 1
        elif abs(mantissa) < 1.0:
            mantissa *= 10.0
            shift -= 1
        self._m = mantissa
        self._e = int(exponent) + shift

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_float(cls, value):
        """Build an :class:`XFloat` from a plain float."""
        return cls(value, 0)

    @classmethod
    def from_log10(cls, log10_magnitude, sign=1.0):
        """Build an :class:`XFloat` with ``|x| = 10**log10_magnitude``.

        Parameters
        ----------
        log10_magnitude:
            Base-10 logarithm of the magnitude (any float).
        sign:
            Sign of the result (only its sign is used).
        """
        exponent = int(math.floor(log10_magnitude))
        mantissa = 10.0 ** (log10_magnitude - exponent)
        if sign < 0:
            mantissa = -mantissa
        return cls(mantissa, exponent)

    @classmethod
    def zero(cls):
        """The exact zero value."""
        return cls(0.0, 0)

    @classmethod
    def _raw(cls, mantissa, exponent):
        """Construct without renormalizing — ``mantissa`` MUST already be
        normalized to ``[1, 10)`` by magnitude (or exactly 0.0 with exponent
        0).  Internal fast path for bulk construction in
        :mod:`repro.symbolic.kernel`."""
        value = object.__new__(cls)
        value._m = mantissa
        value._e = exponent
        return value

    # -- accessors ---------------------------------------------------------

    @property
    def mantissa(self):
        """Normalized mantissa in ``[1, 10)`` by magnitude (0.0 for zero)."""
        return self._m

    @property
    def exponent(self):
        """Integer decimal exponent."""
        return self._e

    def is_zero(self):
        """True when the value is exactly zero."""
        return self._m == 0.0

    def sign(self):
        """Return -1.0, 0.0 or +1.0."""
        if self._m > 0:
            return 1.0
        if self._m < 0:
            return -1.0
        return 0.0

    def log10(self):
        """Return ``log10(|x|)`` as a float.

        Raises
        ------
        ValueError
            If the value is zero.
        """
        if self.is_zero():
            raise ValueError("log10 of zero XFloat")
        return math.log10(abs(self._m)) + self._e

    def __float__(self):
        if self.is_zero():
            return 0.0
        if -320 < self._e < 308:
            return self._m * 10.0**self._e
        if self._e >= 308:
            return math.inf if self._m > 0 else -math.inf
        return 0.0 if self._m > 0 else -0.0

    def to_float(self):
        """Convert to ``float`` (may overflow to inf / underflow to 0)."""
        return float(self)

    # -- arithmetic --------------------------------------------------------

    @staticmethod
    def _coerce(value):
        if isinstance(value, XFloat):
            return value
        if isinstance(value, (int, float)):
            return XFloat(value, 0)
        return NotImplemented

    def __mul__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if self.is_zero() or other.is_zero():
            return XFloat.zero()
        return XFloat(self._m * other._m, self._e + other._e)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if other.is_zero():
            raise ZeroDivisionError("XFloat division by zero")
        if self.is_zero():
            return XFloat.zero()
        return XFloat(self._m / other._m, self._e - other._e)

    def __rtruediv__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other.__truediv__(self)

    def __add__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        if self.is_zero():
            return other
        if other.is_zero():
            return self
        # Align to the larger exponent; a difference beyond ~30 decades cannot
        # change the larger operand at double precision.
        if self._e >= other._e:
            big, small = self, other
        else:
            big, small = other, self
        shift = small._e - big._e
        if shift < -30:
            return big
        return XFloat(big._m + small._m * 10.0**shift, big._e)

    __radd__ = __add__

    def __sub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return self.__add__(-other)

    def __rsub__(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        return other.__add__(-self)

    def __neg__(self):
        if self.is_zero():
            return XFloat.zero()
        return XFloat(-self._m, self._e)

    def __abs__(self):
        if self._m < 0:
            return XFloat(-self._m, self._e)
        return self

    def __pow__(self, power):
        if not isinstance(power, int):
            raise TypeError("XFloat only supports integer powers")
        if power == 0:
            return XFloat(1.0, 0)
        if self.is_zero():
            if power < 0:
                raise ZeroDivisionError("zero XFloat to a negative power")
            return XFloat.zero()
        log_mag = self.log10() * power
        sign = 1.0
        if self._m < 0 and power % 2 == 1:
            sign = -1.0
        return XFloat.from_log10(log_mag, sign)

    # -- comparisons -------------------------------------------------------

    def _cmp(self, other):
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        diff = self - other
        return diff.sign()

    def __eq__(self, other):
        result = self._cmp(other)
        if result is NotImplemented:
            return NotImplemented
        return result == 0.0

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return NotImplemented
        return not result

    def __lt__(self, other):
        result = self._cmp(other)
        if result is NotImplemented:
            return NotImplemented
        return result < 0

    def __le__(self, other):
        result = self._cmp(other)
        if result is NotImplemented:
            return NotImplemented
        return result <= 0

    def __gt__(self, other):
        result = self._cmp(other)
        if result is NotImplemented:
            return NotImplemented
        return result > 0

    def __ge__(self, other):
        result = self._cmp(other)
        if result is NotImplemented:
            return NotImplemented
        return result >= 0

    def __hash__(self):
        return hash((round(self._m, 12), self._e))

    def __bool__(self):
        return not self.is_zero()

    # -- helpers -----------------------------------------------------------

    def approx_equal(self, other, rel_tol=1e-9):
        """Relative comparison robust to exponent differences."""
        other = self._coerce(other)
        if self.is_zero() and other.is_zero():
            return True
        if self.is_zero() or other.is_zero():
            return False
        if self.sign() != other.sign():
            return False
        return abs(self.log10() - other.log10()) <= -math.log10(1.0 - rel_tol) + rel_tol

    def __repr__(self):
        return f"XFloat({self._m!r}, {self._e})"

    def __str__(self):
        if self.is_zero():
            return "0"
        return f"{self._m:.6g}e{self._e:+d}"

    def format(self, digits=5):
        """Format with a fixed number of significant digits, e.g. ``-4.3694e-176``."""
        if self.is_zero():
            return "0"
        return f"{self._m:.{digits}g}e{self._e:+03d}"


def xfloat(value, exponent=0):
    """Convenience constructor: ``xfloat(3.2, -100)`` → ``3.2e-100``."""
    return XFloat(value, exponent)


def log10_abs(value):
    """Return ``log10(|value|)`` for floats or :class:`XFloat`, -inf for zero."""
    if isinstance(value, XFloat):
        if value.is_zero():
            return -math.inf
        return value.log10()
    value = float(value)
    if value == 0.0:
        return -math.inf
    return math.log10(abs(value))
