"""MOSFET small-signal model.

The model is the standard saturation-region small-signal equivalent used in
analog design (level-1 / square-law flavour):

* transconductance ``gm`` from gate to channel,
* bulk transconductance ``gmb``,
* output conductance ``gds``,
* capacitances ``cgs``, ``cgd``, ``cgb``, ``cdb``, ``csb``.

Parameters can be given directly (when reproducing a published operating
point) or derived from a square-law operating point with
:meth:`MosfetSmallSignal.from_operating_point`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import DeviceModelError

__all__ = ["MosfetSmallSignal"]


@dataclasses.dataclass(frozen=True)
class MosfetSmallSignal:
    """Small-signal parameters of a MOSFET at a DC operating point.

    All conductances are in siemens, capacitances in farads.  ``polarity`` is
    ``"nmos"`` or ``"pmos"``; it does not change the small-signal equations
    (the incremental model is sign-symmetric) but is kept for reporting.
    """

    gm: float
    gds: float
    cgs: float
    cgd: float
    gmb: float = 0.0
    cgb: float = 0.0
    cdb: float = 0.0
    csb: float = 0.0
    polarity: str = "nmos"

    def __post_init__(self):
        if self.gm < 0.0:
            raise DeviceModelError("MOSFET gm must be non-negative")
        if self.gds < 0.0:
            raise DeviceModelError("MOSFET gds must be non-negative")
        for cap_name in ("cgs", "cgd", "cgb", "cdb", "csb"):
            if getattr(self, cap_name) < 0.0:
                raise DeviceModelError(f"MOSFET {cap_name} must be non-negative")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_params(cls, params: Dict[str, float], polarity="nmos"):
        """Build from a flat parameter dictionary (``.model`` card contents).

        Recognized keys: ``gm, gds, gmb, cgs, cgd, cgb, cdb, csb`` for direct
        specification, or ``id, vov, lambda, gamma_eff, cox_w_l, tof`` style
        operating-point keys handled by :meth:`from_operating_point` when
        ``gm`` is absent.
        """
        params = {k.lower(): float(v) for k, v in params.items()}
        if "gm" in params:
            return cls(
                gm=params.get("gm", 0.0),
                gds=params.get("gds", 0.0),
                cgs=params.get("cgs", 0.0),
                cgd=params.get("cgd", 0.0),
                gmb=params.get("gmb", 0.0),
                cgb=params.get("cgb", 0.0),
                cdb=params.get("cdb", 0.0),
                csb=params.get("csb", 0.0),
                polarity=polarity,
            )
        if "id" in params:
            return cls.from_operating_point(
                drain_current=params["id"],
                overdrive=params.get("vov", 0.2),
                channel_length_modulation=params.get("lambda", 0.05),
                cgs=params.get("cgs", 0.0),
                cgd=params.get("cgd", 0.0),
                cgb=params.get("cgb", 0.0),
                cdb=params.get("cdb", 0.0),
                csb=params.get("csb", 0.0),
                bulk_factor=params.get("eta", 0.2),
                polarity=polarity,
            )
        raise DeviceModelError(
            "MOSFET model needs either gm/gds/c* parameters or an operating "
            "point (id, vov, lambda)"
        )

    @classmethod
    def from_operating_point(
        cls,
        drain_current,
        overdrive=0.2,
        channel_length_modulation=0.05,
        cgs=0.0,
        cgd=0.0,
        cgb=0.0,
        cdb=0.0,
        csb=0.0,
        bulk_factor=0.2,
        polarity="nmos",
    ):
        """Square-law small-signal parameters from an operating point.

        ``gm = 2 I_D / V_ov``, ``gds = λ I_D``, ``gmb = η gm``.

        Parameters
        ----------
        drain_current:
            Drain bias current in amperes (absolute value used).
        overdrive:
            Gate overdrive voltage ``V_GS - V_T`` in volts.
        channel_length_modulation:
            λ in 1/V.
        bulk_factor:
            ``gmb / gm`` ratio (typically 0.1–0.3).
        """
        drain_current = abs(float(drain_current))
        if overdrive <= 0.0:
            raise DeviceModelError("overdrive voltage must be positive")
        gm = 2.0 * drain_current / overdrive
        gds = channel_length_modulation * drain_current
        return cls(
            gm=gm,
            gds=gds,
            cgs=cgs,
            cgd=cgd,
            gmb=bulk_factor * gm,
            cgb=cgb,
            cdb=cdb,
            csb=csb,
            polarity=polarity,
        )

    # ------------------------------------------------------------------ #

    def intrinsic_gain(self):
        """``gm / gds`` (infinite when gds is zero)."""
        if self.gds == 0.0:
            return float("inf")
        return self.gm / self.gds

    def transition_frequency(self):
        """Approximate ``f_T = gm / (2π (cgs + cgd))`` in Hz (inf if no caps)."""
        import math

        total = self.cgs + self.cgd
        if total == 0.0:
            return float("inf")
        return self.gm / (2.0 * math.pi * total)

    def as_dict(self):
        """Plain dict of all parameters (for reports)."""
        return dataclasses.asdict(self)
