"""BJT hybrid-π small-signal model.

The hybrid-π model used for the µA741 reproduction contains:

* transconductance ``gm = I_C / V_T``,
* base-emitter conductance ``gpi = gm / β``,
* output conductance ``go = I_C / V_A``,
* base-emitter capacitance ``cpi = gm τ_F + C_je``,
* base-collector capacitance ``cmu`` (junction capacitance),
* optional base spreading resistance ``rb`` and collector-substrate
  capacitance ``ccs``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import DeviceModelError

__all__ = ["BjtSmallSignal", "THERMAL_VOLTAGE"]

#: kT/q at ~300 K, in volts.
THERMAL_VOLTAGE = 0.02585


@dataclasses.dataclass(frozen=True)
class BjtSmallSignal:
    """Small-signal parameters of a bipolar transistor at a DC operating point."""

    gm: float
    gpi: float
    go: float
    cpi: float
    cmu: float
    rb: float = 0.0
    ccs: float = 0.0
    polarity: str = "npn"

    def __post_init__(self):
        if self.gm <= 0.0:
            raise DeviceModelError("BJT gm must be positive")
        if self.gpi < 0.0 or self.go < 0.0:
            raise DeviceModelError("BJT gpi and go must be non-negative")
        for cap_name in ("cpi", "cmu", "ccs"):
            if getattr(self, cap_name) < 0.0:
                raise DeviceModelError(f"BJT {cap_name} must be non-negative")
        if self.rb < 0.0:
            raise DeviceModelError("BJT rb must be non-negative")

    # ------------------------------------------------------------------ #

    @classmethod
    def from_params(cls, params: Dict[str, float], polarity="npn"):
        """Build from a flat parameter dictionary (``.model`` card contents).

        Either direct small-signal values (``gm, gpi, go, cpi, cmu, rb, ccs``)
        or an operating point (``ic`` plus ``beta, va, tf, cje, cmu, rb, ccs``).
        """
        params = {k.lower(): float(v) for k, v in params.items()}
        if "gm" in params:
            return cls(
                gm=params["gm"],
                gpi=params.get("gpi", 0.0),
                go=params.get("go", 0.0),
                cpi=params.get("cpi", 0.0),
                cmu=params.get("cmu", 0.0),
                rb=params.get("rb", 0.0),
                ccs=params.get("ccs", 0.0),
                polarity=polarity,
            )
        if "ic" in params:
            return cls.from_operating_point(
                collector_current=params["ic"],
                beta=params.get("beta", params.get("bf", 200.0)),
                early_voltage=params.get("va", params.get("vaf", 50.0)),
                transit_time=params.get("tf", 0.0),
                cje=params.get("cje", 0.0),
                cmu=params.get("cmu", params.get("cjc", 0.0)),
                rb=params.get("rb", 0.0),
                ccs=params.get("ccs", params.get("cjs", 0.0)),
                polarity=polarity,
            )
        raise DeviceModelError(
            "BJT model needs either gm/gpi/... parameters or an operating "
            "point (ic, beta, va, ...)"
        )

    @classmethod
    def from_operating_point(
        cls,
        collector_current,
        beta=200.0,
        early_voltage=50.0,
        transit_time=0.0,
        cje=0.0,
        cmu=0.0,
        rb=0.0,
        ccs=0.0,
        thermal_voltage=THERMAL_VOLTAGE,
        polarity="npn",
    ):
        """Hybrid-π parameters from a bias point.

        ``gm = I_C / V_T``, ``gpi = gm / β``, ``go = I_C / V_A``,
        ``cpi = gm τ_F + C_je``.
        """
        collector_current = abs(float(collector_current))
        if collector_current <= 0.0:
            raise DeviceModelError("collector current must be non-zero")
        if beta <= 0.0:
            raise DeviceModelError("beta must be positive")
        gm = collector_current / thermal_voltage
        gpi = gm / beta
        go = collector_current / early_voltage if early_voltage > 0.0 else 0.0
        cpi = gm * transit_time + cje
        return cls(
            gm=gm, gpi=gpi, go=go, cpi=cpi, cmu=cmu, rb=rb, ccs=ccs,
            polarity=polarity,
        )

    # ------------------------------------------------------------------ #

    def beta(self):
        """Small-signal current gain ``gm / gpi`` (inf when gpi is zero)."""
        if self.gpi == 0.0:
            return float("inf")
        return self.gm / self.gpi

    def transition_frequency(self):
        """Approximate ``f_T = gm / (2π (cpi + cmu))`` in Hz."""
        import math

        total = self.cpi + self.cmu
        if total == 0.0:
            return float("inf")
        return self.gm / (2.0 * math.pi * total)

    def as_dict(self):
        """Plain dict of all parameters (for reports)."""
        return dataclasses.asdict(self)
