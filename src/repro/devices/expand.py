"""Expansion of device small-signal models into primitive circuit elements.

The expansion functions stamp a device's small-signal equivalent into a
:class:`~repro.netlist.circuit.Circuit` using only admittance-form primitives
(conductors, capacitors, VCCSs), so expanded circuits are directly usable by
the interpolation engine.  Zero-valued parameters are skipped to keep the
element count (and the symbolic term count) minimal.

Element naming convention: ``<device>.<parameter>`` — e.g. expanding MOSFET
``M1`` adds ``M1.gm``, ``M1.gds``, ``M1.cgs`` …  This makes symbolic terms and
SBG rankings readable.
"""

from __future__ import annotations

from ..netlist.circuit import Circuit
from ..netlist.elements import GROUND
from .bjt import BjtSmallSignal
from .diode import DiodeSmallSignal
from .mosfet import MosfetSmallSignal

__all__ = ["expand_mosfet", "expand_bjt", "expand_diode"]


def _add_conductor(circuit, name, a, b, value):
    if value != 0.0 and a != b:
        circuit.add_conductor(name, a, b, value)


def _add_capacitor(circuit, name, a, b, value):
    if value != 0.0 and a != b:
        circuit.add_capacitor(name, a, b, value)


def _add_vccs(circuit, name, a, b, cp, cn, value):
    if value != 0.0 and not (a == b or cp == cn):
        circuit.add_vccs(name, a, b, cp, cn, value)


def expand_mosfet(circuit, name, drain, gate, source, bulk, model):
    """Stamp the small-signal equivalent of a MOSFET into ``circuit``.

    Parameters
    ----------
    circuit:
        Target circuit (modified in place).
    name:
        Device instance name used as the prefix of the created elements.
    drain, gate, source, bulk:
        Terminal node names.
    model:
        A :class:`~repro.devices.mosfet.MosfetSmallSignal`.

    Returns
    -------
    list of str
        Names of the elements that were added.
    """
    if not isinstance(model, MosfetSmallSignal):
        raise TypeError("model must be a MosfetSmallSignal")
    before = set(e.name for e in circuit)
    _add_vccs(circuit, f"{name}.gm", drain, source, gate, source, model.gm)
    _add_vccs(circuit, f"{name}.gmb", drain, source, bulk, source, model.gmb)
    _add_conductor(circuit, f"{name}.gds", drain, source, model.gds)
    _add_capacitor(circuit, f"{name}.cgs", gate, source, model.cgs)
    _add_capacitor(circuit, f"{name}.cgd", gate, drain, model.cgd)
    _add_capacitor(circuit, f"{name}.cgb", gate, bulk, model.cgb)
    _add_capacitor(circuit, f"{name}.cdb", drain, bulk, model.cdb)
    _add_capacitor(circuit, f"{name}.csb", source, bulk, model.csb)
    return [e.name for e in circuit if e.name not in before]


def expand_bjt(circuit, name, collector, base, emitter, model,
               substrate=GROUND):
    """Stamp the hybrid-π equivalent of a BJT into ``circuit``.

    When the model has a non-zero base resistance an internal node
    ``<name>.b`` is created between the external base and the intrinsic base.
    The collector-substrate capacitance ``ccs`` connects the collector to
    ``substrate`` (ground by default, matching a small-signal AC analysis where
    supplies are AC ground).

    Returns
    -------
    list of str
        Names of the elements that were added.
    """
    if not isinstance(model, BjtSmallSignal):
        raise TypeError("model must be a BjtSmallSignal")
    before = set(e.name for e in circuit)
    intrinsic_base = base
    if model.rb > 0.0:
        intrinsic_base = f"{name}.b"
        circuit.add_conductor(f"{name}.gb", base, intrinsic_base, 1.0 / model.rb)
    _add_conductor(circuit, f"{name}.gpi", intrinsic_base, emitter, model.gpi)
    _add_capacitor(circuit, f"{name}.cpi", intrinsic_base, emitter, model.cpi)
    _add_capacitor(circuit, f"{name}.cmu", intrinsic_base, collector, model.cmu)
    _add_vccs(circuit, f"{name}.gm", collector, emitter, intrinsic_base, emitter,
              model.gm)
    _add_conductor(circuit, f"{name}.go", collector, emitter, model.go)
    _add_capacitor(circuit, f"{name}.ccs", collector, substrate, model.ccs)
    return [e.name for e in circuit if e.name not in before]


def expand_diode(circuit, name, anode, cathode, model):
    """Stamp the small-signal equivalent of a diode into ``circuit``.

    Returns
    -------
    list of str
        Names of the elements that were added.
    """
    if not isinstance(model, DiodeSmallSignal):
        raise TypeError("model must be a DiodeSmallSignal")
    before = set(e.name for e in circuit)
    _add_conductor(circuit, f"{name}.gd", anode, cathode, model.gd)
    _add_capacitor(circuit, f"{name}.cd", anode, cathode, model.cd)
    return [e.name for e in circuit if e.name not in before]
