"""Diode small-signal model: junction conductance plus junction capacitance."""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import DeviceModelError
from .bjt import THERMAL_VOLTAGE

__all__ = ["DiodeSmallSignal"]


@dataclasses.dataclass(frozen=True)
class DiodeSmallSignal:
    """Small-signal parameters of a (forward-biased) diode."""

    gd: float
    cd: float = 0.0

    def __post_init__(self):
        if self.gd < 0.0:
            raise DeviceModelError("diode conductance must be non-negative")
        if self.cd < 0.0:
            raise DeviceModelError("diode capacitance must be non-negative")

    @classmethod
    def from_params(cls, params: Dict[str, float]):
        """Build from a flat parameter dictionary.

        Either direct (``gd, cd``) or from a bias current (``id`` plus optional
        ``tt`` transit time and ``cj`` junction capacitance).
        """
        params = {k.lower(): float(v) for k, v in params.items()}
        if "gd" in params:
            return cls(gd=params["gd"], cd=params.get("cd", 0.0))
        if "id" in params:
            return cls.from_operating_point(
                diode_current=params["id"],
                transit_time=params.get("tt", 0.0),
                junction_capacitance=params.get("cj", params.get("cj0", 0.0)),
            )
        raise DeviceModelError("diode model needs gd/cd or id/tt/cj parameters")

    @classmethod
    def from_operating_point(cls, diode_current, transit_time=0.0,
                             junction_capacitance=0.0,
                             thermal_voltage=THERMAL_VOLTAGE):
        """``gd = I_D / V_T``, ``cd = gd τ_T + C_j``."""
        diode_current = abs(float(diode_current))
        gd = diode_current / thermal_voltage
        cd = gd * transit_time + junction_capacitance
        return cls(gd=gd, cd=cd)

    def as_dict(self):
        """Plain dict of all parameters (for reports)."""
        return dataclasses.asdict(self)
