"""Small-signal device models and their expansion into primitive elements.

Symbolic analysis of analog circuits operates on the *small-signal equivalent*
of the transistor-level circuit: every MOSFET or BJT is replaced by a handful
of conductances, capacitances and voltage-controlled current sources evaluated
at the DC operating point.  This package provides:

* :class:`~repro.devices.mosfet.MosfetSmallSignal` — MOS level-1 style
  small-signal parameters (``gm``, ``gmb``, ``gds`` and the junction / overlap
  capacitances), derivable from an operating point,
* :class:`~repro.devices.bjt.BjtSmallSignal` — BJT hybrid-π parameters
  (``gm``, ``gpi``, ``go``, ``cpi``, ``cmu``, base resistance),
* :class:`~repro.devices.diode.DiodeSmallSignal` — diode conductance and
  junction capacitance,
* :mod:`~repro.devices.expand` — functions that stamp those models into a
  :class:`~repro.netlist.circuit.Circuit` as primitive elements.
"""

from .mosfet import MosfetSmallSignal
from .bjt import BjtSmallSignal
from .diode import DiodeSmallSignal
from .expand import expand_mosfet, expand_bjt, expand_diode

__all__ = [
    "MosfetSmallSignal",
    "BjtSmallSignal",
    "DiodeSmallSignal",
    "expand_mosfet",
    "expand_bjt",
    "expand_diode",
]
