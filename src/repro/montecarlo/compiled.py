"""Matrix-solve-free tolerance ensembles over compiled transfer models.

:func:`compiled_ensemble_sweep` is the third consumer of
:class:`~repro.symbolic.compile.CompiledTransferModel`: it maps a
:class:`~repro.montecarlo.space.ParameterSpace` straight onto the model's
free-symbol slots and serves the whole ``(M samples × F frequencies)``
ensemble as one broadcast — no MNA assembly, no factorization, no solves.
The result is a plain :class:`~repro.montecarlo.engine.EnsembleResult`
(``solver="compiled"``), so every statistical consumer downstream —
envelopes, variance attribution, corners, yield — works unchanged;
:func:`compiled_monte_carlo` and :func:`compiled_corner_analysis` wrap the
two common ones.

The slot mapping mirrors the symbolic engine's element → symbol lowering:

========== ==================== =====================================
element    free symbol          slot value from the sampled element
========== ==================== =====================================
Resistor   ``name``             ``1 / value``   (conductance stamp)
Conductor  ``name``             ``value``
Capacitor  ``name``             ``value``
VCCS       ``name``             ``gm``
Inductor   ``name + ".cl"``     ``value``  (gyrator-C load, gm = 1)
========== ==================== =====================================

Cross-checked against the matrix-engine :func:`~repro.montecarlo.engine.
ensemble_sweep` in the test suite and in ``benchmarks/bench_compiled.py``.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import FormulationError
from ..netlist.elements import (Capacitor, Conductor, CurrentSource, Inductor,
                                Resistor, VCCS, VoltageSource)
from ..nodal.reduce import TransferSpec
from .engine import EnsembleResult, _normalize_output
from .space import ParameterSpace

__all__ = [
    "compiled_ensemble_sweep",
    "compiled_monte_carlo",
    "compiled_corner_analysis",
]


def _transfer_spec(circuit, output) -> TransferSpec:
    """``output`` as a TransferSpec excited by every independent source."""
    if isinstance(output, TransferSpec):
        return output
    inputs = [element.name for element in circuit
              if isinstance(element, (VoltageSource, CurrentSource))]
    if not inputs:
        raise FormulationError(
            "compiled ensemble needs an excitation: the circuit has no "
            "independent sources and no TransferSpec was given")
    if isinstance(output, (tuple, list)):
        output = tuple(str(node) for node in output)
    else:
        output = str(output)
    return TransferSpec(inputs=inputs, output=output)


def _slot_plan(circuit, space) -> Tuple[List[str], np.ndarray]:
    """Free-symbol slot names and the value transform per space axis.

    Returns ``(slot_names, invert)`` — ``invert`` marks resistor axes,
    whose sampled value enters the symbol table as a conductance.
    """
    elements = {element.name: element for element in circuit}
    names: List[str] = []
    invert = np.zeros(len(space.axes), dtype=bool)
    for index, axis in enumerate(space.axes):
        element = elements[axis.name]
        if isinstance(element, Resistor):
            names.append(element.name)
            invert[index] = True
        elif isinstance(element, Inductor):
            # The admittance transform lowers an inductor to a gyrator-C
            # pair with unit gm, so the varying symbol is the load
            # capacitor whose value equals the inductance.
            names.append(f"{element.name}.cl")
        elif isinstance(element, (Conductor, Capacitor, VCCS)):
            names.append(element.name)
        else:  # pragma: no cover - ParameterSpace already rejects these
            raise FormulationError(
                f"element {axis.name!r} of type {type(element).__name__} "
                "has no compiled-model slot")
    return names, invert


def _slot_values(values, invert) -> np.ndarray:
    """Element-value rows → symbol-table rows (resistors as conductances)."""
    if not invert.any():
        return values
    slot = values.copy()
    with np.errstate(divide="ignore"):
        slot[:, invert] = 1.0 / slot[:, invert]
    return slot


def compiled_ensemble_sweep(circuit, output, frequencies, space=None, *,
                            values=None, samples=128, seed=0, session=None,
                            model=None, max_terms=None,
                            admittance_transform=True) -> EnsembleResult:
    """Evaluate a tolerance ensemble with zero matrix solves.

    Drop-in counterpart of :func:`~repro.montecarlo.engine.ensemble_sweep`
    on the compiled-model path: the circuit's symbolic transfer function is
    lowered once (per session fingerprint when a ``session`` is given) to a
    coefficient-tensor program whose free slots are exactly the parameter
    space's axes, then the whole ensemble is served as numpy broadcasts.

    Parameters
    ----------
    circuit:
        The circuit at its design point.  Must be in the symbolic engine's
        scope (linear elements; sizes where the symbolic expansion is
        feasible — the intended regime of the SAG/SDG tool chain).
    output:
        Output node, ``(positive, negative)`` pair or
        :class:`~repro.nodal.reduce.TransferSpec`.  Bare outputs are
        excited by every independent source, matching the matrix engines.
    frequencies:
        Sweep grid in hertz.
    space:
        The :class:`~repro.montecarlo.space.ParameterSpace`; defaults to
        the tolerances carried by the circuit's elements.
    values:
        Optional explicit ``(M, E)`` element-value matrix (e.g. corner
        values).  Default: ``space.sample_values(samples, seed)`` — the
        same draws as the matrix path, so responses are directly
        comparable sample by sample.
    samples, seed:
        Monte Carlo draw size and RNG seed when ``values`` is not given.
    session:
        Optional :class:`~repro.engine.session.AnalysisSession` providing
        compile-once caching across Bode / SDG / Monte Carlo workloads.
    model:
        Optional pre-compiled
        :class:`~repro.symbolic.compile.CompiledTransferModel`.  Its free
        slots must cover every axis of the space
        (:class:`~repro.errors.SymbolicError` names the missing slot
        otherwise); slots the space does not vary stay at their nominal
        values.
    max_terms, admittance_transform:
        Passed through to symbolic generation when the model is built here.

    Returns
    -------
    EnsembleResult
        With ``solver="compiled"``; element-value rows match the matrix
        path, so envelopes, attribution and yield consume it unchanged.
    """
    if space is None:
        space = ParameterSpace(circuit)
    frequencies = np.asarray(frequencies, dtype=float)
    if values is None:
        values = space.sample_values(samples, seed)
    else:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(space):
            raise FormulationError(
                f"values must be (M, {len(space)}), got {values.shape}")

    spec = _transfer_spec(circuit, output)
    slot_names, invert = _slot_plan(circuit, space)
    if model is None:
        if session is not None:
            model = session.compiled_transfer(
                circuit, spec, free_symbols=slot_names, max_terms=max_terms,
                admittance_transform=admittance_transform)
        else:
            from ..symbolic.generation import symbolic_network_function

            transfer = symbolic_network_function(
                circuit, spec, admittance_transform=admittance_transform,
                **({} if max_terms is None else {"max_terms": max_terms}))
            model = transfer.compile(free_symbols=slot_names)

    slot_values = _slot_values(values, invert)
    if list(model.free_names) == slot_names:
        table_values = slot_values
    else:
        # A wider (or reordered) model: route each axis to its slot, leave
        # un-varied slots at their nominal value.
        columns = [model.slot_index(name) for name in slot_names]
        table_values = np.tile(model.nominal_values, (values.shape[0], 1))
        table_values[:, columns] = slot_values

    responses = model.frequency_response(table_values, frequencies)
    return EnsembleResult(frequencies=frequencies, values=values,
                          responses=np.atleast_2d(responses), space=space,
                          output=_normalize_output(output),
                          solver="compiled")


def compiled_monte_carlo(circuit, output, frequencies, space=None, *,
                         samples=128, seed=0, tolerances=None, session=None,
                         model=None, max_terms=None):
    """Monte Carlo analysis on the compiled-model path.

    Returns the same :class:`~repro.analysis.montecarlo.MonteCarloResult`
    as :func:`~repro.analysis.montecarlo.monte_carlo_analysis` — envelope,
    attribution and yield methods included — with both the ensemble and
    the nominal response served by the compiled model.
    """
    from ..analysis.montecarlo import MonteCarloResult

    if space is None:
        space = ParameterSpace(circuit, tolerances)
    frequencies = np.asarray(frequencies, dtype=float)
    ensemble = compiled_ensemble_sweep(
        circuit, output, frequencies, space, samples=samples, seed=seed,
        session=session, model=model, max_terms=max_terms)
    nominal = compiled_ensemble_sweep(
        circuit, output, frequencies, space,
        values=space.nominal_values[None, :], session=session, model=model,
        max_terms=max_terms)
    return MonteCarloResult(ensemble=ensemble,
                            nominal_response=nominal.responses[0],
                            seed=seed)


def compiled_corner_analysis(circuit, output, frequencies, space=None, *,
                             tolerances=None, session=None, model=None,
                             max_terms=None):
    """Deterministic tolerance-band corners on the compiled-model path.

    Returns the same :class:`~repro.analysis.montecarlo.CornerResult` as
    :func:`~repro.analysis.montecarlo.corner_analysis`.
    """
    from ..analysis.montecarlo import CornerResult

    if space is None:
        space = ParameterSpace(circuit, tolerances)
    frequencies = np.asarray(frequencies, dtype=float)
    corner_values = space.corner_values()
    ensemble = compiled_ensemble_sweep(
        circuit, output, frequencies, space, values=corner_values,
        session=session, model=model, max_terms=max_terms)
    magnitudes = ensemble.magnitudes_db()
    return CornerResult(
        frequencies=frequencies,
        values=corner_values,
        responses=ensemble.responses,
        worst_low_db=magnitudes.min(axis=0),
        worst_high_db=magnitudes.max(axis=0),
    )
