"""Vectorized re-stamping: the bit-exact assembly core of the ensemble engine.

Rebuilding a perturbed circuit costs a circuit copy, an MNA re-stamp and a
dense conversion per sample — pure Python work that dominates small-matrix
Monte Carlo.  A :class:`ValueProgram` runs the stamping *once*, through the
same :func:`repro.mna.builder.stamp_element` the real builder uses, with
recording matrices instead of real ones, and learns

* every ``add(row, col, value)`` the builder performs, in order,
* which adds depend on a tolerance axis (classified by stamping each varying
  element a second time at a probe value and diffing), and with which exact
  coefficient (``±1`` by construction of the MNA stamps),
* the per-entry accumulation order of the builder's dict-of-keys stamping.

Evaluating the program for an ``(M, E)`` value matrix then replays exactly the
builder's arithmetic, vectorized over the M samples: each contribution is
``coefficient · parameter`` (the parameter computed from the element value the
same way the element class computes it, e.g. ``1/R`` for resistors), and
contributions fold into their entry in recorded order.  The resulting dense
``(G_m, C_m)`` stacks are bit-for-bit the matrices
``build_mna_system(space.apply(values[m])).dense_parts()`` would produce —
without touching a circuit object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..errors import FormulationError
from ..mna.builder import stamp_element, system_structure
from ..netlist.elements import Resistor

__all__ = ["ValueProgram"]


class _RecordingMatrix:
    """Stands in for a SparseMatrix, logging adds instead of performing them."""

    def __init__(self):
        self.adds: List[Tuple[int, int, complex]] = []

    def add(self, row, col, value):
        self.adds.append((row, col, value))


@dataclasses.dataclass
class _MatrixProgram:
    """Replayable accumulation program of one matrix (``G`` or ``C``).

    ``keys`` lists the distinct entries in first-stamp order; contribution
    ``i`` adds ``const[i]`` (axis ``-1``) or ``coeff[i] · parameter[axis[i]]``
    into entry ``entry[i]``.  ``levels`` partitions the contributions by
    per-entry rank so a vectorized fold applies them in exactly the order the
    builder's dict accumulation did.
    """

    keys: List[Tuple[int, int]]
    entry: np.ndarray          # (n_contrib,) int — index into keys
    axis: np.ndarray           # (n_contrib,) int — parameter axis, -1 = const
    coeff: np.ndarray          # (n_contrib,) float — exact stamp coefficient
    const: np.ndarray          # (n_contrib,) complex — value when axis == -1
    levels: List[Tuple[np.ndarray, np.ndarray]]   # (entry ids, contrib ids)

    def evaluate(self, parameters) -> np.ndarray:
        """Entry values for an ``(M, E)`` parameter matrix → ``(M, len(keys))``."""
        parameters = np.asarray(parameters, dtype=float)
        count = parameters.shape[0]
        contributions = np.empty((count, len(self.entry)), dtype=complex)
        constant_mask = self.axis < 0
        if constant_mask.any():
            contributions[:, constant_mask] = self.const[constant_mask][None, :]
        varying = np.flatnonzero(~constant_mask)
        if varying.size:
            contributions[:, varying] = (
                self.coeff[varying][None, :]
                * parameters[:, self.axis[varying]])
        values = np.zeros((count, len(self.keys)), dtype=complex)
        for entries, contribs in self.levels:
            values[:, entries] = values[:, entries] + contributions[:, contribs]
        return values


def _levels(entry_ids) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Group contributions by per-entry rank (fold order of the dict adds)."""
    seen: Dict[int, int] = {}
    levels: List[List[Tuple[int, int]]] = []
    for contrib, entry in enumerate(entry_ids):
        rank = seen.get(entry, 0)
        seen[entry] = rank + 1
        if rank == len(levels):
            levels.append([])
        levels[rank].append((entry, contrib))
    return [(np.array([e for e, __ in level], dtype=np.intp),
             np.array([c for __, c in level], dtype=np.intp))
            for level in levels]


def _probe(element):
    """A copy of ``element`` with its varied parameter moved off-nominal."""
    if hasattr(element, "gm"):
        if element.gm == 0.0:
            return element
        return dataclasses.replace(element, gm=element.gm * 2.0)
    if element.value == 0.0:
        return element
    return dataclasses.replace(element, value=element.value * 2.0)


class ValueProgram:
    """Replayable stamping program of one circuit over a parameter space.

    Build with :meth:`from_circuit`; evaluate with :meth:`dense_parts` (the
    dense sweep path) or :meth:`sparse_values` (entry values on the two key
    lists).  ``parameters`` / ``axis_parameters`` convert sampled element
    *values* into the stamped quantities (``1/R`` for resistors).
    """

    def __init__(self, dimension, axes_names, resistor_mask, constant_program,
                 dynamic_program, rhs):
        self.dimension = dimension
        self.axis_names = list(axes_names)
        self._resistor_mask = resistor_mask
        self.constant_program = constant_program
        self.dynamic_program = dynamic_program
        #: The (sample-invariant) excitation vector, identical to the
        #: rebuilt systems' ``rhs``.
        self.rhs = rhs

    # ------------------------------------------------------------------ #

    @classmethod
    def from_circuit(cls, circuit, space) -> "ValueProgram":
        """Record the stamping program of ``circuit`` over ``space``'s axes.

        Raises
        ------
        FormulationError
            If the circuit contains elements the MNA builder rejects, or a
            space axis stamps with a non-reconstructible coefficient.
        """
        node_names, branch_names, node, branch_index = system_structure(
            circuit)
        dimension = len(node_names) + len(branch_names)
        axis_of = {name.lower(): position
                   for position, name in enumerate(space.names)}
        resistor_mask = np.array(
            [isinstance(circuit[name], Resistor) for name in space.names])

        records: List[List] = [[], []]   # [constant, dynamic] contribution rows
        key_ids: List[Dict[Tuple[int, int], int]] = [{}, {}]
        rhs = np.zeros(dimension, dtype=complex)

        def rhs_add(index, value):
            rhs[index] += value

        nominal_parameters = cls._axis_parameters_static(
            np.asarray(space.nominal_values, dtype=float)[None, :],
            resistor_mask)[0]

        for element in circuit:
            recorders = (_RecordingMatrix(), _RecordingMatrix())
            stamp_element(element, recorders[0], recorders[1], rhs_add, node,
                          branch_index)
            axis = axis_of.get(element.name.lower(), -1)
            if axis >= 0:
                probes = (_RecordingMatrix(), _RecordingMatrix())
                stamp_element(_probe(element), probes[0], probes[1],
                              lambda i, v: None, node, branch_index)
            for kind in (0, 1):
                adds = recorders[kind].adds
                probe_adds = probes[kind].adds if axis >= 0 else adds
                if len(probe_adds) != len(adds):
                    raise FormulationError(
                        f"element {element.name!r}: probe stamp changed the "
                        "entry pattern; cannot build a value program")
                for (row, col, value), (__, ___, probed) in zip(adds,
                                                                probe_adds):
                    key = (row, col)
                    entry = key_ids[kind].setdefault(key, len(key_ids[kind]))
                    if axis >= 0 and probed != value:
                        parameter = nominal_parameters[axis]
                        records[kind].append(
                            (entry, axis, value / parameter, 0.0))
                    else:
                        records[kind].append((entry, -1, 0.0, value))

        programs = []
        for kind in (0, 1):
            rows = records[kind]
            entry = np.array([r[0] for r in rows], dtype=np.intp)
            programs.append(_MatrixProgram(
                keys=list(key_ids[kind]),
                entry=entry,
                axis=np.array([r[1] for r in rows], dtype=np.intp),
                coeff=np.array([r[2] for r in rows]),
                const=np.array([r[3] for r in rows], dtype=complex),
                levels=_levels(entry),
            ))
        return cls(dimension, space.names, resistor_mask, programs[0],
                   programs[1], rhs)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _axis_parameters_static(values, resistor_mask):
        parameters = np.array(values, dtype=float)
        if resistor_mask.any():
            parameters[:, resistor_mask] = 1.0 / parameters[:, resistor_mask]
        return parameters

    def axis_parameters(self, values) -> np.ndarray:
        """Stamped parameters for an ``(M, E)`` element-value matrix.

        Resistor axes become conductances through the same ``1.0 / value``
        the :class:`~repro.netlist.elements.Resistor` class computes; every
        other axis stamps its value directly.
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(self.axis_names):
            raise FormulationError(
                f"expected (M, {len(self.axis_names)}) values, got shape "
                f"{values.shape}")
        return self._axis_parameters_static(values, self._resistor_mask)

    def sparse_values(self, values):
        """Per-sample entry values of both matrices.

        Returns ``(constant_keys, constant_values, dynamic_keys,
        dynamic_values)`` with value arrays of shape ``(M, nnz)`` aligned to
        the key lists.
        """
        parameters = self.axis_parameters(values)
        return (self.constant_program.keys,
                self.constant_program.evaluate(parameters),
                self.dynamic_program.keys,
                self.dynamic_program.evaluate(parameters))

    def dense_parts(self, values) -> Tuple[np.ndarray, np.ndarray]:
        """Dense ``(M, n, n)`` stacks of the per-sample ``G`` and ``C`` parts.

        Bit-for-bit what ``build_mna_system(space.apply(values[m]))``
        followed by ``dense_parts()`` produces, for every sample at once.
        """
        parameters = self.axis_parameters(values)
        count = parameters.shape[0]
        stacks = []
        for program in (self.constant_program, self.dynamic_program):
            stack = np.zeros((count, self.dimension, self.dimension),
                             dtype=complex)
            if program.keys:
                rows = np.array([row for row, __ in program.keys])
                cols = np.array([col for __, col in program.keys])
                stack[:, rows, cols] = program.evaluate(parameters)
            stacks.append(stack)
        return stacks[0], stacks[1]

    def __repr__(self):
        return (f"ValueProgram(n={self.dimension}, axes={len(self.axis_names)}, "
                f"nnz=({len(self.constant_program.keys)}, "
                f"{len(self.dynamic_program.keys)}))")
