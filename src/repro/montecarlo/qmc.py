"""Quasi-Monte Carlo point sets for :class:`~repro.montecarlo.space.ParameterSpace`.

Plain Monte Carlo converges like ``1/√M``; at the production sample counts
the ROADMAP targets (10⁵–10⁶) most of those samples are spent refilling
regions random draws already covered.  The two low-discrepancy point sets
here cover the unit cube far more evenly:

* :func:`sobol_uniforms` — a digitally-shifted Sobol' sequence built from
  the Joe–Kuo direction numbers, generated in Gray-code order;
* :func:`latin_hypercube_uniforms` — one stratified permutation per
  dimension with intra-stratum jitter.

Both honour the same **seeded-determinism contract** as the pseudo-random
samplers: the same ``(count, dims, seed)`` always yields the same bits, on
any machine.  Additionally both are **dimension-prefix consistent** — the
first ``d`` columns of a ``dims > d`` draw equal the ``dims = d`` draw —
because every dimension derives its randomization (digital shift /
permutation) from its own ``[seed, dimension]`` child stream instead of
consuming a shared stream whose position would depend on ``dims``.  The
Sobol' sequence is also **count-prefix consistent**: the first ``n`` rows
of a longer draw are the ``n``-row draw, which is what lets checkpointed /
sharded ensembles grow a quasi-random run without redrawing it.

No scipy: the gaussian transform uses Acklam's rational approximation of
the inverse normal CDF (relative error ~1.15e-9, far below the tolerance
fractions being sampled).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

__all__ = ["sobol_uniforms", "latin_hypercube_uniforms",
           "inverse_normal_cdf", "SOBOL_MAX_DIMS"]

#: Bits of resolution per Sobol' coordinate (and of the digital shift).
_BITS = 30

#: Joe–Kuo "new-joe-kuo-6" primitive-polynomial data for dimensions 2–21:
#: ``dimension → (s, a, (m_1, …, m_s))`` where ``s`` is the polynomial
#: degree, ``a`` encodes its inner coefficients and ``m`` seeds the
#: direction-number recursion.  Dimension 1 is the van der Corput sequence
#: (all direction numbers 1).
_JOE_KUO = {
    2: (1, 0, (1,)),
    3: (2, 1, (1, 3)),
    4: (3, 1, (1, 3, 1)),
    5: (3, 2, (1, 1, 1)),
    6: (4, 1, (1, 1, 3, 3)),
    7: (4, 4, (1, 3, 5, 13)),
    8: (5, 2, (1, 1, 5, 5, 17)),
    9: (5, 4, (1, 1, 5, 5, 5)),
    10: (5, 7, (1, 1, 7, 11, 19)),
    11: (5, 11, (1, 1, 5, 1, 1)),
    12: (5, 13, (1, 1, 1, 3, 11)),
    13: (5, 14, (1, 3, 5, 5, 31)),
    14: (6, 1, (1, 3, 3, 9, 7, 49)),
    15: (6, 13, (1, 1, 1, 15, 21, 21)),
    16: (6, 16, (1, 3, 1, 13, 27, 49)),
    17: (6, 19, (1, 1, 1, 15, 7, 5)),
    18: (6, 22, (1, 3, 1, 15, 13, 25)),
    19: (6, 25, (1, 1, 5, 5, 19, 61)),
    20: (7, 1, (1, 3, 7, 11, 23, 15, 103)),
    21: (7, 4, (1, 3, 7, 13, 13, 15, 69)),
}

#: Largest parameter-space dimension the Sobol' table supports.
SOBOL_MAX_DIMS = max(_JOE_KUO)


def _direction_numbers(dimension: int) -> np.ndarray:
    """The ``_BITS`` direction numbers of one Sobol' dimension (1-based)."""
    v = np.zeros(_BITS, dtype=np.int64)
    if dimension == 1:
        for k in range(_BITS):
            v[k] = 1 << (_BITS - 1 - k)
        return v
    s, a, m = _JOE_KUO[dimension]
    for k in range(min(s, _BITS)):
        v[k] = m[k] << (_BITS - 1 - k)
    for k in range(s, _BITS):
        value = v[k - s] ^ (v[k - s] >> s)
        for i in range(1, s):
            if (a >> (s - 1 - i)) & 1:
                value ^= v[k - i]
        v[k] = value
    return v


def _dimension_rng(seed, dimension: int) -> np.random.Generator:
    """A child stream keyed by ``[seed, dimension]``.

    Keying by dimension (not by position in a shared stream) is what makes
    the point sets dimension-prefix consistent: adding axes to a parameter
    space never changes the draws of the axes already present.
    """
    return np.random.default_rng(np.random.SeedSequence(
        entropy=int(seed), spawn_key=(int(dimension),)))


def sobol_uniforms(count, dims, seed=0) -> np.ndarray:
    """``(count, dims)`` digitally-shifted Sobol' points in ``[0, 1)``.

    Gray-code construction: consecutive points differ in one direction
    number, so generating ``count`` points is O(count·dims) XORs.  Each
    dimension's coordinates are XORed with a seeded ``_BITS``-bit digital
    shift — a scramble that preserves the dyadic equidistribution that
    makes the sequence low-discrepancy while decorrelating runs with
    different seeds (and un-pinning point 0 from the cube corner).
    """
    count = int(count)
    dims = int(dims)
    if count <= 0:
        raise ValidationError("sample count must be positive")
    if dims <= 0:
        raise ValidationError("dimension count must be positive")
    if dims > SOBOL_MAX_DIMS:
        raise ValidationError(
            f"sobol sampling supports up to {SOBOL_MAX_DIMS} tolerance axes, "
            f"got {dims}; use method='lhs' or 'random' for larger spaces")
    points = np.empty((count, dims))
    scale = float(1 << _BITS)
    for dimension in range(1, dims + 1):
        v = _direction_numbers(dimension)
        shift = int(_dimension_rng(seed, dimension).integers(0, 1 << _BITS))
        x = 0
        column = np.empty(count, dtype=np.int64)
        for i in range(count):
            column[i] = x ^ shift
            # The direction number of the lowest zero bit of i drives the
            # Gray-code step from point i to point i + 1.
            bit = 0
            j = i
            while j & 1:
                j >>= 1
                bit += 1
            x ^= int(v[bit])
        points[:, dimension - 1] = column / scale
    return points


def latin_hypercube_uniforms(count, dims, seed=0) -> np.ndarray:
    """``(count, dims)`` jittered Latin-hypercube points in ``[0, 1)``.

    Each dimension is an independent seeded permutation of the ``count``
    strata plus uniform jitter inside each stratum: every one-dimensional
    projection hits every stratum exactly once.  Unlike Sobol' the point
    set is a function of ``count`` (the strata change), so there is no
    count-prefix consistency — only seeded determinism and
    dimension-prefix consistency.
    """
    count = int(count)
    dims = int(dims)
    if count <= 0:
        raise ValidationError("sample count must be positive")
    if dims <= 0:
        raise ValidationError("dimension count must be positive")
    points = np.empty((count, dims))
    for dimension in range(1, dims + 1):
        rng = _dimension_rng(seed, dimension)
        strata = rng.permutation(count)
        jitter = rng.random(count)
        points[:, dimension - 1] = (strata + jitter) / count
    return points


#: Acklam's coefficients for the rational approximation of ``Φ⁻¹``.
_ACKLAM_A = (-3.969683028665376e+01, 2.209460984245205e+02,
             -2.759285104469687e+02, 1.383577518672690e+02,
             -3.066479806614716e+01, 2.506628277459239e+00)
_ACKLAM_B = (-5.447609879822406e+01, 1.615858368580409e+02,
             -1.556989798598866e+02, 6.680131188771972e+01,
             -1.328068155288572e+01)
_ACKLAM_C = (-7.784894002430293e-03, -3.223964580411365e-01,
             -2.400758277161838e+00, -2.549732539343734e+00,
             4.374664141464968e+00, 2.938163982698783e+00)
_ACKLAM_D = (7.784695709041462e-03, 3.224671290700398e-01,
             2.445134137142996e+00, 3.754408661907416e+00)

#: Central-region boundary of the approximation.
_ACKLAM_LOW = 0.02425


def inverse_normal_cdf(u) -> np.ndarray:
    """``Φ⁻¹(u)`` — Acklam's approximation, relative error ~1.15e-9.

    Vectorized and scipy-free; inputs are clipped away from {0, 1} so a
    stratum boundary can never return an infinity into a multiplier column.
    """
    u = np.clip(np.asarray(u, dtype=float), 1e-15, 1.0 - 1e-15)
    result = np.empty_like(u)
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D

    lower = u < _ACKLAM_LOW
    upper = u > 1.0 - _ACKLAM_LOW
    central = ~(lower | upper)

    if np.any(central):
        q = u[central] - 0.5
        r = q * q
        numerator = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r
                     + a[4]) * r + a[5]
        denominator = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                       + b[4]) * r + 1.0
        result[central] = q * numerator / denominator
    if np.any(lower):
        q = np.sqrt(-2.0 * np.log(u[lower]))
        numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                     + c[4]) * q + c[5]
        denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        result[lower] = numerator / denominator
    if np.any(upper):
        q = np.sqrt(-2.0 * np.log(1.0 - u[upper]))
        numerator = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q
                     + c[4]) * q + c[5]
        denominator = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        result[upper] = -numerator / denominator
    return result
