"""Parameter space of a toleranced circuit.

A :class:`ParameterSpace` fixes *which* element values vary and *how*: each
axis is one element carrying a :class:`~repro.netlist.elements.Tolerance`
(attached with ``element.with_tolerance(...)``), and the space maps tolerance
metadata to concrete value vectors:

* :meth:`ParameterSpace.sample_values` — Monte Carlo draws from a seeded
  :class:`numpy.random.Generator` (deterministic per seed),
* :meth:`ParameterSpace.corner_values` — the deterministic tolerance-band
  corners (full factorial for small spaces, axis extremes plus the
  one-at-a-time corners for large ones),
* :meth:`ParameterSpace.apply` — one perturbed :class:`Circuit` per value
  vector, the rebuild-per-sample reference the vectorized engine is checked
  against.

Every sampler returns actual element *values* (ohms, farads, siemens, …),
not multipliers, so the vectorized engine and the rebuild path consume the
same numbers to the last bit.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, List, Tuple

import numpy as np

from ..errors import NetlistError, ValidationError
from . import qmc
from ..netlist.elements import (
    Capacitor,
    Conductor,
    Inductor,
    Resistor,
    Tolerance,
    VCCS,
)

__all__ = ["ParameterSpace"]

#: Sampling point sets :meth:`ParameterSpace.sample_multipliers` accepts.
_SAMPLING_METHODS = ("random", "sobol", "lhs")


def _validate_count(count) -> int:
    """Sample count as a positive ``int``, or a typed :class:`ValidationError`.

    Rejects non-integral and non-positive counts up front so the failure
    carries the caller's value instead of surfacing deep inside a sampler
    as an opaque shape or arithmetic error.
    """
    try:
        value = int(count)
    except (TypeError, ValueError):
        raise ValidationError(
            f"sample count must be an integer, got {count!r}") from None
    if value != count:
        raise ValidationError(
            f"sample count must be an integer, got {count!r}")
    if value <= 0:
        raise ValidationError(
            f"sample count must be positive, got {value}")
    return value

#: Element types whose value the space may vary (the admittance-stamp set the
#: screening engine supports, plus inductors which stamp a branch equation).
_VARIABLE_TYPES = (Resistor, Conductor, Capacitor, Inductor, VCCS)

#: Full-factorial corner enumeration is capped at 2**12 = 4096 circuits;
#: larger spaces fall back to axis extremes + one-at-a-time corners.
_FULL_FACTORIAL_LIMIT = 12


def _element_value(element) -> float:
    """The varied parameter of one element (gm for VCCS, value otherwise)."""
    return element.gm if isinstance(element, VCCS) else element.value


@dataclasses.dataclass(frozen=True)
class _Axis:
    """One varying element: its name, nominal value and tolerance."""

    name: str
    nominal: float
    tolerance: Tolerance


class ParameterSpace:
    """The tolerance axes of one circuit.

    Parameters
    ----------
    circuit:
        The circuit at its design point.
    tolerances:
        Optional mapping of element name to :class:`Tolerance` (or plain
        fraction) overriding / augmenting the tolerances carried by the
        elements themselves.  With no mapping, the space consists of exactly
        the elements whose ``tolerance`` attribute is set.

    Raises
    ------
    NetlistError
        When the space is empty, or an axis names an element whose type the
        engines cannot vary (sources and non-VCCS controlled sources).
    """

    def __init__(self, circuit, tolerances=None):
        self.circuit = circuit
        axes: List[_Axis] = []
        overrides: Dict[str, Tolerance] = {}
        for name, tolerance in (tolerances or {}).items():
            if not isinstance(tolerance, Tolerance):
                tolerance = Tolerance(float(tolerance))
            overrides[str(name).lower()] = tolerance
        for element in circuit:
            tolerance = overrides.pop(element.name.lower(),
                                      element.tolerance)
            if tolerance is None:
                continue
            if not isinstance(element, _VARIABLE_TYPES):
                raise NetlistError(
                    f"element {element.name!r} of type "
                    f"{type(element).__name__} cannot carry a tolerance axis"
                )
            axes.append(_Axis(element.name, _element_value(element),
                              tolerance))
        if overrides:
            missing = ", ".join(sorted(overrides))
            raise NetlistError(f"tolerance on unknown element(s): {missing}")
        if not axes:
            raise NetlistError(
                "parameter space is empty: no element carries a tolerance "
                "(attach one with element.with_tolerance(...))"
            )
        self.axes: Tuple[_Axis, ...] = tuple(axes)

    # ------------------------------------------------------------------ #

    @property
    def names(self) -> List[str]:
        """Names of the varying elements, in circuit order."""
        return [axis.name for axis in self.axes]

    @property
    def nominal_values(self) -> np.ndarray:
        """Nominal element values, one per axis."""
        return np.array([axis.nominal for axis in self.axes])

    def __len__(self):
        return len(self.axes)

    def key(self) -> Tuple:
        """Hashable content key (for :class:`~repro.engine.session.AnalysisSession`)."""
        return tuple((axis.name, axis.nominal, axis.tolerance.fraction,
                      axis.tolerance.distribution) for axis in self.axes)

    # ------------------------------------------------------------------ #
    # samplers
    # ------------------------------------------------------------------ #

    def sample_multipliers(self, count, seed=0, method="random") -> np.ndarray:
        """``(count, len(space))`` relative multipliers, seeded + deterministic.

        ``method`` selects the point set:

        * ``"random"`` (default) — pseudo-random draws from one seeded
          :class:`numpy.random.Generator`, the historical behaviour bit for
          bit;
        * ``"sobol"`` — a digitally-shifted Sobol' sequence
          (:func:`~repro.montecarlo.qmc.sobol_uniforms`);
        * ``"lhs"`` — jittered Latin-hypercube strata
          (:func:`~repro.montecarlo.qmc.latin_hypercube_uniforms`).

        All methods honour the same seeded-determinism contract (same
        ``count``/``seed``/``method`` → same bits) and map uniforms through
        the per-axis distribution identically: gaussian axes produce
        ``1 + (fraction/3)·N(0,1)`` (the band is the 3-sigma point), uniform
        axes flat across ``1 ± fraction``, corner axes the two band edges.
        Multipliers are floored at ``fraction/100`` above zero so a many-sigma
        gaussian outlier can never flip an element value's sign.

        Raises
        ------
        ValidationError
            For an unknown ``method`` or a non-positive / non-integral
            ``count`` — validated up front, before any sampler runs.
        """
        count = _validate_count(count)
        if method not in _SAMPLING_METHODS:
            raise ValidationError(
                f"unknown sampling method {method!r}: "
                "expected 'random', 'sobol' or 'lhs'")
        if method == "random":
            rng = np.random.default_rng(seed)
            columns = []
            for axis in self.axes:
                fraction = axis.tolerance.fraction
                kind = axis.tolerance.distribution
                if kind == "gaussian":
                    column = (1.0
                              + (fraction / 3.0) * rng.standard_normal(count))
                elif kind == "uniform":
                    column = 1.0 + fraction * rng.uniform(-1.0, 1.0, count)
                else:  # corner
                    column = 1.0 + fraction * rng.choice([-1.0, 1.0], count)
                columns.append(np.maximum(column, fraction / 100.0))
            return np.column_stack(columns)
        if method == "sobol":
            uniforms = qmc.sobol_uniforms(count, len(self.axes), seed)
        else:
            uniforms = qmc.latin_hypercube_uniforms(count, len(self.axes),
                                                    seed)
        columns = []
        for position, axis in enumerate(self.axes):
            fraction = axis.tolerance.fraction
            kind = axis.tolerance.distribution
            u = uniforms[:, position]
            if kind == "gaussian":
                column = (1.0
                          + (fraction / 3.0) * qmc.inverse_normal_cdf(u))
            elif kind == "uniform":
                column = 1.0 + fraction * (2.0 * u - 1.0)
            else:  # corner
                column = 1.0 + fraction * np.where(u < 0.5, -1.0, 1.0)
            columns.append(np.maximum(column, fraction / 100.0))
        return np.column_stack(columns)

    def sample_values(self, count, seed=0, method="random") -> np.ndarray:
        """``(count, len(space))`` sampled element values (seeded, deterministic)."""
        return self.nominal_values[None, :] * self.sample_multipliers(
            count, seed, method)

    # ------------------------------------------------------------------ #
    # importance sampling
    # ------------------------------------------------------------------ #

    def _per_axis(self, value, label, default) -> np.ndarray:
        """Broadcast a scalar or ``{axis name: value}`` dict over the axes."""
        if isinstance(value, dict):
            lookup = {str(name).lower(): float(entry)
                      for name, entry in value.items()}
            unknown = set(lookup) - {axis.name.lower() for axis in self.axes}
            if unknown:
                raise ValidationError(
                    f"{label} names unknown axis(es): "
                    f"{', '.join(sorted(unknown))}")
            return np.array([lookup.get(axis.name.lower(), default)
                             for axis in self.axes])
        return np.full(len(self.axes), float(value))

    def importance_sample(self, count, seed=0, *, shift=0.0, scale=1.0,
                          mixture=0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Draw from a shifted / defensive-mixture proposal with weights.

        Rare-failure yield estimation: plain Monte Carlo at failure
        probability ``p`` needs ``≫ 1/p`` samples to see a single failure.
        This draws the same ``(count, len(space))`` value matrix from a
        *proposal* distribution pushed toward the failure region and returns
        the per-sample likelihood ratios ``w = p(x)/q(x)`` that make the
        weighted estimators unbiased under the *nominal* tolerance model —
        feed both into the streaming ensemble drivers
        (``store_responses=False, weights=..., yield_specs=...``).

        Per-axis proposals (``shift`` / ``scale`` are scalars applied to
        every axis, or ``{element name: value}`` dicts):

        * **gaussian** axes sample the tolerance z-score from
          ``(1-mixture)·N(shift, scale²) + mixture·N(0, 1)`` — the defensive
          nominal component bounds the weights when the shift overshoots.
          Weights use log-domain likelihood ratios, so many-axis products
          cannot underflow pairwise.
        * **uniform** axes translate the band-unit draw by ``shift``;
          samples landing outside the nominal ``±1`` band get weight 0
          (they are impossible under the target).
        * **corner** axes keep the nominal two-point draw, weight 1.

        Weights are computed from the raw z-scores *before* the
        ``fraction/100`` sign-protection floor: the floor is a deterministic
        map applied identically under target and proposal, so
        ``E_q[w·f(floor(x))] = E_p[f(floor(x))]`` still holds.

        Returns
        -------
        (values, weights):
            ``values`` — ``(count, len(space))`` element values;
            ``weights`` — ``(count,)`` likelihood ratios (mean ≈ 1 for a
            healthy proposal).

        Raises
        ------
        ValidationError
            For a non-positive / non-integral ``count``, ``scale <= 0``,
            ``mixture`` outside ``[0, 1)``, or a shift / scale dict naming
            an unknown axis.
        """
        count = _validate_count(count)
        shifts = self._per_axis(shift, "shift", 0.0)
        scales = self._per_axis(scale, "scale", 1.0)
        if np.any(scales <= 0.0):
            raise ValidationError(
                f"proposal scale must be positive, got {scales.min()}")
        mixture = float(mixture)
        if not 0.0 <= mixture < 1.0:
            raise ValidationError(
                f"mixture must be in [0, 1), got {mixture}")
        rng = np.random.default_rng(seed)
        log_weights = np.zeros(count)
        columns = []
        for position, axis in enumerate(self.axes):
            fraction = axis.tolerance.fraction
            kind = axis.tolerance.distribution
            mu = shifts[position]
            sigma = scales[position]
            if kind == "gaussian":
                shifted = mu + sigma * rng.standard_normal(count)
                if mixture > 0.0:
                    nominal = rng.standard_normal(count)
                    from_nominal = rng.uniform(size=count) < mixture
                    z = np.where(from_nominal, nominal, shifted)
                else:
                    z = shifted
                # The 1/sqrt(2π) normalizer is common to every component
                # and cancels in log_p - log_q, so it is omitted throughout.
                log_p = -0.5 * z ** 2
                log_q = (-0.5 * ((z - mu) / sigma) ** 2 - np.log(sigma))
                if mixture > 0.0:
                    log_q = np.logaddexp(np.log1p(-mixture) + log_q,
                                         np.log(mixture) - 0.5 * z ** 2)
                log_weights += log_p - log_q
                column = 1.0 + (fraction / 3.0) * z
            elif kind == "uniform":
                shifted = mu + rng.uniform(-1.0, 1.0, count)
                if mixture > 0.0:
                    nominal = rng.uniform(-1.0, 1.0, count)
                    from_nominal = rng.uniform(size=count) < mixture
                    u = np.where(from_nominal, nominal, shifted)
                else:
                    u = shifted
                # Band-unit densities are 1/2 on each support; the sample
                # always lies in at least one component's support, so the
                # proposal density is strictly positive at every draw.
                inside_target = np.abs(u) <= 1.0
                inside_shifted = np.abs(u - mu) <= 1.0
                density_q = (0.5 * (1.0 - mixture) * inside_shifted
                             + 0.5 * mixture * inside_target)
                ratio = np.where(inside_target,
                                 0.5 / np.maximum(density_q, 1e-300), 0.0)
                with np.errstate(divide="ignore"):
                    log_weights += np.log(ratio)
                column = 1.0 + fraction * u
            else:  # corner — two-point support; shifts do not apply
                column = 1.0 + fraction * rng.choice([-1.0, 1.0], count)
            columns.append(np.maximum(column, fraction / 100.0))
        multipliers = np.column_stack(columns)
        weights = np.exp(log_weights)
        return self.nominal_values[None, :] * multipliers, weights

    def corner_multipliers(self) -> np.ndarray:
        """Deterministic tolerance-band corner multipliers.

        Up to 12 axes: the full ``2**E`` factorial (low corner first).
        Beyond that: the all-low / all-high extremes plus every one-at-a-time
        corner — ``2·E + 2`` rows.
        """
        fractions = np.array([axis.tolerance.fraction for axis in self.axes])
        count = len(self.axes)
        if count <= _FULL_FACTORIAL_LIMIT:
            signs = np.array(list(itertools.product((-1.0, 1.0),
                                                    repeat=count)))
        else:
            rows = [-np.ones(count), np.ones(count)]
            for position in range(count):
                for sign in (-1.0, 1.0):
                    row = np.zeros(count)
                    row[position] = sign
                    rows.append(row)
            signs = np.array(rows)
        return 1.0 + signs * fractions[None, :]

    def corner_values(self) -> np.ndarray:
        """Element values at the deterministic tolerance-band corners."""
        return self.nominal_values[None, :] * self.corner_multipliers()

    def admittance_scales(self, values) -> np.ndarray:
        """``(M, E)`` relative *admittance* multipliers of sampled values.

        The affine parameter-batch engine
        (:meth:`~repro.engine.formulation.FormulationBase.assemble_param_batch`)
        scales element admittances, and a resistor whose value scales by
        ``p`` has its stamped conductance scaled by ``1/p``; this converts
        element-value samples accordingly.  Axes with a zero nominal value
        scale by exactly 1 (their samples are identically zero).
        """
        values = np.asarray(values, dtype=float)
        nominal = self.nominal_values
        resistor = np.array([isinstance(self.circuit[axis.name], Resistor)
                             for axis in self.axes])
        with np.errstate(divide="ignore", invalid="ignore"):
            scales = np.where(resistor[None, :],
                              nominal[None, :] / values,
                              values / nominal[None, :])
        return np.where(nominal[None, :] == 0.0, 1.0, scales)

    # ------------------------------------------------------------------ #
    # the rebuild reference
    # ------------------------------------------------------------------ #

    def apply(self, values, name=None):
        """One perturbed circuit with the space's elements set to ``values``.

        This is the rebuild-per-sample reference path: a single circuit copy
        plus one element replacement per axis, exactly what a caller without
        the vectorized engine would run per Monte Carlo sample.
        """
        values = np.asarray(values, dtype=float)
        if values.shape != (len(self.axes),):
            raise NetlistError(
                f"expected {len(self.axes)} values, got shape {values.shape}"
            )
        perturbed = self.circuit.copy(name or f"{self.circuit.name}-sample")
        for axis, value in zip(self.axes, values):
            element = perturbed[axis.name]
            if isinstance(element, VCCS):
                replacement = dataclasses.replace(element, gm=float(value))
            else:
                replacement = dataclasses.replace(element, value=float(value))
            perturbed.replace(replacement)
        return perturbed

    def __repr__(self):
        return (f"ParameterSpace({self.circuit.name!r}, axes={len(self.axes)}, "
                f"elements={self.names[:4]}{'...' if len(self.axes) > 4 else ''})")
