"""Supervised multiprocess ensemble driver: fast *and* fault-tolerant.

The PR 5 engine is single-process, and the PR 7 resilience layer runs
quarantined ensembles serially so the report is deterministic — so the
system was either fast or fault-tolerant, never both.  This module removes
that trade-off: :func:`parallel_ensemble_sweep` shards the sample axis
across worker *processes* under a supervisor that keeps the run alive
through worker crashes and hangs, while keeping every result bit identical
to an uninterrupted single-process resilient run.

Determinism is structural, not statistical:

* element values are drawn **up front** from the seeded sampler and placed
  in shared memory; every worker sees the same bits;
* **shard boundaries are fixed** by ``shard_size`` alone — never by worker
  count, completion order, or failures — and both batched dense kernels are
  batch-size invariant while the resilient path solves sample-by-sample, so
  a shard's response rows are bit-for-bit the rows of the full run;
* a re-dispatched shard re-runs the identical computation on identical
  inputs, so retries are invisible in the output;
* per-shard :class:`~repro.engine.resilience.SweepReport`s and streaming
  :class:`~repro.montecarlo.checkpoint.EnsembleStatistics` are merged **in
  fixed shard order** after completion, regardless of which worker finished
  which shard when.

The supervisor distinguishes two failure planes:

* **infrastructure failure** — a worker process died (SIGKILL, OOM), hung
  past the shard deadline, went heartbeat-silent, or raised something that
  is not a :class:`~repro.errors.ReproError`.  The shard is re-dispatched
  to a healthy worker with bounded retries and backoff; the dead worker is
  replaced.  When the retry budget is exhausted the run aborts with a
  typed :class:`~repro.errors.ShardFailureError` carrying the shard index
  and the chronological attempt trail.
* **numerical failure** — the escalation chain inside a worker was
  exhausted for some sample.  Exactly as in-process: with
  ``on_failure="quarantine"`` the sample is masked NaN and recorded in the
  shard report; with ``"raise"`` the error aborts the ensemble.  Numerical
  failure never causes a shard re-run.

Workers send their :data:`~repro.engine.resilience.TELEMETRY` delta with
each completed shard; the supervisor folds each delta exactly once, so
process-wide counters reflect the whole ensemble no matter how many
processes solved it.

Environment knobs: ``REPRO_MP_START`` selects the multiprocessing start
method (``fork`` / ``spawn`` / ``forkserver``; default: the platform
default), ``REPRO_PARALLEL_WORKERS`` the default worker count.
"""

from __future__ import annotations

import collections
import dataclasses
import multiprocessing
import os
import pickle
import queue as queue_module
import signal
import threading
import time
from multiprocessing.sharedctypes import RawArray
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine.resilience import (SweepReport, merge_shard_report,
                                 merge_telemetry, report_from_json,
                                 report_to_json, telemetry_snapshot)
from ..errors import (FormulationError, ReproError, ShardFailureError,
                      SingularMatrixError)
from .engine import EnsembleResult, _normalize_output, ensemble_sweep
from .space import ParameterSpace
from .statistics import (DEFAULT_HISTOGRAM_BINS, DEFAULT_HISTOGRAM_RANGE,
                         EnsembleStatistics, StreamingYield)

__all__ = ["SupervisorConfig", "ParallelRunInfo", "ShardRun", "shard_plan",
           "run_shards", "parallel_ensemble_sweep"]

#: Process-level fault plan installed by :func:`tests.faults.parallel_faults`:
#: ``{shard_index: action | [action_per_attempt, ...]}`` with actions
#: ``"kill"`` / ``"hang"`` / ``"crash"`` / ``"kill_after"`` (a bare string
#: applies to every attempt — a *poisoned* shard).  ``"kill_after"`` solves
#: the shard completely and SIGKILLs the worker *before reporting*, the
#: worst case for streaming accumulators: the re-dispatched attempt must
#: fold exactly once, never twice.  Shipped to workers inside the pickled
#: payload, so it works under fork and spawn alike.
_FAULT_PLAN: Optional[dict] = None


def _default_workers() -> int:
    """Worker processes when the caller does not say (env-overridable)."""
    override = os.environ.get("REPRO_PARALLEL_WORKERS")
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _start_method() -> Optional[str]:
    """Start method from ``REPRO_MP_START`` (``None`` = platform default)."""
    method = os.environ.get("REPRO_MP_START", "").strip().lower()
    return method if method in ("fork", "spawn", "forkserver") else None


@dataclasses.dataclass(frozen=True)
class SupervisorConfig:
    """Supervision timing and retry budget of a parallel ensemble run.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between worker heartbeats (a daemon thread in each worker
        stamps ``time.monotonic()`` into a shared slot).
    heartbeat_timeout:
        A busy worker whose last heartbeat is older than this is declared
        hung, killed and replaced; its shard is re-dispatched.
    shard_deadline:
        Wall-clock budget for one shard attempt; exceeding it counts as a
        hang even if heartbeats still arrive.
    max_attempts:
        Total attempts per shard (first try + retries) before the run
        aborts with :class:`~repro.errors.ShardFailureError`.
    backoff:
        Seconds to wait before re-dispatching a failed shard, scaled by the
        number of attempts already made.
    poll_interval:
        Supervisor loop granularity.
    start_method:
        ``"fork"`` / ``"spawn"`` / ``"forkserver"``; ``None`` reads
        ``REPRO_MP_START`` and falls back to the platform default.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    shard_deadline: float = 600.0
    max_attempts: int = 3
    backoff: float = 0.25
    poll_interval: float = 0.01
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise FormulationError("max_attempts must be at least 1")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise FormulationError(
                "heartbeat_timeout must exceed heartbeat_interval")


@dataclasses.dataclass
class ParallelRunInfo:
    """How a parallel ensemble was executed (attached to the result).

    ``attempts`` maps shard index → chronological attempt trail (strings);
    ``redispatches`` counts infrastructure re-runs (0 on a clean run);
    ``statistics`` is the streaming accumulator folded in fixed shard
    order, bit-identical to a checkpointed run of the same ``shard_size``.
    """

    workers: int
    shard_size: int
    shards: int
    redispatches: int
    attempts: Dict[int, List[str]]
    statistics: EnsembleStatistics


@dataclasses.dataclass
class ShardRun:
    """Raw outcome of :func:`run_shards` before merging.

    ``responses`` holds every plan row solved (rows outside the plan are
    untouched) — ``None`` for a streaming (``store_responses=False``) run,
    whose per-shard accumulators live in ``statistics`` / ``yields``
    instead; ``reports`` maps shard index → per-shard
    :class:`~repro.engine.resilience.SweepReport` (``None`` on the legacy
    raise path).
    """

    responses: Optional[np.ndarray]
    reports: Dict[int, Optional[SweepReport]]
    attempts: Dict[int, List[str]]
    solver_used: str
    redispatches: int
    workers: int
    statistics: Dict[int, EnsembleStatistics] = dataclasses.field(
        default_factory=dict)
    yields: Dict[int, StreamingYield] = dataclasses.field(
        default_factory=dict)


def shard_plan(samples, shard_size, first_sample=0) -> List[Tuple[int, int, int]]:
    """Fixed ``(shard_index, start, stop)`` boundaries over the sample axis.

    Boundaries depend only on ``shard_size`` — the same function cuts
    checkpointed, parallel and sequential runs, which is what makes their
    statistics streams bit-comparable.  ``first_sample`` lets a resumed
    checkpoint plan only its remaining tail while keeping global indices.
    """
    samples = int(samples)
    shard_size = int(shard_size)
    if shard_size <= 0:
        raise FormulationError(
            f"shard_size must be positive, got {shard_size}")
    plan = []
    for start in range(int(first_sample), samples, shard_size):
        stop = min(start + shard_size, samples)
        plan.append((start // shard_size, start, stop))
    return plan


def _plan_action(fault_plan, shard, attempt) -> Optional[str]:
    """The injected action for this (shard, attempt), if any."""
    if not fault_plan:
        return None
    spec = fault_plan.get(shard)
    if spec is None:
        return None
    if isinstance(spec, str):
        return spec
    index = attempt - 1
    if 0 <= index < len(spec):
        return spec[index]
    return None


# --------------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------------- #


def _heartbeat_loop(slot, heartbeats, interval, stop_event):
    while not stop_event.wait(interval):
        heartbeats[slot] = time.monotonic()


def _worker_main(slot, payload, tasks, results, values_buffer,
                 responses_buffer, weights_buffer, heartbeats):
    """One worker process: pull shard tasks, solve, push results.

    Stored mode: the worker reads its sample rows from the shared values
    buffer and writes its response rows to a disjoint slice of the shared
    responses buffer *before* reporting completion, so a kill at any
    instant leaves either an unreported (re-runnable) shard or a fully
    written one.

    Streaming mode (``store_responses=False``): no responses buffer exists;
    the worker folds its shard into fresh accumulators and ships them in
    the completion message.  A kill before the message leaves *no* trace —
    accumulators travel with the report, so a shard folds exactly once no
    matter how many attempts it took.
    """
    num_samples = payload["num_samples"]
    num_axes = payload["num_axes"]
    num_points = payload["num_points"]
    store_responses = payload["store_responses"]
    values = np.frombuffer(values_buffer, dtype=float).reshape(
        num_samples, num_axes)
    responses = None
    if store_responses:
        responses = np.frombuffer(
            responses_buffer, dtype=np.complex128).reshape(
                num_samples, num_points)
    weights = None
    if weights_buffer is not None:
        weights = np.frombuffer(weights_buffer, dtype=float)[:num_samples]
    heartbeats[slot] = time.monotonic()
    stop_event = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(slot, heartbeats, payload["heartbeat_interval"], stop_event),
        daemon=True)
    beat.start()
    fault_plan = payload["fault_plan"]
    while True:
        task = tasks.get()
        if task is None:
            return
        shard, start, stop, attempt = task
        action = _plan_action(fault_plan, shard, attempt)
        if action == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "hang":
            # Go silent: heartbeats stop, the task never completes.  The
            # supervisor must detect and kill us.
            stop_event.set()
            time.sleep(3600.0)
        try:
            if action == "crash":
                raise RuntimeError(
                    f"injected crash (shard {shard}, attempt {attempt})")
            before = telemetry_snapshot()
            if store_responses:
                shard_result = ensemble_sweep(
                    payload["circuit"], payload["output"],
                    payload["frequencies"], payload["space"],
                    values=values[start:stop], solver=payload["solver"],
                    method=payload["method"], workers=1,
                    on_failure=payload["on_failure"],
                    policy=payload["policy"])
                shard_stats = shard_yield = None
            else:
                shard_result = ensemble_sweep(
                    payload["circuit"], payload["output"],
                    payload["frequencies"], payload["space"],
                    values=values[start:stop], solver=payload["solver"],
                    method=payload["method"], workers=1,
                    on_failure=payload["on_failure"],
                    policy=payload["policy"],
                    store_responses=False, shard_size=stop - start,
                    histogram_bins=payload["histogram_bins"],
                    histogram_range=payload["histogram_range"],
                    weights=(None if weights is None
                             else weights[start:stop]),
                    yield_specs=payload["yield_specs"])
                shard_stats = shard_result.statistics
                shard_yield = shard_result.yields
            after = telemetry_snapshot()
            if action == "kill_after":
                # The solve completed but the worker dies before any
                # write-back / report: the at-most-once worst case.
                os.kill(os.getpid(), signal.SIGKILL)
            if store_responses:
                responses[start:stop] = shard_result.responses
            delta = {key: after[key] - before[key] for key in after}
            results.put(("done", slot, shard, attempt,
                         report_to_json(shard_result.report), delta,
                         shard_result.solver, shard_stats, shard_yield))
        except ReproError as error:
            # Numerical failure (raise mode): forward the typed error.
            try:
                pickle.dumps(error)
                message = error
            except Exception:
                message = f"{type(error).__name__}: {error}"
            results.put(("numerical", slot, shard, attempt, message))
        except BaseException as error:
            # Anything else is an infrastructure failure of this attempt.
            results.put(("infra", slot, shard, attempt,
                         f"{type(error).__name__}: {error}"))


# --------------------------------------------------------------------------- #
# supervisor side
# --------------------------------------------------------------------------- #


@dataclasses.dataclass
class _WorkerHandle:
    slot: int
    process: object
    tasks: object
    results: object
    shard: Optional[int] = None
    attempt: int = 0
    dispatched_at: float = 0.0


def _spawn_worker(context, slot, payload, values_buffer, responses_buffer,
                  weights_buffer, heartbeats) -> _WorkerHandle:
    tasks = context.Queue()
    results = context.Queue()
    process = context.Process(
        target=_worker_main,
        args=(slot, payload, tasks, results, values_buffer,
              responses_buffer, weights_buffer, heartbeats),
        daemon=True, name=f"repro-ensemble-worker-{slot}")
    process.start()
    # A fresh worker must not be declared hung before its first beat.
    heartbeats[slot] = time.monotonic()
    return _WorkerHandle(slot=slot, process=process, tasks=tasks,
                         results=results)


def _stop_worker(handle) -> None:
    if handle.process.is_alive():
        handle.process.kill()
    handle.process.join(timeout=5.0)
    # Never let a dead worker's queues block interpreter shutdown.
    for channel in (handle.tasks, handle.results):
        try:
            channel.cancel_join_thread()
            channel.close()
        except Exception:
            pass


def _shutdown(handles) -> None:
    for handle in handles:
        try:
            handle.tasks.put_nowait(None)
        except Exception:
            pass
    deadline = time.monotonic() + 2.0
    for handle in handles:
        handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
    for handle in handles:
        _stop_worker(handle)


def run_shards(circuit, output, frequencies, space, values, plan, *,
               solver="lapack", method="auto", on_failure="quarantine",
               policy=None, workers=None, config=None,
               on_shard_complete=None, store_responses=True,
               weights=None, yield_specs=None, histogram_bins=None,
               histogram_range=None, stats_out=None,
               yields_out=None) -> ShardRun:
    """Execute a fixed shard plan, supervised, and return raw outcomes.

    The workhorse under both :func:`parallel_ensemble_sweep` and the
    ``workers=`` arm of
    :func:`~repro.montecarlo.checkpoint.checkpointed_ensemble_sweep`.
    ``plan`` rows index into ``values`` (and the returned ``responses``),
    so a resumed checkpoint can run just its remaining tail with global
    sample indices.

    ``on_shard_complete(prefix_shards, responses, reports, solver_used)``
    fires in the supervisor whenever the **contiguous** completed prefix of
    ``plan`` advances — shards may finish out of order, but the callback
    only ever sees an in-order prefix, which is what lets the checkpoint
    layer fold + save deterministically mid-run.

    ``store_responses=False`` switches to streaming: no shared responses
    buffer is allocated, each shard's rows are folded worker-side into
    per-shard :class:`~repro.montecarlo.statistics.EnsembleStatistics` /
    :class:`~repro.montecarlo.statistics.StreamingYield` accumulators that
    travel back in the completion message, and the returned
    ``ShardRun.responses`` is ``None``.  ``stats_out`` / ``yields_out``
    (optional dicts) are filled with the per-shard accumulators *as results
    arrive* — before ``on_shard_complete`` fires for them — which is how
    the checkpoint layer folds streaming shards mid-run.  ``weights``
    carries optional per-sample likelihood ratios (global indexing, shipped
    through shared memory).

    ``workers=1`` executes the plan sequentially in-process (no
    subprocesses, no fault injection) — the bit-parity reference for every
    multi-worker run.
    """
    config = config or SupervisorConfig()
    values = np.ascontiguousarray(np.asarray(values, dtype=float))
    frequencies = np.asarray(frequencies, dtype=float)
    num_samples, num_axes = values.shape
    num_points = len(frequencies)
    if workers is None:
        workers = _default_workers()
    workers = max(1, min(int(workers), max(1, len(plan))))
    if weights is not None:
        weights = np.ascontiguousarray(np.asarray(weights, dtype=float))

    attempts: Dict[int, List[str]] = collections.defaultdict(list)
    reports: Dict[int, Optional[SweepReport]] = {}
    statistics = {} if stats_out is None else stats_out
    yields = {} if yields_out is None else yields_out
    solver_used = solver
    bounds = {shard: (start, stop) for shard, start, stop in plan}
    streaming_kwargs = {
        "store_responses": False, "histogram_bins": histogram_bins,
        "histogram_range": histogram_range, "yield_specs": yield_specs}

    if workers == 1:
        responses = (np.zeros((num_samples, num_points), dtype=complex)
                     if store_responses else None)
        for prefix, (shard, start, stop) in enumerate(plan):
            extra = {}
            if not store_responses:
                extra = dict(streaming_kwargs, shard_size=stop - start,
                             weights=(None if weights is None
                                      else weights[start:stop]))
            shard_result = ensemble_sweep(
                circuit, output, frequencies, space,
                values=values[start:stop], solver=solver, method=method,
                workers=1, on_failure=on_failure, policy=policy, **extra)
            if store_responses:
                responses[start:stop] = shard_result.responses
            else:
                statistics[shard] = shard_result.statistics
                if shard_result.yields is not None:
                    yields[shard] = shard_result.yields
            reports[shard] = shard_result.report
            solver_used = shard_result.solver
            attempts[shard].append("attempt 1 in-process: completed")
            if on_shard_complete is not None:
                on_shard_complete(prefix + 1, responses, reports,
                                  solver_used)
        return ShardRun(responses=responses, reports=reports,
                        attempts=dict(attempts), solver_used=solver_used,
                        redispatches=0, workers=1, statistics=statistics,
                        yields=yields)

    context = multiprocessing.get_context(
        config.start_method or _start_method())
    values_buffer = RawArray("d", max(1, num_samples * num_axes))
    np.frombuffer(values_buffer, dtype=float)[:values.size] = values.ravel()
    if store_responses:
        responses_buffer = RawArray("d", max(1, 2 * num_samples * num_points))
        responses = np.frombuffer(
            responses_buffer, dtype=np.complex128,
            count=num_samples * num_points).reshape(num_samples, num_points)
    else:
        # Streaming: accumulators ride the result queue; the O(M×F) shared
        # buffer — the very thing this mode removes — is never allocated.
        responses_buffer = None
        responses = None
    weights_buffer = None
    if weights is not None:
        weights_buffer = RawArray("d", max(1, num_samples))
        np.frombuffer(weights_buffer,
                      dtype=float)[:weights.size] = weights.ravel()
    heartbeats = RawArray("d", workers)

    payload = {
        "circuit": circuit, "output": output, "frequencies": frequencies,
        "space": space, "solver": solver, "method": method,
        "on_failure": on_failure, "policy": policy,
        "num_samples": num_samples, "num_axes": num_axes,
        "num_points": num_points,
        "store_responses": store_responses,
        "yield_specs": yield_specs,
        "histogram_bins": histogram_bins,
        "histogram_range": histogram_range,
        "heartbeat_interval": config.heartbeat_interval,
        "fault_plan": _FAULT_PLAN,
    }

    pending = collections.deque(shard for shard, _, __ in plan)
    ready_at: Dict[int, float] = {}
    attempt_counts: Dict[int, int] = collections.defaultdict(int)
    completed = set()
    prefix = 0
    redispatches = 0
    handles = [_spawn_worker(context, slot, payload, values_buffer,
                             responses_buffer, weights_buffer, heartbeats)
               for slot in range(workers)]
    failure: List[BaseException] = []

    def requeue(handle, reason):
        nonlocal redispatches
        shard = handle.shard
        handle.shard = None
        attempts[shard].append(reason)
        if attempt_counts[shard] >= config.max_attempts:
            start, stop = bounds[shard]
            failure.append(ShardFailureError(
                f"shard {shard} (samples {start}:{stop}) failed "
                f"{attempt_counts[shard]} attempts: "
                f"{'; '.join(attempts[shard])}",
                shard=shard, start=start, stop=stop,
                attempts=attempts[shard]))
            return
        redispatches += 1
        ready_at[shard] = (time.monotonic()
                           + config.backoff * attempt_counts[shard])
        pending.appendleft(shard)

    def replace(index, reason=None):
        handle = handles[index]
        if handle.shard is not None:
            requeue(handle, reason)
        _stop_worker(handle)
        handles[index] = _spawn_worker(context, handle.slot, payload,
                                       values_buffer, responses_buffer,
                                       weights_buffer, heartbeats)

    def dispatch():
        now = time.monotonic()
        for handle in handles:
            if handle.shard is not None or not pending:
                continue
            for candidate in list(pending):
                if ready_at.get(candidate, 0.0) > now:
                    continue
                pending.remove(candidate)
                attempt_counts[candidate] += 1
                start, stop = bounds[candidate]
                handle.shard = candidate
                handle.attempt = attempt_counts[candidate]
                handle.dispatched_at = now
                handle.tasks.put((candidate, start, stop, handle.attempt))
                break

    def advance_prefix():
        nonlocal prefix
        moved = False
        while prefix < len(plan) and plan[prefix][0] in completed:
            prefix += 1
            moved = True
        if moved and on_shard_complete is not None:
            on_shard_complete(prefix, responses, reports, solver_used)

    def handle_message(handle, message):
        kind, slot, shard, attempt, *rest = message
        if kind == "done":
            report_json, delta, shard_solver, shard_stats, shard_yield = rest
            if handle.shard == shard:
                handle.shard = None
            if shard not in completed:
                completed.add(shard)
                if shard in pending:      # late result beat a re-dispatch
                    pending.remove(shard)
                reports[shard] = report_from_json(report_json)
                if shard_stats is not None:
                    statistics[shard] = shard_stats
                if shard_yield is not None:
                    yields[shard] = shard_yield
                merge_telemetry(delta)
                attempts[shard].append(
                    f"attempt {attempt} on worker {slot}: completed")
                nonlocal solver_used
                solver_used = shard_solver
                advance_prefix()
        elif kind == "numerical":
            error = rest[0]
            if not isinstance(error, BaseException):
                error = SingularMatrixError(str(error))
            failure.append(error)
        else:  # "infra": the worker survived but the attempt did not
            requeue(handle, f"attempt {attempt} on worker {slot}: "
                            f"uncaught worker exception ({rest[0]})")

    try:
        while len(completed) < len(plan) and not failure:
            dispatch()
            progressed = False
            for handle in handles:
                try:
                    message = handle.results.get_nowait()
                except queue_module.Empty:
                    continue
                except (EOFError, OSError):
                    continue
                progressed = True
                handle_message(handle, message)
                if failure:
                    break
            if failure:
                break
            now = time.monotonic()
            for index, handle in enumerate(handles):
                if handle.shard is not None:
                    if not handle.process.is_alive():
                        replace(index,
                                f"attempt {handle.attempt} on worker "
                                f"{handle.slot}: worker died (exit code "
                                f"{handle.process.exitcode})")
                    elif (now - heartbeats[handle.slot]
                          > config.heartbeat_timeout):
                        replace(index,
                                f"attempt {handle.attempt} on worker "
                                f"{handle.slot}: heartbeat lost (worker "
                                "hung)")
                    elif (now - handle.dispatched_at
                          > config.shard_deadline):
                        replace(index,
                                f"attempt {handle.attempt} on worker "
                                f"{handle.slot}: shard deadline exceeded")
                elif not handle.process.is_alive():
                    replace(index)
                if failure:
                    break
            if not progressed and not failure:
                time.sleep(config.poll_interval)
    finally:
        _shutdown(handles)

    if failure:
        raise failure[0]
    return ShardRun(responses=responses, reports=reports,
                    attempts=dict(attempts), solver_used=solver_used,
                    redispatches=redispatches, workers=workers,
                    statistics=statistics, yields=yields)


# --------------------------------------------------------------------------- #
# the public driver
# --------------------------------------------------------------------------- #


def parallel_ensemble_sweep(circuit, output, frequencies, space=None, *,
                            values=None, samples=128, seed=0,
                            sampler="random", shard_size=32, workers=None,
                            solver="lapack", method="auto",
                            on_failure="quarantine", policy=None,
                            config=None, store_responses=True,
                            histogram_bins=None, histogram_range=None,
                            weights=None, yield_specs=None) -> EnsembleResult:
    """Evaluate a tolerance ensemble across supervised worker processes.

    Drop-in alternative to :func:`~repro.montecarlo.engine.ensemble_sweep`
    for production sample counts: the sample axis is cut into fixed shards
    (:func:`shard_plan`) and distributed over ``workers`` processes through
    shared memory, under crash / hang supervision with bounded re-dispatch
    (see the module docstring for the failure taxonomy).

    The result — responses, quarantined indices, merged
    :class:`~repro.engine.resilience.SweepReport`, streaming statistics —
    is **bit-identical for every worker count**, including ``workers=1``
    (which runs in-process and is the reference the fault-injection tests
    compare against).

    Parameters beyond :func:`~repro.montecarlo.engine.ensemble_sweep`:

    sampler:
        Point set for the up-front draw: ``"random"``, ``"sobol"`` or
        ``"lhs"`` (ignored when ``values`` is given).
    shard_size:
        Samples per shard — the unit of distribution, re-dispatch and
        statistics folding.  Match a checkpointed run's ``shard_size`` for
        bit-identical statistics streams.
    workers:
        Worker processes (default: ``REPRO_PARALLEL_WORKERS`` or the CPU
        count).  ``1`` = sequential in-process execution.
    on_failure:
        Defaults to ``"quarantine"`` — the whole point of a supervised run
        is that neither a bad sample nor a bad worker kills it.
    config:
        :class:`SupervisorConfig` timing / retry budget.
    store_responses, histogram_bins, histogram_range, weights, yield_specs:
        Streaming estimation controls, exactly as for
        :func:`~repro.montecarlo.engine.ensemble_sweep`: with
        ``store_responses=False`` workers fold their shards into
        accumulators and ship those instead of response rows (no O(M×F)
        shared buffer exists at all), the supervisor merges them **in fixed
        shard order** once the plan completes, and the result carries
        ``responses=None`` with ``statistics`` / ``yields`` populated —
        bit-identical to the sequential streaming run at the same
        ``shard_size``, for every worker count.

    Raises
    ------
    ShardFailureError
        When some shard exhausts its infrastructure retry budget.
    """
    if on_failure not in ("raise", "quarantine"):
        raise FormulationError(f"unknown failure mode {on_failure!r}")
    if space is None:
        space = ParameterSpace(circuit)
    frequencies = np.asarray(frequencies, dtype=float)
    if values is None:
        values = space.sample_values(samples, seed, method=sampler)
    else:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(space):
            raise FormulationError(
                f"values must be (M, {len(space)}), got {values.shape}")
    num_samples = values.shape[0]
    plan = shard_plan(num_samples, shard_size)
    resilient = on_failure == "quarantine" or policy is not None
    output_normalized = _normalize_output(output)

    if store_responses:
        for name, value in (("histogram_bins", histogram_bins),
                            ("histogram_range", histogram_range),
                            ("weights", weights),
                            ("yield_specs", yield_specs)):
            if value is not None:
                raise FormulationError(
                    f"{name} requires the streaming mode "
                    "(store_responses=False)")
    else:
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (num_samples,):
                raise FormulationError(
                    f"weights must be ({num_samples},), got {weights.shape}")
        bins = (DEFAULT_HISTOGRAM_BINS if histogram_bins is None
                else int(histogram_bins))
        low, high = (DEFAULT_HISTOGRAM_RANGE if histogram_range is None
                     else histogram_range)
        run = run_shards(circuit, output, frequencies, space, values, plan,
                         solver=solver, method=method, on_failure=on_failure,
                         policy=policy, workers=workers, config=config,
                         store_responses=False, weights=weights,
                         yield_specs=yield_specs, histogram_bins=bins,
                         histogram_range=(low, high))
        statistics = EnsembleStatistics(
            frequencies=frequencies, histogram_bins=bins,
            histogram_low_db=float(low), histogram_high_db=float(high))
        yields = None
        if yield_specs is not None:
            specs = (list(yield_specs)
                     if isinstance(yield_specs, (list, tuple))
                     else [yield_specs])
            yields = StreamingYield(spec_names=[spec.name for spec in specs])
        merged = (SweepReport(label="ensemble member", kind="sample",
                              total=num_samples) if resilient else None)
        # Fixed shard order: merging each shard accumulator into exact
        # zeros replays the sequential fold addition-for-addition, so the
        # result is bit-identical for every worker count.
        for shard, start, stop in plan:
            shard_stats = run.statistics.get(shard)
            if shard_stats is not None:
                statistics.merge(shard_stats)
            shard_yield = run.yields.get(shard)
            if yields is not None and shard_yield is not None:
                yields.merge(shard_yield)
            if merged is not None and run.reports.get(shard) is not None:
                merge_shard_report(merged, run.reports[shard], start)
        info = ParallelRunInfo(workers=run.workers,
                               shard_size=int(shard_size),
                               shards=len(plan),
                               redispatches=run.redispatches,
                               attempts=run.attempts, statistics=statistics)
        return EnsembleResult(frequencies=frequencies, values=values,
                              responses=None, space=space,
                              output=output_normalized,
                              solver=run.solver_used, report=merged,
                              parallel=info, statistics=statistics,
                              yields=yields, weights=weights)

    run = run_shards(circuit, output, frequencies, space, values, plan,
                     solver=solver, method=method, on_failure=on_failure,
                     policy=policy, workers=workers, config=config)

    responses = np.array(run.responses, copy=True)
    statistics = EnsembleStatistics(frequencies=frequencies)
    merged = (SweepReport(label="ensemble member", kind="sample",
                          total=num_samples) if resilient else None)
    # Fixed shard order: the exact statistics stream of a checkpointed or
    # sequential run with the same shard_size, whatever the completion
    # order was.
    for shard, start, stop in plan:
        shard_view = EnsembleResult(
            frequencies=frequencies, values=values[start:stop],
            responses=responses[start:stop], space=space,
            output=output_normalized, solver=run.solver_used,
            report=run.reports.get(shard))
        statistics.update(
            shard_view.magnitudes_db()[shard_view.surviving_mask()])
        if merged is not None and run.reports.get(shard) is not None:
            merge_shard_report(merged, run.reports[shard], start)

    info = ParallelRunInfo(workers=run.workers, shard_size=int(shard_size),
                           shards=len(plan), redispatches=run.redispatches,
                           attempts=run.attempts, statistics=statistics)
    return EnsembleResult(frequencies=frequencies, values=values,
                          responses=responses, space=space,
                          output=output_normalized, solver=run.solver_used,
                          report=merged, parallel=info)
