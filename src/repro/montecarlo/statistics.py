"""Mergeable streaming estimators for O(F)-memory tolerance ensembles.

The ``(M, F)`` responses buffer is the binding constraint of production
Monte Carlo runs — at 10⁶ samples × 200 points it is 3.2 GB of complex
doubles before the first statistic is computed.  This module holds the
accumulators that replace it: every estimator here folds one shard of
response rows at a time and is **mergeable** in fixed shard order, so the
ensemble drivers can ship accumulators instead of rows and the result is
bit-identical for any worker count.

* :class:`EnsembleStatistics` — per-frequency min / max / mean / std of the
  dB magnitudes (the PR 7 checkpoint accumulator, relocated here), extended
  with optional **likelihood-ratio weights** (importance sampling) and an
  optional fixed-bin **log-magnitude histogram** whose
  :meth:`~EnsembleStatistics.percentile_db` answers envelope percentile
  queries to within one bin width without ever materializing the ensemble.
* :class:`StreamingYield` — weighted pass / fail accounting against
  :class:`~repro.analysis.montecarlo.YieldSpec` sets, with both the
  unnormalized (unbiased) and self-normalized failure-probability
  estimators and their standard errors.
* :class:`WeightDiagnostics` — effective-sample-size and weight-degeneracy
  diagnostics, so a mis-targeted importance proposal surfaces as an explicit
  warning flag instead of a silently wrong estimate.

Determinism argument (the contract the property tests pin down): a shard
accumulator starts from exact zeros, and for IEEE-754 doubles ``0.0 + x``
is bitwise ``x`` — so merging per-shard accumulators in fixed shard order
replays exactly the addition sequence of a sequential run over the same
shard boundaries.  Shard boundaries are fixed by ``shard_size`` alone
(:func:`~repro.montecarlo.parallel.shard_plan`), never by worker count or
completion order, hence "bit-identical across worker counts".
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..errors import FormulationError

__all__ = ["EnsembleStatistics", "StreamingYield", "WeightDiagnostics",
           "DEFAULT_HISTOGRAM_BINS", "DEFAULT_HISTOGRAM_RANGE"]

#: Default fixed-bin layout of the streaming log-magnitude histogram:
#: 0.5 dB bins across a range generous enough for passive dividers
#: (hundreds of dB of attenuation) and op-amp gain stages alike.  Rows
#: outside the range land in the edge bins — percentiles degrade gracefully
#: instead of failing.
DEFAULT_HISTOGRAM_BINS = 1200
DEFAULT_HISTOGRAM_RANGE = (-400.0, 200.0)

#: Effective-sample-size floor (in samples) under which a weighted estimate
#: is flagged degenerate, and the largest tolerable single-weight share of
#: the total.  Deliberately conservative: an estimate resting on fewer than
#: ~10 effective samples, or dominated by one draw, is noise.
_ESS_FLOOR = 10.0
_MAX_WEIGHT_SHARE = 0.5


@dataclasses.dataclass
class WeightDiagnostics:
    """Health report of an importance-weighted estimate.

    ``ess`` is the Kish effective sample size ``(Σw)² / Σw²`` of the weights
    behind the estimate; ``ess_fraction`` divides by the number of draws.
    ``max_weight_share`` is the largest single weight over the total — near
    1.0 the whole estimate rests on one draw.  ``degenerate`` is the
    summary flag callers must check before trusting the numbers.
    """

    count: int
    ess: float
    ess_fraction: float
    max_weight_share: float
    degenerate: bool
    reason: str = ""


def _kish_ess(weight_sum, weight_sumsq) -> float:
    """Kish effective sample size of a weight population."""
    if weight_sumsq <= 0.0:
        return 0.0
    return weight_sum * weight_sum / weight_sumsq


def _diagnose(count, weight_sum, weight_sumsq, max_weight) -> WeightDiagnostics:
    """ESS / degeneracy diagnostics over one weight population."""
    ess = _kish_ess(weight_sum, weight_sumsq)
    fraction = ess / count if count else 0.0
    share = max_weight / weight_sum if weight_sum > 0.0 else 1.0
    reason = ""
    if count == 0 or weight_sum <= 0.0:
        reason = "no weighted samples contributed to the estimate"
    elif ess < _ESS_FLOOR:
        reason = (f"effective sample size {ess:.2f} below the "
                  f"{_ESS_FLOOR:.0f}-sample floor")
    elif share > _MAX_WEIGHT_SHARE:
        reason = (f"one draw carries {share:.0%} of the total weight "
                  f"(> {_MAX_WEIGHT_SHARE:.0%})")
    return WeightDiagnostics(count=int(count), ess=float(ess),
                             ess_fraction=float(fraction),
                             max_weight_share=float(share),
                             degenerate=bool(reason), reason=reason)


@dataclasses.dataclass
class EnsembleStatistics:
    """Streaming per-frequency magnitude statistics (all in dB).

    The mergeable accumulator behind checkpointing and the streaming
    (``store_responses=False``) ensemble drivers: ``count`` samples have
    contributed their dB magnitude rows to ``sum_db`` / ``sumsq_db`` and the
    running extremes.  Updates happen once per shard in fixed shard order,
    so a resumed or multi-worker run reproduces the identical addition
    sequence and hence identical bits.  Quarantined (NaN) samples never
    enter the accumulators.

    Two optional extensions (both default off, keeping the unweighted
    histogram-free accumulator byte-compatible with PR 7/9 checkpoints):

    * **weights** — :meth:`update` accepts per-row likelihood-ratio weights;
      moments become weighted (``mean = Σw·x / Σw``) and ``weight_sum`` /
      ``weight_sumsq`` / ``max_weight`` feed :meth:`weight_diagnostics`.
      Unweighted updates add ``1.0`` per row, so mixed usage stays coherent.
    * **histogram** — ``histogram_bins > 0`` maintains a fixed-bin
      per-frequency histogram of the dB magnitudes; :meth:`percentile_db`
      then answers envelope percentile queries with error bounded by one
      bin width.  Bin counts are additive, so the histogram merges exactly
      like the moments.
    """

    frequencies: np.ndarray
    count: int = 0
    sum_db: Optional[np.ndarray] = None
    sumsq_db: Optional[np.ndarray] = None
    min_db: Optional[np.ndarray] = None
    max_db: Optional[np.ndarray] = None
    weight_sum: float = 0.0
    weight_sumsq: float = 0.0
    max_weight: float = 0.0
    histogram_bins: int = 0
    histogram_low_db: float = DEFAULT_HISTOGRAM_RANGE[0]
    histogram_high_db: float = DEFAULT_HISTOGRAM_RANGE[1]
    histogram: Optional[np.ndarray] = None

    def __post_init__(self):
        points = len(self.frequencies)
        if self.sum_db is None:
            self.sum_db = np.zeros(points)
        if self.sumsq_db is None:
            self.sumsq_db = np.zeros(points)
        if self.min_db is None:
            self.min_db = np.full(points, np.inf)
        if self.max_db is None:
            self.max_db = np.full(points, -np.inf)
        self.histogram_bins = int(self.histogram_bins)
        if self.histogram_bins < 0:
            raise FormulationError(
                f"histogram_bins must be >= 0, got {self.histogram_bins}")
        if self.histogram_bins and self.histogram_high_db <= self.histogram_low_db:
            raise FormulationError(
                "histogram range must satisfy low < high, got "
                f"({self.histogram_low_db}, {self.histogram_high_db})")
        if self.histogram_bins and self.histogram is None:
            self.histogram = np.zeros((points, self.histogram_bins))

    # ------------------------------------------------------------------ #
    # folding
    # ------------------------------------------------------------------ #

    def update(self, magnitudes_db: np.ndarray,
               weights: Optional[np.ndarray] = None) -> None:
        """Fold one shard's ``(K, F)`` surviving magnitude rows in.

        ``weights`` — optional ``(K,)`` likelihood-ratio weights aligned with
        the rows.  Omitted, every row counts 1.0 and the accumulator's
        arithmetic is bit-identical to the historical unweighted form.
        """
        magnitudes_db = np.atleast_2d(np.asarray(magnitudes_db, dtype=float))
        if magnitudes_db.shape[0] == 0:
            return
        rows = magnitudes_db.shape[0]
        self.count += rows
        if weights is None:
            self.sum_db += magnitudes_db.sum(axis=0)
            self.sumsq_db += (magnitudes_db ** 2).sum(axis=0)
            self.weight_sum += float(rows)
            self.weight_sumsq += float(rows)
            self.max_weight = max(self.max_weight, 1.0)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (rows,):
                raise FormulationError(
                    f"weights must be ({rows},) to match the magnitude rows, "
                    f"got {weights.shape}")
            self.sum_db += (weights[:, None] * magnitudes_db).sum(axis=0)
            self.sumsq_db += (weights[:, None] * magnitudes_db ** 2).sum(axis=0)
            self.weight_sum += float(weights.sum())
            self.weight_sumsq += float((weights ** 2).sum())
            if rows:
                self.max_weight = max(self.max_weight, float(weights.max()))
        np.minimum(self.min_db, magnitudes_db.min(axis=0), out=self.min_db)
        np.maximum(self.max_db, magnitudes_db.max(axis=0), out=self.max_db)
        if self.histogram_bins:
            self._fold_histogram(magnitudes_db, weights)

    def _fold_histogram(self, magnitudes_db, weights) -> None:
        """Accumulate ``(K, F)`` rows into the per-frequency bin counts."""
        points = len(self.frequencies)
        bins = self.histogram_bins
        width = (self.histogram_high_db - self.histogram_low_db) / bins
        index = np.floor((magnitudes_db - self.histogram_low_db) / width)
        # Out-of-range rows (and ±inf) land in the edge bins.
        np.clip(index, 0, bins - 1, out=index)
        flat = (index.astype(np.int64)
                + np.arange(points, dtype=np.int64)[None, :] * bins)
        if weights is None:
            counts = np.bincount(flat.ravel(), minlength=points * bins)
        else:
            counts = np.bincount(flat.ravel(),
                                 weights=np.repeat(weights, points),
                                 minlength=points * bins)
        self.histogram += counts.reshape(points, bins)

    def merge(self, other: "EnsembleStatistics") -> None:
        """Fold another accumulator (a later run of shards) into this one."""
        self.count += other.count
        self.sum_db += other.sum_db
        self.sumsq_db += other.sumsq_db
        np.minimum(self.min_db, other.min_db, out=self.min_db)
        np.maximum(self.max_db, other.max_db, out=self.max_db)
        self.weight_sum += other.weight_sum
        self.weight_sumsq += other.weight_sumsq
        self.max_weight = max(self.max_weight, other.max_weight)
        if self.histogram_bins != other.histogram_bins or (
                self.histogram_bins
                and (self.histogram_low_db != other.histogram_low_db
                     or self.histogram_high_db != other.histogram_high_db)):
            raise FormulationError(
                "cannot merge EnsembleStatistics with different histogram "
                f"layouts: ({self.histogram_bins} bins over "
                f"[{self.histogram_low_db}, {self.histogram_high_db}]) vs "
                f"({other.histogram_bins} bins over "
                f"[{other.histogram_low_db}, {other.histogram_high_db}])")
        if self.histogram_bins:
            self.histogram += other.histogram

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #

    def _normalizer(self) -> float:
        """Total weight behind the moments (== count when unweighted)."""
        # Accumulators restored from pre-weight checkpoints carry counts but
        # no weight fields; fall back to the count so their moments survive.
        if self.weight_sum > 0.0:
            return self.weight_sum
        return float(self.count)

    def mean_db(self) -> np.ndarray:
        """Per-frequency (weighted) mean magnitude of the samples seen."""
        if self.count == 0:
            return np.full(len(self.frequencies), np.nan)
        return self.sum_db / self._normalizer()

    def std_db(self) -> np.ndarray:
        """Per-frequency (weighted) population standard deviation (dB)."""
        if self.count == 0:
            return np.full(len(self.frequencies), np.nan)
        normalizer = self._normalizer()
        mean = self.sum_db / normalizer
        variance = np.maximum(self.sumsq_db / normalizer - mean ** 2, 0.0)
        return np.sqrt(variance)

    def percentile_db(self, q) -> np.ndarray:
        """Per-frequency percentile estimate from the streaming histogram.

        ``q`` is a percentile in ``[0, 100]`` (scalar) — the estimate
        interpolates linearly inside the bin where the cumulative (weighted)
        count crosses ``q``, so its error against the materialized
        order-statistic percentile is bounded by one bin width.

        Raises :class:`~repro.errors.FormulationError` when the accumulator
        was built without a histogram.
        """
        if not self.histogram_bins:
            raise FormulationError(
                "this EnsembleStatistics carries no histogram; construct it "
                "with histogram_bins > 0 to answer percentile queries")
        q = float(q)
        if not 0.0 <= q <= 100.0:
            raise FormulationError(f"percentile must be in [0, 100], got {q}")
        points = len(self.frequencies)
        width = ((self.histogram_high_db - self.histogram_low_db)
                 / self.histogram_bins)
        result = np.full(points, np.nan)
        for point in range(points):
            counts = self.histogram[point]
            cumulative = np.cumsum(counts)
            total = cumulative[-1]
            if total <= 0.0:
                continue
            target = q / 100.0 * total
            bin_index = int(np.searchsorted(cumulative, target, side="left"))
            bin_index = min(bin_index, self.histogram_bins - 1)
            below = cumulative[bin_index - 1] if bin_index else 0.0
            inside = counts[bin_index]
            fraction = ((target - below) / inside) if inside > 0.0 else 0.0
            fraction = min(max(fraction, 0.0), 1.0)
            result[point] = (self.histogram_low_db
                             + (bin_index + fraction) * width)
        return result

    @property
    def histogram_bin_width_db(self) -> float:
        """Width of one histogram bin in dB (0.0 when disabled)."""
        if not self.histogram_bins:
            return 0.0
        return ((self.histogram_high_db - self.histogram_low_db)
                / self.histogram_bins)

    def weight_diagnostics(self) -> WeightDiagnostics:
        """ESS / degeneracy diagnostics of the weights folded so far."""
        return _diagnose(self.count, self.weight_sum, self.weight_sumsq,
                         self.max_weight)


@dataclasses.dataclass
class StreamingYield:
    """Weighted streaming pass / fail accounting against yield specs.

    One :class:`~repro.analysis.montecarlo.YieldSpec` set, folded shard by
    shard exactly like :class:`EnsembleStatistics` — per-shard accumulators
    merge in fixed shard order, so parallel and sequential streaming runs
    agree bit for bit.

    Two failure-probability estimators are exposed:

    * :attr:`failure_probability` — the **unnormalized** importance-sampling
      estimator ``(1/N)·Σ wᵢ·1{fail}`` (unbiased when the weights are true
      likelihood ratios; exactly the plain-MC failure fraction when
      unweighted), with :attr:`failure_standard_error` from the sample
      variance of ``w·1{fail}``;
    * :attr:`failure_probability_normalized` — the self-normalized
      ``Σ wᵢ·1{fail} / Σ wᵢ`` variant (biased O(1/N), lower variance when
      the proposal is imperfectly normalized).

    :meth:`failure_diagnostics` runs the ESS check over the *failure-region*
    weights — the population the tail estimate actually rests on.  The
    overall-weight ESS would flag every well-targeted rare-event proposal as
    degenerate (weights far from the shifted region are tiny by design);
    the failure-region ESS is the one that predicts estimator variance.
    """

    spec_names: List[str]
    count: int = 0
    quarantined: int = 0
    passed: int = 0
    weight_sum: float = 0.0
    weight_sumsq: float = 0.0
    max_weight: float = 0.0
    pass_weight: float = 0.0
    fail_weight: float = 0.0
    fail_weight_sumsq: float = 0.0
    max_fail_weight: float = 0.0
    per_spec_count: Dict[str, int] = dataclasses.field(default_factory=dict)
    per_spec_weight: Dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self):
        self.spec_names = list(self.spec_names)
        if len(set(self.spec_names)) != len(self.spec_names):
            raise FormulationError(
                f"yield specs must have distinct names, got {self.spec_names}")
        for name in self.spec_names:
            self.per_spec_count.setdefault(name, 0)
            self.per_spec_weight.setdefault(name, 0.0)

    # ------------------------------------------------------------------ #
    # folding
    # ------------------------------------------------------------------ #

    def update(self, frequencies, responses, specs,
               surviving: Optional[np.ndarray] = None,
               weights: Optional[np.ndarray] = None) -> None:
        """Fold one shard's ``(K, F)`` complex response rows in.

        ``specs`` must match ``spec_names`` (same order); ``surviving``
        masks quarantined rows (counted, never evaluated), ``weights``
        carries the rows' likelihood ratios (1.0 each when omitted).
        """
        from ..analysis.bode import bode_from_response

        responses = np.atleast_2d(np.asarray(responses, dtype=complex))
        if [spec.name for spec in specs] != self.spec_names:
            raise FormulationError(
                f"spec set {[spec.name for spec in specs]} does not match "
                f"this accumulator's {self.spec_names}")
        rows = responses.shape[0]
        if surviving is None:
            surviving = np.ones(rows, dtype=bool)
        # Fold the shard into local subtotals first, then add those to the
        # running state in one step each — the same regrouping merge() uses.
        # A continuous per-row fold here would make a sequential run's sums
        # bit-different from the merged per-shard accumulators of a parallel
        # run, breaking the bit-for-bit contract in the class docstring.
        shard = StreamingYield(self.spec_names)
        for row in range(rows):
            if not surviving[row]:
                shard.quarantined += 1
                continue
            weight = 1.0 if weights is None else float(weights[row])
            shard.count += 1
            shard.weight_sum += weight
            shard.weight_sumsq += weight * weight
            shard.max_weight = max(shard.max_weight, weight)
            bode = bode_from_response(frequencies, responses[row])
            row_passes = True
            for spec in specs:
                if spec.passes(bode):
                    shard.per_spec_count[spec.name] += 1
                    shard.per_spec_weight[spec.name] += weight
                else:
                    row_passes = False
            if row_passes:
                shard.passed += 1
                shard.pass_weight += weight
            else:
                shard.fail_weight += weight
                shard.fail_weight_sumsq += weight * weight
                shard.max_fail_weight = max(shard.max_fail_weight, weight)
        self.merge(shard)

    def merge(self, other: "StreamingYield") -> None:
        """Fold another accumulator (a later run of shards) into this one."""
        if other.spec_names != self.spec_names:
            raise FormulationError(
                f"cannot merge StreamingYield accumulators over different "
                f"spec sets: {self.spec_names} vs {other.spec_names}")
        self.count += other.count
        self.quarantined += other.quarantined
        self.passed += other.passed
        self.weight_sum += other.weight_sum
        self.weight_sumsq += other.weight_sumsq
        self.max_weight = max(self.max_weight, other.max_weight)
        self.pass_weight += other.pass_weight
        self.fail_weight += other.fail_weight
        self.fail_weight_sumsq += other.fail_weight_sumsq
        self.max_fail_weight = max(self.max_fail_weight, other.max_fail_weight)
        for name in self.spec_names:
            self.per_spec_count[name] += other.per_spec_count[name]
            self.per_spec_weight[name] += other.per_spec_weight[name]

    # ------------------------------------------------------------------ #
    # estimates
    # ------------------------------------------------------------------ #

    @property
    def failure_probability(self) -> float:
        """Unnormalized (unbiased) failure-probability estimate."""
        if self.count == 0:
            return float("nan")
        return self.fail_weight / self.count

    @property
    def failure_probability_normalized(self) -> float:
        """Self-normalized failure-probability estimate."""
        if self.weight_sum <= 0.0:
            return float("nan")
        return self.fail_weight / self.weight_sum

    @property
    def yield_fraction(self) -> float:
        """Self-normalized yield estimate (1 − normalized failure)."""
        if self.weight_sum <= 0.0:
            return float("nan")
        return self.pass_weight / self.weight_sum

    @property
    def failure_standard_error(self) -> float:
        """Standard error of :attr:`failure_probability`."""
        if self.count == 0:
            return float("nan")
        mean = self.fail_weight / self.count
        variance = max(self.fail_weight_sumsq / self.count - mean * mean, 0.0)
        return float(np.sqrt(variance / self.count))

    def weight_diagnostics(self) -> WeightDiagnostics:
        """ESS / degeneracy over *all* surviving weights (yield estimate)."""
        return _diagnose(self.count, self.weight_sum, self.weight_sumsq,
                         self.max_weight)

    def failure_diagnostics(self) -> WeightDiagnostics:
        """ESS / degeneracy over the failure-region weights (tail estimate)."""
        return _diagnose(self.count, self.fail_weight,
                         self.fail_weight_sumsq, self.max_fail_weight)
