"""Vectorized Monte Carlo / tolerance analysis over the sweep core.

The paper's SDG/SBG approximations keep the symbolically *dominant* terms of
a network function; whether they stay dominant when element values move is a
tolerance question.  This package opens that parameter-space axis as a
first-class workload on top of the :mod:`repro.engine` sweep machinery:

* :mod:`repro.montecarlo.space` — :class:`ParameterSpace`: which element
  values vary (via :class:`~repro.netlist.elements.Tolerance` metadata
  attached with ``element.with_tolerance(...)``) and the seeded gaussian /
  uniform / corner samplers that turn tolerances into value matrices,
* :mod:`repro.montecarlo.program` — :class:`ValueProgram`: vectorized
  re-stamping that reproduces the MNA builder's assembly arithmetic
  bit-for-bit across a whole ensemble,
* :mod:`repro.montecarlo.engine` — :func:`ensemble_sweep`: M perturbed
  circuits × F frequencies in chunked stacked solves
  (:func:`~repro.linalg.dense.batched_solve` LAPACK throughput arm, or the
  ``solver="lu"`` arm that is bit-identical to the
  :func:`rebuild_sweep` rebuild-per-sample reference), with the sparse
  pivot-refactorization fallback above the dense cutoff,
* :mod:`repro.montecarlo.compiled` — :func:`compiled_ensemble_sweep`: the
  same ensemble served by a
  :class:`~repro.symbolic.compile.CompiledTransferModel` with **no matrix
  solves at all** — parameter-space axes map straight onto free-symbol
  slots of the compiled coefficient-tensor program,
* :mod:`repro.montecarlo.qmc` — Sobol' / Latin-hypercube low-discrepancy
  point sets behind ``ParameterSpace.sample_values(method=...)``, same
  seeded-determinism contract as the pseudo-random samplers,
* :mod:`repro.montecarlo.parallel` — :func:`parallel_ensemble_sweep`: the
  supervised multiprocess driver (shared-memory shards, crash / hang
  detection, bounded re-dispatch, deterministic cross-process quarantine),
  bit-identical to a single-process resilient run for any worker count,
* :mod:`repro.montecarlo.statistics` — the mergeable streaming estimators
  behind the drivers' ``store_responses=False`` mode:
  :class:`EnsembleStatistics` (exact extremes / moments plus fixed-bin
  magnitude histograms, O(F) memory at any sample count) and
  :class:`StreamingYield` (weighted pass / fail accounting with
  effective-sample-size diagnostics for importance-sampled tails).

Statistical post-processing — envelopes, variance attribution, corners and
yield — lives one layer up in :mod:`repro.analysis.montecarlo`.
"""

from ..netlist.elements import Tolerance
from .checkpoint import (CheckpointedRun, checkpoint_info,
                         checkpointed_ensemble_sweep)
from .compiled import (compiled_corner_analysis, compiled_ensemble_sweep,
                       compiled_monte_carlo)
from .engine import EnsembleResult, ensemble_sweep, rebuild_sweep
from .parallel import (ParallelRunInfo, SupervisorConfig,
                       parallel_ensemble_sweep)
from .program import ValueProgram
from .qmc import latin_hypercube_uniforms, sobol_uniforms
from .space import ParameterSpace
from .statistics import (DEFAULT_HISTOGRAM_BINS, DEFAULT_HISTOGRAM_RANGE,
                         EnsembleStatistics, StreamingYield,
                         WeightDiagnostics)

__all__ = [
    "Tolerance",
    "ParameterSpace",
    "ValueProgram",
    "EnsembleResult",
    "ensemble_sweep",
    "rebuild_sweep",
    "compiled_ensemble_sweep",
    "compiled_monte_carlo",
    "compiled_corner_analysis",
    "EnsembleStatistics",
    "StreamingYield",
    "WeightDiagnostics",
    "DEFAULT_HISTOGRAM_BINS",
    "DEFAULT_HISTOGRAM_RANGE",
    "CheckpointedRun",
    "checkpointed_ensemble_sweep",
    "checkpoint_info",
    "sobol_uniforms",
    "latin_hypercube_uniforms",
    "parallel_ensemble_sweep",
    "SupervisorConfig",
    "ParallelRunInfo",
]
