"""Deterministic checkpoint / resume for long-running tolerance ensembles.

A 10⁵-sample Monte Carlo run is hours of solves; a crash at sample 99 000
should not restart at sample 0.  :func:`checkpointed_ensemble_sweep` cuts the
ensemble into fixed-size **shards** and serializes the run state after every
shard — atomically, via a temporary file and :func:`os.replace`, so a kill at
any instant leaves either the previous checkpoint or the new one, never a
torn file.

Determinism is the design constraint, not an afterthought:

* every sample's element values are drawn **up front** from the seeded
  generator (:meth:`~repro.montecarlo.space.ParameterSpace.sample_values`),
  so shard ``k`` sees exactly the values it would have seen in an
  uninterrupted run;
* both batched dense kernels are batch-size invariant and the sparse /
  resilient paths solve sample-by-sample, so a shard's response rows are
  bit-for-bit the rows of the full run;
* the streaming :class:`EnsembleStatistics` accumulators are updated once
  per shard in fixed shard order, so a resumed run replays the identical
  sequence of floating-point additions.

Together: **kill + resume is bit-identical** to never having been killed —
same responses, same statistics, same quarantine report.

Checkpoints carry the circuit fingerprint, the parameter-space key, the
sampler seed and the solver configuration; resuming against a mismatched
setup raises :class:`~repro.errors.CheckpointError` instead of silently
mixing two different runs.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import zipfile
import zlib
from typing import Optional

import numpy as np

from ..engine.resilience import (SweepReport, merge_shard_report,
                                 report_from_json, report_to_json)
from ..errors import CheckpointError
from .engine import EnsembleResult, _normalize_output, ensemble_sweep
from .space import ParameterSpace
# EnsembleStatistics grew histogram / weight extensions and moved to
# repro.montecarlo.statistics with the other streaming estimators; this
# re-export keeps every historical import path working.
from .statistics import EnsembleStatistics

__all__ = ["EnsembleStatistics", "CheckpointedRun",
           "checkpointed_ensemble_sweep", "checkpoint_info"]

#: On-disk format version; bumped on any incompatible layout change.
#: Streaming runs (``store_responses=False``) add *optional* fields —
#: weight totals, histogram counts — which absent readers simply ignore,
#: so the version stays 1.
_FORMAT_VERSION = 1


@dataclasses.dataclass
class CheckpointedRun:
    """Outcome of one :func:`checkpointed_ensemble_sweep` call.

    ``finished`` is False when ``max_shards`` stopped the run early (the
    checkpoint then holds everything needed to resume); ``ensemble`` is the
    full :class:`~repro.montecarlo.engine.EnsembleResult` once finished and
    ``None`` before.  ``resumed_from`` counts the samples that were already
    in the checkpoint when this call started.
    """

    finished: bool
    completed: int
    total: int
    resumed_from: int
    statistics: EnsembleStatistics
    report: Optional[SweepReport]
    path: str
    ensemble: Optional[EnsembleResult] = None


def _space_key_digest(space) -> str:
    """Content hash of the parameter space (names, nominals, tolerances)."""
    digest = hashlib.sha256()
    digest.update(repr(space.key()).encode("utf-8"))
    return digest.hexdigest()


# _report_to_json / _report_from_json / _merge_shard_report moved to
# repro.engine.resilience (report_to_json & friends) so the multiprocess
# driver can share them; these aliases keep intra-package callers working.
_report_to_json = report_to_json
_report_from_json = report_from_json
_merge_shard_report = merge_shard_report


def _save_checkpoint(path, *, fingerprint, space_digest, seed, samples,
                     shard_size, solver, solver_used, method, on_failure,
                     frequencies, completed, responses, statistics, report,
                     store_responses=True):
    """Atomically write the run state: tmp file + :func:`os.replace`.

    Streaming runs persist accumulators only: ``responses`` is a zero-row
    array and the extra weight / histogram fields of the extended
    :class:`~repro.montecarlo.statistics.EnsembleStatistics` ride along so
    a resumed run restores the identical accumulator state.
    """
    temporary = os.fspath(path) + ".tmp"
    histogram = (statistics.histogram if statistics.histogram is not None
                 else np.zeros((0, 0)))
    with open(temporary, "wb") as handle:
        np.savez(
            handle,
            version=np.array(_FORMAT_VERSION),
            fingerprint=np.array(fingerprint),
            space_digest=np.array(space_digest),
            seed=np.array(int(seed)),
            samples=np.array(int(samples)),
            shard_size=np.array(int(shard_size)),
            solver=np.array(solver),
            solver_used=np.array(solver_used),
            method=np.array(method),
            on_failure=np.array(on_failure),
            store_responses=np.array(bool(store_responses)),
            frequencies=np.asarray(frequencies, dtype=float),
            completed=np.array(int(completed)),
            responses=(responses[:completed] if store_responses
                       else np.zeros((0, len(frequencies)), dtype=complex)),
            stats_count=np.array(int(statistics.count)),
            stats_sum_db=statistics.sum_db,
            stats_sumsq_db=statistics.sumsq_db,
            stats_min_db=statistics.min_db,
            stats_max_db=statistics.max_db,
            stats_weight_sum=np.array(float(statistics.weight_sum)),
            stats_weight_sumsq=np.array(float(statistics.weight_sumsq)),
            stats_max_weight=np.array(float(statistics.max_weight)),
            stats_histogram_bins=np.array(int(statistics.histogram_bins)),
            stats_histogram_low_db=np.array(
                float(statistics.histogram_low_db)),
            stats_histogram_high_db=np.array(
                float(statistics.histogram_high_db)),
            stats_histogram=histogram,
            report_json=np.array(_report_to_json(report)),
        )
    os.replace(temporary, path)


def _load_checkpoint(path):
    """Read a checkpoint file into a plain dict (strings unwrapped).

    Any way the bytes on disk can be wrong — not a zip at all (wrong magic),
    truncated mid-write (a torn copy from a foreign machine; ``os.replace``
    only protects writes on the *same* filesystem), a member that fails CRC
    or decompression — must surface as :class:`CheckpointError`, never as a
    silent restart-from-zero or a raw ``zipfile``/``zlib`` traceback.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            state = {key: archive[key] for key in archive.files}
    except (OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, zlib.error) as error:
        raise CheckpointError(
            f"cannot read ensemble checkpoint {path!r}: {error}") from error
    try:
        unpacked = {
            "version": int(state["version"]),
            "fingerprint": str(state["fingerprint"]),
            "space_digest": str(state["space_digest"]),
            "seed": int(state["seed"]),
            "samples": int(state["samples"]),
            "shard_size": int(state["shard_size"]),
            "solver": str(state["solver"]),
            "solver_used": str(state["solver_used"]),
            "method": str(state["method"]),
            "on_failure": str(state["on_failure"]),
            "frequencies": np.asarray(state["frequencies"], dtype=float),
            "completed": int(state["completed"]),
            "responses": np.asarray(state["responses"], dtype=complex),
            "stats_count": int(state["stats_count"]),
            "stats_sum_db": np.asarray(state["stats_sum_db"], dtype=float),
            "stats_sumsq_db": np.asarray(state["stats_sumsq_db"],
                                         dtype=float),
            "stats_min_db": np.asarray(state["stats_min_db"], dtype=float),
            "stats_max_db": np.asarray(state["stats_max_db"], dtype=float),
            "report_json": str(state["report_json"]),
        }
        # Streaming-era fields are optional: a PR 7/9 checkpoint predating
        # them loads as a stored-responses run with no histogram and the
        # count-derived weight totals.
        unpacked["store_responses"] = bool(
            state["store_responses"]) if "store_responses" in state else True
        unpacked["stats_weight_sum"] = (
            float(state["stats_weight_sum"]) if "stats_weight_sum" in state
            else float(unpacked["stats_count"]))
        unpacked["stats_weight_sumsq"] = (
            float(state["stats_weight_sumsq"])
            if "stats_weight_sumsq" in state
            else float(unpacked["stats_count"]))
        unpacked["stats_max_weight"] = (
            float(state["stats_max_weight"]) if "stats_max_weight" in state
            else (1.0 if unpacked["stats_count"] else 0.0))
        unpacked["stats_histogram_bins"] = (
            int(state["stats_histogram_bins"])
            if "stats_histogram_bins" in state else 0)
        unpacked["stats_histogram_low_db"] = (
            float(state["stats_histogram_low_db"])
            if "stats_histogram_low_db" in state else 0.0)
        unpacked["stats_histogram_high_db"] = (
            float(state["stats_histogram_high_db"])
            if "stats_histogram_high_db" in state else 1.0)
        unpacked["stats_histogram"] = (
            np.asarray(state["stats_histogram"], dtype=float)
            if "stats_histogram" in state else np.zeros((0, 0)))
    except KeyError as error:
        raise CheckpointError(
            f"ensemble checkpoint {path!r} is missing field {error}; "
            "corrupt or from an incompatible version") from error
    points = len(unpacked["frequencies"])
    completed = unpacked["completed"]
    expected_rows = completed if unpacked["store_responses"] else 0
    if unpacked["responses"].shape != (expected_rows, points):
        raise CheckpointError(
            f"ensemble checkpoint {path!r} is internally inconsistent: "
            f"responses shape {unpacked['responses'].shape} does not match "
            f"{expected_rows} stored samples × {points} frequency points")
    bins = unpacked["stats_histogram_bins"]
    if bins and unpacked["stats_histogram"].shape != (points, bins):
        raise CheckpointError(
            f"ensemble checkpoint {path!r} is internally inconsistent: "
            f"histogram shape {unpacked['stats_histogram'].shape} does not "
            f"match {points} frequency points × {bins} bins")
    for field in ("stats_sum_db", "stats_sumsq_db",
                  "stats_min_db", "stats_max_db"):
        if unpacked[field].shape != (points,):
            raise CheckpointError(
                f"ensemble checkpoint {path!r} is internally inconsistent: "
                f"{field} has shape {unpacked[field].shape}, expected "
                f"({points},)")
    return unpacked


def checkpoint_info(path) -> dict:
    """Inspect a checkpoint without resuming it.

    Returns a dict with the run configuration and progress: ``completed`` /
    ``samples``, seed, solver, and the quarantine summary so far.
    """
    state = _load_checkpoint(path)
    report = _report_from_json(state["report_json"])
    return {
        "version": state["version"],
        "fingerprint": state["fingerprint"],
        "seed": state["seed"],
        "samples": state["samples"],
        "completed": state["completed"],
        "shard_size": state["shard_size"],
        "solver": state["solver"],
        "method": state["method"],
        "on_failure": state["on_failure"],
        "store_responses": state["store_responses"],
        "quarantined": report.quarantined if report is not None else [],
    }


def checkpointed_ensemble_sweep(circuit, output, frequencies, space=None, *,
                                path, samples=128, seed=0, shard_size=32,
                                max_shards=None, tolerances=None,
                                solver="lapack", method="auto",
                                on_failure="quarantine", policy=None,
                                workers=None, supervisor=None,
                                store_responses=True, histogram_bins=None,
                                histogram_range=None) -> CheckpointedRun:
    """Run (or resume) a tolerance ensemble with periodic checkpointing.

    The ensemble is evaluated in shards of ``shard_size`` samples through the
    standard :func:`~repro.montecarlo.engine.ensemble_sweep`; after each
    shard the responses so far, the streaming :class:`EnsembleStatistics`
    and the quarantine report are written atomically to ``path``.  If
    ``path`` already holds a checkpoint of the *same* run (circuit
    fingerprint, parameter-space content, seed, sample count, shard size and
    solver configuration all match) the run resumes after its last completed
    shard; a mismatched checkpoint raises
    :class:`~repro.errors.CheckpointError`.

    A resumed run is **bit-identical** to an uninterrupted one: values are
    drawn up front from the seeded sampler, shard boundaries are fixed, and
    each shard's solves and statistics updates are independent of how many
    processes it took to get there.

    Parameters
    ----------
    path:
        Checkpoint file (``.npz``).  The file is left in place on
        completion — delete it to re-run from scratch.
    shard_size:
        Samples per shard (and per checkpoint write).
    max_shards:
        Stop after this many *new* shards (``finished=False`` in the
        result); ``None`` runs to completion.  This is the hook fault /
        kill tests use to stop a run at a deterministic point.
    on_failure, policy:
        Resilience controls, as for
        :func:`~repro.montecarlo.engine.ensemble_sweep`; checkpointed runs
        default to ``"quarantine"`` so one bad sample cannot waste hours of
        completed work.
    workers, supervisor:
        ``workers`` other than ``None`` / ``1`` runs the remaining shards
        through the supervised multiprocess driver
        (:func:`~repro.montecarlo.parallel.run_shards`, configured by the
        optional :class:`~repro.montecarlo.parallel.SupervisorConfig`).
        Shards complete out of order, but the checkpoint only ever absorbs
        the contiguous prefix — in fixed shard order — so the file on disk
        is at all times bit-identical to one a sequential run would have
        written, and a killed *supervisor* resumes bit-identically with
        any worker count.
    store_responses, histogram_bins, histogram_range:
        ``store_responses=False`` switches to the streaming estimation
        mode: the checkpoint persists only the
        :class:`~repro.montecarlo.statistics.EnsembleStatistics`
        accumulator (O(F) state, histogram included) instead of the
        ``(M, F)`` responses, the finished result carries
        ``ensemble.responses=None``, and memory stays O(F) regardless of
        ``samples``.  ``histogram_bins`` / ``histogram_range`` configure
        the streaming percentile histogram exactly as for
        :func:`~repro.montecarlo.engine.ensemble_sweep`.  A checkpoint
        written in one mode cannot be resumed in the other.

    Returns
    -------
    CheckpointedRun
    """
    from ..engine.session import AnalysisSession

    if space is None:
        space = ParameterSpace(circuit, tolerances)
    frequencies = np.asarray(frequencies, dtype=float)
    samples = int(samples)
    shard_size = int(shard_size)
    if shard_size <= 0:
        raise CheckpointError(f"shard_size must be positive, got {shard_size}")
    fingerprint = AnalysisSession.fingerprint(circuit)
    space_digest = _space_key_digest(space)
    values = space.sample_values(samples, seed)

    store_responses = bool(store_responses)
    from .statistics import DEFAULT_HISTOGRAM_BINS, DEFAULT_HISTOGRAM_RANGE
    if histogram_bins is None:
        bins = 0 if store_responses else DEFAULT_HISTOGRAM_BINS
    else:
        bins = int(histogram_bins)
    low, high = histogram_range or DEFAULT_HISTOGRAM_RANGE

    responses = np.zeros((samples if store_responses else 0,
                          len(frequencies)), dtype=complex)
    statistics = EnsembleStatistics(frequencies=frequencies,
                                    histogram_bins=bins,
                                    histogram_low_db=float(low),
                                    histogram_high_db=float(high))
    resilient = on_failure == "quarantine" or policy is not None
    report = (SweepReport(label="ensemble member", kind="sample", total=0)
              if resilient else None)
    completed = 0
    solver_used = solver

    if os.path.exists(path):
        state = _load_checkpoint(path)
        if state["version"] != _FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path!r} has format version {state['version']}, "
                f"expected {_FORMAT_VERSION}")
        expected = {"fingerprint": fingerprint, "space_digest": space_digest,
                    "seed": int(seed), "samples": samples,
                    "shard_size": shard_size, "solver": solver,
                    "method": method, "on_failure": on_failure,
                    "store_responses": store_responses,
                    "stats_histogram_bins": bins}
        if bins:
            expected["stats_histogram_low_db"] = float(low)
            expected["stats_histogram_high_db"] = float(high)
        for field, value in expected.items():
            if state[field] != value:
                raise CheckpointError(
                    f"checkpoint {path!r} belongs to a different run: "
                    f"{field} is {state[field]!r}, this run has {value!r}")
        if not np.array_equal(state["frequencies"], frequencies):
            raise CheckpointError(
                f"checkpoint {path!r} belongs to a different run: "
                "frequency grids differ")
        completed = state["completed"]
        if store_responses:
            responses[:completed] = state["responses"]
        statistics = EnsembleStatistics(
            frequencies=frequencies, count=state["stats_count"],
            sum_db=state["stats_sum_db"], sumsq_db=state["stats_sumsq_db"],
            min_db=state["stats_min_db"], max_db=state["stats_max_db"],
            weight_sum=state["stats_weight_sum"],
            weight_sumsq=state["stats_weight_sumsq"],
            max_weight=state["stats_max_weight"],
            histogram_bins=bins, histogram_low_db=float(low),
            histogram_high_db=float(high),
            histogram=(state["stats_histogram"] if bins else None))
        report = _report_from_json(state["report_json"])
        solver_used = state["solver_used"]
    resumed_from = completed

    def fold_and_save(shard_view, start, stop):
        """Absorb one completed shard (in order) and persist the state."""
        nonlocal completed, solver_used
        if store_responses:
            responses[start:stop] = shard_view.responses
            surviving = shard_view.surviving_mask()
            statistics.update(shard_view.magnitudes_db()[surviving])
        else:
            # The shard ran in streaming mode itself; merging its
            # zero-initialized accumulator replays the identical addition
            # sequence a stored-mode update would have (0.0 + x == x).
            statistics.merge(shard_view.statistics)
        if report is not None and shard_view.report is not None:
            _merge_shard_report(report, shard_view.report, start)
        if report is not None:
            report.total = stop
        completed = stop
        solver_used = shard_view.solver
        _save_checkpoint(path, fingerprint=fingerprint,
                         space_digest=space_digest, seed=seed,
                         samples=samples, shard_size=shard_size,
                         solver=solver, solver_used=solver_used,
                         method=method, on_failure=on_failure,
                         frequencies=frequencies, completed=completed,
                         responses=responses, statistics=statistics,
                         report=report, store_responses=store_responses)

    shards_run = 0
    if workers is None or workers == 1:
        while completed < samples:
            if max_shards is not None and shards_run >= max_shards:
                break
            start = completed
            stop = min(start + shard_size, samples)
            streaming_kwargs = ({} if store_responses else
                                {"store_responses": False,
                                 "shard_size": stop - start,
                                 "histogram_bins": bins,
                                 "histogram_range": (low, high)})
            shard = ensemble_sweep(circuit, output, frequencies, space,
                                   values=values[start:stop], solver=solver,
                                   method=method, on_failure=on_failure,
                                   policy=policy, **streaming_kwargs)
            fold_and_save(shard, start, stop)
            shards_run += 1
    else:
        # Supervised multiprocess execution of the remaining shards.  The
        # shard plan keeps global sample indices, shards may complete out
        # of order, and the on_shard_complete hook only ever hands us the
        # contiguous prefix — so each fold_and_save below replays exactly
        # the sequence of the sequential branch above.
        from .parallel import run_shards, shard_plan

        plan = shard_plan(samples, shard_size, first_sample=completed)
        if max_shards is not None:
            plan = plan[:max_shards]
        folded = 0
        shard_stats = {}

        def absorb_prefix(prefix, shared_responses, shard_reports,
                          shard_solver):
            nonlocal folded, shards_run
            for index in range(folded, prefix):
                __, start, stop = plan[index]
                shard_index = plan[index][0]
                shard_view = EnsembleResult(
                    frequencies=frequencies, values=values[start:stop],
                    responses=(np.array(shared_responses[start:stop])
                               if store_responses else None),
                    space=space, output=_normalize_output(output),
                    solver=shard_solver,
                    report=shard_reports.get(shard_index),
                    statistics=shard_stats.get(shard_index))
                fold_and_save(shard_view, start, stop)
                shards_run += 1
            folded = prefix

        if plan:
            run_shards(circuit, output, frequencies, space, values, plan,
                       solver=solver, method=method, on_failure=on_failure,
                       policy=policy, workers=workers, config=supervisor,
                       on_shard_complete=absorb_prefix,
                       store_responses=store_responses,
                       histogram_bins=bins, histogram_range=(low, high),
                       stats_out=shard_stats)

    finished = completed == samples
    result = CheckpointedRun(finished=finished, completed=completed,
                             total=samples, resumed_from=resumed_from,
                             statistics=statistics, report=report, path=path)
    if finished:
        result.ensemble = EnsembleResult(
            frequencies=frequencies, values=values,
            responses=responses if store_responses else None,
            space=space, output=_normalize_output(output), solver=solver_used,
            report=report,
            statistics=None if store_responses else statistics)
    return result
