"""The vectorized parameter-space sweep: M perturbed circuits × F frequencies.

:func:`ensemble_sweep` evaluates a whole tolerance ensemble in stacked
batched solves instead of M independent circuit rebuilds:

* the per-sample ``(G_m, C_m)`` parts come from the circuit's
  :class:`~repro.montecarlo.program.ValueProgram` — a vectorized re-stamping
  that reproduces the MNA builder's arithmetic bit-for-bit,
* the ``(M·F, n, n)`` stack is assembled chunk by chunk with exactly the
  broadcast expression of
  :meth:`~repro.engine.formulation.FormulationBase.assemble_batch`,
* factorization goes through :func:`~repro.linalg.dense.batched_solve`
  (LAPACK, the throughput default) or
  :func:`~repro.linalg.dense.batched_dense_lu` (``solver="lu"``, the
  bit-parity arm whose outputs equal the rebuild-per-sample path *exactly* —
  both solvers are batch-size invariant, so chunking cannot change results),
* above the dense cutoff the sweep falls back to the shared
  :meth:`~repro.engine.sweep.SweepEngine.solve_param_sweep` sparse path
  (pivot-pattern refactorization, accurate to rounding).

:func:`rebuild_sweep` is the M-independent-rebuilds reference the engine is
benchmarked and parity-checked against: one circuit copy + MNA build + AC
sweep per sample, through the standard :class:`~repro.analysis.ac.ACAnalysis`
machinery (``solver="lu"``) or the same LAPACK solver one sample at a time
(``solver="lapack"``).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import math
import os
from typing import Optional

import numpy as np

from ..engine.resilience import (SolvePolicy, SweepReport,
                                 merge_shard_report,
                                 resilient_sparse_solve,
                                 solve_stack_resilient)
from ..errors import (FormulationError, SingularMatrixError,
                      SolveFailureError)
from ..linalg.config import use_dense
from ..linalg.dense import batched_dense_lu, batched_solve
from ..mna.builder import build_mna_system
from ..netlist.elements import GROUND
from ..nodal.reduce import TransferSpec
from .program import ValueProgram
from .space import ParameterSpace

__all__ = ["EnsembleResult", "ensemble_sweep", "rebuild_sweep"]

_SOLVERS = ("lapack", "lu")

#: Complex entries per assembled ensemble chunk (~12 MB).  Ensemble chunks
#: are deliberately much smaller than the frequency-sweep chunks of
#: :func:`~repro.linalg.dense.sweep_chunk_size`: the assemble → factor →
#: solve pipeline revisits the chunk several times, and keeping it
#: cache-resident is worth ~1.5x wall clock at µA741 size.  Both solvers are
#: batch-size invariant, so the chunk size cannot change any result bit.
_ENSEMBLE_CHUNK_ELEMENTS = 750_000


def _ensemble_chunk_matrices(dimension) -> int:
    """Matrices per assemble/factor/solve chunk of the ensemble engine."""
    dimension = max(1, int(dimension))
    return max(1, _ENSEMBLE_CHUNK_ELEMENTS // (dimension * dimension))


def _normalize_output(output):
    """Resolve a TransferSpec / pair / node name into an output description."""
    if isinstance(output, TransferSpec):
        positive, negative = output.output_nodes()
        return positive if negative is None else (positive, negative)
    return output


def _output_terms(system, output):
    """``(solution index, sign)`` pairs whose weighted sum is the output."""
    output = _normalize_output(output)
    if isinstance(output, (tuple, list)):
        positive, negative = output
        return [(system.node_index(node), sign)
                for node, sign in ((positive, 1.0), (negative, -1.0))
                if node != GROUND]
    if output == GROUND:
        return []
    return [(system.node_index(output), 1.0)]


def _project(terms, solutions):
    """Output voltage over a ``(K, n)`` solution stack.

    The same slice-then-subtract arithmetic as
    :meth:`~repro.mna.builder.MnaSystem.node_voltages`, so projections match
    the rebuild path bit-for-bit.
    """
    result = np.zeros(solutions.shape[0], dtype=complex)
    for index, sign in terms:
        if sign == 1.0:
            result = result + solutions[:, index]
        else:
            result = result - solutions[:, index]
    return result


@dataclasses.dataclass
class EnsembleResult:
    """Responses of a whole tolerance ensemble over a frequency grid.

    Attributes
    ----------
    frequencies:
        ``(F,)`` sweep grid in hertz.
    values:
        ``(M, E)`` element values, one row per sample, columns in
        ``space.names`` order.
    responses:
        ``(M, F)`` complex output voltages (the circuit's own excitation) —
        or ``None`` for a streaming (``store_responses=False``) run, whose
        estimates live in ``statistics`` / ``yields`` instead.
    output:
        The normalized output description (node name or ``(pos, neg)``).
    solver:
        ``"lapack"``, ``"lu"`` or ``"sparse"`` — the backend that produced
        the responses.
    report:
        The :class:`~repro.engine.resilience.SweepReport` of a resilient run
        (``None`` on the legacy path).  Quarantined samples' response rows
        are NaN; use :meth:`surviving_mask` to restrict statistics to the
        samples that solved.
    parallel:
        The :class:`~repro.montecarlo.parallel.ParallelRunInfo` of a
        supervised multiprocess run (``None`` otherwise).
    statistics:
        The streaming
        :class:`~repro.montecarlo.statistics.EnsembleStatistics` accumulator
        of a ``store_responses=False`` run (``None`` otherwise).
    yields:
        The :class:`~repro.montecarlo.statistics.StreamingYield` accumulator
        when a streaming run was given ``yield_specs`` (``None`` otherwise).
    weights:
        The ``(M,)`` likelihood-ratio weights of an importance-sampled run
        (``None`` for plain Monte Carlo).
    """

    frequencies: np.ndarray
    values: np.ndarray
    responses: Optional[np.ndarray]
    space: ParameterSpace
    output: object
    solver: str
    report: object = None
    parallel: object = None
    statistics: object = None
    yields: object = None
    weights: Optional[np.ndarray] = None

    @property
    def num_samples(self):
        """Number of ensemble members."""
        return self.values.shape[0]

    def _require_responses(self, what):
        if self.responses is None:
            raise FormulationError(
                f"cannot compute {what}: this ensemble ran with "
                "store_responses=False and kept only streaming accumulators "
                "(see result.statistics / result.yields)")
        return self.responses

    def surviving_mask(self) -> np.ndarray:
        """``(M,)`` boolean mask of samples that were not quarantined."""
        responses = self._require_responses("the surviving mask")
        mask = np.ones(responses.shape[0], dtype=bool)
        if self.report is not None:
            mask[self.report.quarantined] = False
        # Belt and braces: a NaN row is never a survivor, report or not.
        mask &= ~np.isnan(responses).any(axis=1)
        return mask

    def magnitudes_db(self) -> np.ndarray:
        """``(M, F)`` response magnitudes in dB (zeros floored at tiny)."""
        magnitude = np.abs(self._require_responses("magnitudes"))
        magnitude[magnitude == 0.0] = np.finfo(float).tiny
        return 20.0 * np.log10(magnitude)

    def __repr__(self):
        mode = ("streaming" if self.responses is None
                else f"points={len(self.frequencies)}")
        return (f"EnsembleResult(samples={self.values.shape[0]}, "
                f"{mode}, solver={self.solver!r})")


def _solve_chunk(flat, rhs, solver, describe):
    """Factor + solve one assembled ``(B, n, n)`` chunk."""
    if solver == "lapack":
        try:
            return batched_solve(flat, rhs)
        except SingularMatrixError as error:
            # batched_solve already located the offender; name the ensemble
            # sample and sweep point like the LU arm does.
            index = getattr(error, "batch_index", None)
            if index is not None:
                raise SingularMatrixError(
                    f"{describe(index)} is singular",
                    batch_index=index) from error
            raise SingularMatrixError(
                f"{describe()} is numerically singular") from error
    factorization = batched_dense_lu(flat, overwrite=True)
    if factorization.singular.any():
        index = int(np.argmax(factorization.singular))
        raise SingularMatrixError(f"{describe(index)} is singular",
                                  batch_index=index)
    return factorization.solve(rhs)


def _default_workers() -> int:
    """Worker threads for the dense ensemble (overridable per call)."""
    return max(1, min(4, os.cpu_count() or 1))


def _dense_ensemble(system, program, s, values, terms, solver,
                    workers=None, policy=None, report=None) -> np.ndarray:
    """Chunked dense-path ensemble: assemble → factor → solve → project.

    Chunks are fully independent (both solvers are batch-size invariant and
    every chunk writes a disjoint slice of the response matrix), so they run
    on a small thread pool: the LAPACK gufunc releases the GIL, overlapping
    one chunk's factorization with another's assembly.  Threading cannot
    change a single result bit — it only reorders which chunk computes when.

    With a resilient ``policy`` / ``report``, failing members escalate
    through :func:`~repro.engine.resilience.solve_stack_resilient` and the
    chunks run serially, so the report's records are deterministic.
    """
    num_samples = values.shape[0]
    num_points = len(s)
    dimension = program.dimension
    responses = np.zeros((num_samples, num_points), dtype=complex)
    constant_stack, dynamic_stack = program.dense_parts(values)
    rhs = system.rhs
    chunk = _ensemble_chunk_matrices(dimension)
    resilient = policy is not None

    def solve(flat, describe, indexer):
        if resilient:
            return solve_stack_resilient(flat, rhs, policy, report, indexer,
                                         solver=solver)
        return _solve_chunk(flat=flat, rhs=rhs, solver=solver,
                            describe=describe)

    def run_split(sample, start):
        """One frequency-axis slice of one sample (num_points > chunk)."""
        block = s[start:start + chunk]
        constant = constant_stack[sample][None, :, :]
        dynamic = dynamic_stack[sample][None, :, :]
        # Exactly assemble_batch's expression: constant + s·dynamic.
        stack = np.multiply(block[:, None, None], dynamic)
        np.add(constant, stack, out=stack)
        solutions = solve(
            stack,
            describe=lambda index=None:
                f"ensemble member {sample}" if index is None else
                f"ensemble member {sample} at sweep point {start + index}",
            indexer=lambda member: (
                sample,
                f"ensemble member {sample} at sweep point {start + member}"))
        responses[sample, start:start + len(block)] = _project(terms,
                                                               solutions)

    def run_block(start, samples_per_chunk):
        """One group of whole samples (num_points <= chunk)."""
        block = range(start, min(start + samples_per_chunk, num_samples))
        stack = np.empty((len(block), num_points, dimension, dimension),
                         dtype=complex)
        for position, sample in enumerate(block):
            # Exactly assemble_batch's expression: constant + s·dynamic.
            np.multiply(s[:, None, None], dynamic_stack[sample][None, :, :],
                        out=stack[position])
            np.add(constant_stack[sample][None, :, :], stack[position],
                   out=stack[position])
        flat = stack.reshape(len(block) * num_points, dimension, dimension)
        solutions = solve(
            flat,
            describe=lambda index=None:
                f"ensemble chunk starting at sample {start}" if index is None
                else f"ensemble member {start + index // num_points} at "
                     f"sweep point {index % num_points}",
            indexer=lambda member: (
                start + member // num_points,
                f"ensemble member {start + member // num_points} at "
                f"sweep point {member % num_points}"))
        for position, sample in enumerate(block):
            rows = solutions[position * num_points:(position + 1) * num_points]
            responses[sample] = _project(terms, rows)

    if num_points > chunk:
        # A single sample's sweep exceeds the chunk budget: keep samples
        # whole and split the frequency axis instead.
        jobs = [(run_split, (sample, start))
                for sample in range(num_samples)
                for start in range(0, num_points, chunk)]
    else:
        samples_per_chunk = max(1, chunk // max(1, num_points))
        jobs = [(run_block, (start, samples_per_chunk))
                for start in range(0, num_samples, samples_per_chunk)]

    workers = _default_workers() if workers is None else max(1, int(workers))
    if resilient:
        # Deterministic report ordering: escalations and failures are
        # recorded in ensemble order, not thread-completion order.
        workers = 1
    if workers == 1 or len(jobs) == 1:
        for job, arguments in jobs:
            job(*arguments)
    else:
        with concurrent.futures.ThreadPoolExecutor(workers) as pool:
            futures = [pool.submit(job, *arguments)
                       for job, arguments in jobs]
            # Collect in submission order so the first failing chunk (by
            # ensemble position, not completion time) raises deterministically.
            for future in futures:
                future.result()
    return responses


def _sparse_ensemble(system, program, s, values, terms, policy=None,
                     report=None) -> np.ndarray:
    """Sparse-path ensemble: per-sample value vectors, per-sample patterns.

    Mirrors the rebuild path's factorization policy exactly: every sample
    starts from a fresh ordered factorization (a rebuilt
    :class:`~repro.engine.sweep.SweepEngine` would too) and refactors along
    its own pivot order across the frequency axis.  Pivot choices are
    value-dependent through the threshold test, so sharing one pattern across
    samples — the pre-ordering behavior — broke bit-parity with
    :func:`rebuild_sweep`; per-sample patterns restore it while keeping the
    factor-once / refactor-many economy within each sample's sweep.
    """
    from ..linalg.config import sparse_ordering
    from ..linalg.lu import sparse_lu_reusing
    from ..linalg.ordering import fill_reducing_order
    from ..linalg.sparse import SparseMatrix

    constant_keys, constant_values, dynamic_keys, dynamic_values = (
        program.sparse_values(values))
    merged = sorted(set(constant_keys) | set(dynamic_keys))
    position = {key: index for index, key in enumerate(merged)}
    num_samples = values.shape[0]
    base = np.zeros((num_samples, len(merged)), dtype=complex)
    dynamic = np.zeros((num_samples, len(merged)), dtype=complex)
    base[:, [position[key] for key in constant_keys]] = constant_values
    dynamic[:, [position[key] for key in dynamic_keys]] = dynamic_values

    dimension = program.dimension
    ordering = sparse_ordering()
    order = (None if ordering == "markowitz"
             else fill_reducing_order(dimension, merged, method=ordering))
    responses = np.zeros((num_samples, len(s)), dtype=complex)
    resilient = policy is not None
    for sample in range(num_samples):
        pattern = None
        for k, point in enumerate(s):
            entry_values = base[sample] + complex(point) * dynamic[sample]
            matrix = SparseMatrix.from_entries(
                dimension, dimension, zip(merged, entry_values.tolist()))
            if resilient:
                try:
                    solution, diagnostics, pattern = resilient_sparse_solve(
                        matrix, system.rhs, policy, pattern, order)
                except SolveFailureError as error:
                    escalations = (error.diagnostics.escalations
                                   if error.diagnostics is not None else ())
                    report.record_failure(
                        sample,
                        f"ensemble member {sample} at sweep point {k}",
                        str(error), escalations)
                    responses[sample] = np.nan
                    break
                if diagnostics.stage == "fast":
                    report.record_fast()
                    if diagnostics.degraded:
                        report.record_degraded(sample, diagnostics.condition)
                else:
                    report.record_recovery(sample, diagnostics)
            else:
                factorization, pattern, __ = sparse_lu_reusing(
                    matrix, pattern, column_order=order)
                solution = factorization.solve(system.rhs)
            responses[sample, k] = _project(terms, solution[None, :])[0]
    return responses


def _streaming_sweep(circuit, output, frequencies, space, values, *, solver,
                     method, workers, on_failure, policy, shard_size,
                     histogram_bins, histogram_range, weights,
                     yield_specs) -> EnsembleResult:
    """The ``store_responses=False`` arm: shard, fold, discard.

    Each shard runs through the stored-mode :func:`ensemble_sweep` (so every
    solver / resilience path is exactly the production one), its rows are
    folded into the streaming accumulators, and the ``(shard, F)`` buffer is
    dropped before the next shard is assembled.  Shard boundaries come from
    :func:`~repro.montecarlo.parallel.shard_plan` — fixed by ``shard_size``
    alone — so the accumulator stream is bit-identical to the parallel and
    checkpointed drivers at the same ``shard_size``.
    """
    from .parallel import shard_plan
    from .statistics import (DEFAULT_HISTOGRAM_BINS, DEFAULT_HISTOGRAM_RANGE,
                             EnsembleStatistics, StreamingYield)

    num_samples = values.shape[0]
    if weights is not None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (num_samples,):
            raise FormulationError(
                f"weights must be ({num_samples},) to match the sample "
                f"rows, got {weights.shape}")
    specs = None
    if yield_specs is not None:
        from ..analysis.montecarlo import YieldSpec

        specs = ([yield_specs] if isinstance(yield_specs, YieldSpec)
                 else list(yield_specs))
    bins = (DEFAULT_HISTOGRAM_BINS if histogram_bins is None
            else int(histogram_bins))
    low, high = histogram_range or DEFAULT_HISTOGRAM_RANGE
    statistics = EnsembleStatistics(
        frequencies=frequencies, histogram_bins=bins,
        histogram_low_db=float(low), histogram_high_db=float(high))
    yields = (StreamingYield([spec.name for spec in specs])
              if specs else None)
    resilient = on_failure == "quarantine" or policy is not None
    merged = (SweepReport(label="ensemble member", kind="sample",
                          total=num_samples) if resilient else None)
    solver_used = solver
    for __, start, stop in shard_plan(num_samples, shard_size):
        shard_result = ensemble_sweep(
            circuit, output, frequencies, space, values=values[start:stop],
            solver=solver, method=method, workers=workers,
            on_failure=on_failure, policy=policy)
        surviving = shard_result.surviving_mask()
        shard_weights = None if weights is None else weights[start:stop]
        statistics.update(
            shard_result.magnitudes_db()[surviving],
            None if shard_weights is None else shard_weights[surviving])
        if yields is not None:
            yields.update(frequencies, shard_result.responses, specs,
                          surviving=surviving, weights=shard_weights)
        if merged is not None and shard_result.report is not None:
            merge_shard_report(merged, shard_result.report, start)
        solver_used = shard_result.solver
    return EnsembleResult(frequencies=frequencies, values=values,
                          responses=None, space=space,
                          output=_normalize_output(output),
                          solver=solver_used, report=merged,
                          statistics=statistics, yields=yields,
                          weights=weights)


def ensemble_sweep(circuit, output, frequencies, space=None, *, values=None,
                   samples=128, seed=0, solver="lapack", method="auto",
                   workers=None, on_failure="raise", policy=None,
                   store_responses=True, shard_size=1024,
                   histogram_bins=None, histogram_range=None,
                   weights=None, yield_specs=None) -> EnsembleResult:
    """Evaluate a tolerance ensemble of ``circuit`` over a frequency grid.

    Parameters
    ----------
    circuit:
        The circuit at its design point (any MNA-supported content).
    output:
        Output node, ``(positive, negative)`` pair or
        :class:`~repro.nodal.reduce.TransferSpec`.
    frequencies:
        Sweep grid in hertz.
    space:
        The :class:`~repro.montecarlo.space.ParameterSpace`; defaults to the
        tolerances carried by the circuit's elements.
    values:
        Optional explicit ``(M, E)`` element-value matrix (e.g. corner
        values).  Default: ``space.sample_values(samples, seed)``.
    samples, seed:
        Monte Carlo draw size and RNG seed when ``values`` is not given.
    solver:
        ``"lapack"`` (default, highest throughput) or ``"lu"`` (the
        hand-rolled batched factorization whose outputs are bit-identical to
        the rebuild-per-sample path).  Ignored on the sparse path.
    method:
        ``"auto"`` (dense at or below the configured cutoff), ``"dense"``
        or ``"sparse"``.
    workers:
        Worker threads for the dense path (default: up to 4, bounded by the
        CPU count; 1 disables threading).  Results are identical for any
        worker count.  Resilient runs execute serially so the quarantine
        report is deterministic.
    on_failure:
        ``"raise"`` (default): a singular member aborts the sweep — with no
        ``policy`` this is the legacy path, bit-identical to prior releases.
        ``"quarantine"``: failing members escalate through the
        :class:`~repro.engine.resilience.SolvePolicy` chain, and samples
        that remain unrecoverable are masked to NaN and named in
        ``result.report`` instead of aborting the ensemble.
    policy:
        The escalation :class:`~repro.engine.resilience.SolvePolicy`
        (defaults to ``SolvePolicy()`` when ``on_failure="quarantine"``).
    store_responses:
        ``False`` switches to **streaming estimation**: the ensemble is
        evaluated shard by shard (``shard_size`` samples at a time) and each
        shard's response rows are folded into mergeable accumulators — a
        :class:`~repro.montecarlo.statistics.EnsembleStatistics` (min / max
        / mean / std plus a fixed-bin log-magnitude histogram for
        percentile envelopes) and, with ``yield_specs``, a
        :class:`~repro.montecarlo.statistics.StreamingYield` — then
        discarded.  Peak memory is O(M·E + shard·F + F·bins) instead of
        O(M×F); the result carries ``responses=None`` with the estimates in
        ``result.statistics`` / ``result.yields``.  Statistics are
        bit-identical to a stored-mode run's shard-ordered folds for the
        same ``shard_size``.
    shard_size:
        Samples per streaming fold (ignored when ``store_responses=True``).
        Match a checkpointed / parallel run's ``shard_size`` for
        bit-identical statistics streams.
    histogram_bins, histogram_range:
        Streaming percentile histogram layout: bin count (default
        :data:`~repro.montecarlo.statistics.DEFAULT_HISTOGRAM_BINS`; 0
        disables) and ``(low_db, high_db)`` range.  Streaming mode only.
    weights:
        Optional ``(M,)`` per-sample likelihood-ratio weights (importance
        sampling, from
        :meth:`~repro.montecarlo.space.ParameterSpace.importance_sample`);
        threaded through every streaming accumulator.  Streaming mode only.
    yield_specs:
        Optional :class:`~repro.analysis.montecarlo.YieldSpec` (or sequence)
        evaluated per sample into ``result.yields``.  Streaming mode only.

    Returns
    -------
    EnsembleResult

    Raises
    ------
    SingularMatrixError
        When some ensemble member is singular at some sweep point and
        ``on_failure="raise"``.
    """
    if solver not in _SOLVERS:
        raise FormulationError(f"unknown ensemble solver {solver!r}")
    if on_failure not in ("raise", "quarantine"):
        raise FormulationError(f"unknown failure mode {on_failure!r}")
    if space is None:
        space = ParameterSpace(circuit)
    frequencies = np.asarray(frequencies, dtype=float)
    s = 2j * math.pi * frequencies
    if values is None:
        values = space.sample_values(samples, seed)
    else:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2 or values.shape[1] != len(space):
            raise FormulationError(
                f"values must be (M, {len(space)}), got {values.shape}")
    if not store_responses:
        return _streaming_sweep(
            circuit, output, frequencies, space, values, solver=solver,
            method=method, workers=workers, on_failure=on_failure,
            policy=policy, shard_size=shard_size,
            histogram_bins=histogram_bins, histogram_range=histogram_range,
            weights=weights, yield_specs=yield_specs)
    for name, argument in (("histogram_bins", histogram_bins),
                           ("histogram_range", histogram_range),
                           ("weights", weights),
                           ("yield_specs", yield_specs)):
        if argument is not None:
            raise FormulationError(
                f"{name} requires the streaming mode "
                "(store_responses=False); a stored-mode run computes these "
                "through repro.analysis.montecarlo instead")
    system = build_mna_system(circuit)
    terms = _output_terms(system, output)
    program = ValueProgram.from_circuit(circuit, space)
    resilient = on_failure == "quarantine" or policy is not None
    report = None
    if resilient:
        policy = policy or SolvePolicy()
        report = SweepReport(label="ensemble member", kind="sample",
                             total=values.shape[0])
    if use_dense(system.dimension, method):
        responses = _dense_ensemble(system, program, s, values, terms, solver,
                                    workers=workers, policy=policy,
                                    report=report)
    else:
        solver = "sparse"
        responses = _sparse_ensemble(system, program, s, values, terms,
                                     policy=policy, report=report)
    if report is not None and report.failures:
        if on_failure == "raise":
            failure = report.failures[0]
            raise SolveFailureError(
                f"{failure.description} is singular: {failure.reason}",
                sample=failure.index)
        # Quarantine whole samples: one bad point invalidates the member.
        responses[report.quarantined] = np.nan
    return EnsembleResult(frequencies=frequencies, values=values,
                          responses=responses, space=space,
                          output=_normalize_output(output), solver=solver,
                          report=report)


def rebuild_sweep(circuit, output, frequencies, space=None, *, values=None,
                  samples=128, seed=0, solver="lu",
                  method="auto") -> EnsembleResult:
    """The M-independent-rebuilds reference: one circuit per sample.

    ``solver="lu"`` routes every sample through the standard
    :class:`~repro.analysis.ac.ACAnalysis` production path (circuit copy,
    MNA build, batched AC sweep) — :func:`ensemble_sweep` with
    ``solver="lu"`` reproduces its outputs bit-for-bit.  ``solver="lapack"``
    runs the same per-sample rebuild against
    :func:`~repro.linalg.dense.batched_solve`, the one-at-a-time twin of the
    vectorized LAPACK arm.
    """
    if solver not in _SOLVERS:
        raise FormulationError(f"unknown ensemble solver {solver!r}")
    from ..analysis.ac import ACAnalysis

    if space is None:
        space = ParameterSpace(circuit)
    frequencies = np.asarray(frequencies, dtype=float)
    if values is None:
        values = space.sample_values(samples, seed)
    else:
        values = np.asarray(values, dtype=float)
    responses = np.zeros((values.shape[0], len(frequencies)), dtype=complex)
    for sample in range(values.shape[0]):
        perturbed = space.apply(values[sample])
        if solver == "lu":
            responses[sample] = ACAnalysis(
                perturbed, output, method=method).frequency_response(
                    frequencies)
        else:
            system = build_mna_system(perturbed)
            stack = system.assemble_batch(2j * math.pi * frequencies)
            solutions = batched_solve(stack, system.rhs)
            responses[sample] = _project(_output_terms(system, output),
                                         solutions)
    return EnsembleResult(frequencies=frequencies, values=values,
                          responses=responses, space=space,
                          output=_normalize_output(output), solver=solver)
