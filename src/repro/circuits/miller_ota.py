"""Two-stage Miller-compensated CMOS OTA.

A medium-size circuit (two gain stages, ~8 devices) used by the SDG / SBG
examples: small enough for the exact symbolic expression to be enumerable, yet
rich enough that simplification against the numerical reference removes a
meaningful fraction of the terms.
"""

from __future__ import annotations

from typing import Tuple

from ..devices.expand import expand_mosfet
from ..devices.mosfet import MosfetSmallSignal
from ..netlist.circuit import Circuit
from ..nodal.reduce import TransferSpec

__all__ = ["build_miller_ota"]


def build_miller_ota(compensation_capacitance=2e-12,
                     load_capacitance=5e-12) -> Tuple[Circuit, TransferSpec]:
    """Build the two-stage Miller OTA small-signal circuit.

    Stage 1: NMOS differential pair (M1/M2) with PMOS mirror load (M3/M4) and
    NMOS tail source (M5).  Stage 2: PMOS common-source device (M6) with NMOS
    current-source load (M7).  ``Cc`` bridges the two stages (Miller
    compensation), ``CL`` loads the output.

    Returns
    -------
    (Circuit, TransferSpec)
        Differential drive (``vip`` +0.5, ``vim`` −0.5), output at ``vout``.
    """
    circuit = Circuit("miller-ota", "two-stage Miller-compensated OTA")
    circuit.add_voltage_source("vip", "inp", "0", +0.5)
    circuit.add_voltage_source("vim", "inm", "0", -0.5)

    nmos_pair = MosfetSmallSignal(gm=200e-6, gds=4e-6, cgs=100e-15, cgd=10e-15,
                                  cdb=40e-15, polarity="nmos")
    pmos_load = MosfetSmallSignal(gm=150e-6, gds=6e-6, cgs=80e-15, cgd=8e-15,
                                  cdb=35e-15, polarity="pmos")
    nmos_tail = MosfetSmallSignal(gm=250e-6, gds=8e-6, cgs=120e-15, cgd=12e-15,
                                  cdb=50e-15, polarity="nmos")
    pmos_drive = MosfetSmallSignal(gm=1e-3, gds=20e-6, cgs=400e-15, cgd=40e-15,
                                   cdb=120e-15, polarity="pmos")
    nmos_sink = MosfetSmallSignal(gm=800e-6, gds=25e-6, cgs=300e-15, cgd=30e-15,
                                  cdb=100e-15, polarity="nmos")

    # First stage.
    expand_mosfet(circuit, "M1", "d1", "inp", "tail", "0", nmos_pair)
    expand_mosfet(circuit, "M2", "d2", "inm", "tail", "0", nmos_pair)
    expand_mosfet(circuit, "M3", "d1", "d1", "0", "0", pmos_load)
    expand_mosfet(circuit, "M4", "d2", "d1", "0", "0", pmos_load)
    expand_mosfet(circuit, "M5", "tail", "0", "0", "0", nmos_tail)

    # Second stage (input at the first-stage output d2).
    expand_mosfet(circuit, "M6", "vout", "d2", "0", "0", pmos_drive)
    expand_mosfet(circuit, "M7", "vout", "0", "0", "0", nmos_sink)

    circuit.add_capacitor("Cc", "d2", "vout", compensation_capacitance)
    circuit.add_capacitor("CL", "vout", "0", load_capacitance)

    spec = TransferSpec(inputs=["vip", "vim"], output="vout")
    return circuit, spec
