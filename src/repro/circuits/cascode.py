"""Telescopic cascode amplifier stage.

A single-ended cascode gain stage: driver device, cascode device and a
cascoded current-source load.  Exercises node-stacking (three internal nodes
per branch) and is used by property tests as a mid-size circuit whose DC gain
has a simple analytic estimate (``gm1 · (ro_casc || ro_load)``).
"""

from __future__ import annotations

from typing import Tuple

from ..devices.expand import expand_mosfet
from ..devices.mosfet import MosfetSmallSignal
from ..netlist.circuit import Circuit
from ..nodal.reduce import TransferSpec

__all__ = ["build_cascode_amplifier"]


def build_cascode_amplifier(load_capacitance=0.5e-12) -> Tuple[Circuit, TransferSpec]:
    """Build the cascode amplifier small-signal circuit.

    Returns
    -------
    (Circuit, TransferSpec)
        Single-ended drive at ``vin``, output at ``vout``.
    """
    circuit = Circuit("cascode", "telescopic cascode amplifier")
    circuit.add_voltage_source("vin", "in", "0", 1.0)

    driver = MosfetSmallSignal(gm=500e-6, gds=10e-6, cgs=200e-15, cgd=20e-15,
                               cdb=80e-15, polarity="nmos")
    cascode = MosfetSmallSignal(gm=450e-6, gds=9e-6, cgs=180e-15, cgd=18e-15,
                                cdb=70e-15, csb=70e-15, polarity="nmos")
    load_cascode = MosfetSmallSignal(gm=350e-6, gds=7e-6, cgs=150e-15,
                                     cgd=15e-15, cdb=60e-15, csb=60e-15,
                                     polarity="pmos")
    load_source = MosfetSmallSignal(gm=350e-6, gds=7e-6, cgs=150e-15,
                                    cgd=15e-15, cdb=60e-15, polarity="pmos")

    # NMOS branch: driver M1 into cascode M2.
    expand_mosfet(circuit, "M1", "x1", "in", "0", "0", driver)
    expand_mosfet(circuit, "M2", "vout", "0", "x1", "0", cascode)

    # PMOS load branch: current source M4 into cascode M3.
    expand_mosfet(circuit, "M4", "x2", "0", "0", "0", load_source)
    expand_mosfet(circuit, "M3", "vout", "0", "x2", "0", load_cascode)

    circuit.add_capacitor("CL", "vout", "0", load_capacitance)

    spec = TransferSpec(inputs=["vin"], output="vout")
    return circuit, spec
