"""Active RC filter examples.

Two classic filter topologies built around ideal-ish transconductance /
integrator macromodels:

* a Sallen-Key low-pass (unity-gain buffer modelled as a high-gm VCCS with
  finite output conductance),
* a Tow-Thomas two-integrator biquad (each op-amp modelled as a single-pole
  transconductance stage).

Both have second-order transfer functions with textbook ``ω_0`` / ``Q``
formulas, which the tests compare against the interpolated references.
"""

from __future__ import annotations

import math
from typing import Tuple

from ..netlist.circuit import Circuit
from ..nodal.reduce import TransferSpec

__all__ = ["build_sallen_key_lowpass", "build_tow_thomas_biquad"]


def _add_buffer(circuit, name, input_node, output_node, gm=1.0,
                output_conductance=None):
    """Unity-gain buffer: VCCS of transconductance ``gm`` driving its own
    output conductance ``gm`` (so the ideal gain is 1) at ``output_node``."""
    output_conductance = gm if output_conductance is None else output_conductance
    circuit.add_vccs(f"{name}.gm", output_node, "0", input_node, "0", gm)
    circuit.add_conductor(f"{name}.go", output_node, "0", output_conductance)


def build_sallen_key_lowpass(r1=10e3, r2=10e3, c1=10e-9, c2=5e-9,
                             buffer_gm=1.0) -> Tuple[Circuit, TransferSpec]:
    """Unity-gain Sallen-Key low-pass filter.

    With an ideal buffer the transfer function is
    ``1 / (1 + s C2 (R1 + R2) + s² R1 R2 C1 C2)``; the finite-gm buffer model
    perturbs it slightly (the interpolated reference captures the true
    behaviour, the formula is the design intent).

    Returns
    -------
    (Circuit, TransferSpec)
    """
    circuit = Circuit("sallen-key", "Sallen-Key low-pass filter")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    circuit.add_resistor("R1", "in", "n1", r1)
    circuit.add_resistor("R2", "n1", "n2", r2)
    circuit.add_capacitor("C2", "n2", "0", c2)
    # The feedback capacitor returns to the buffer output.
    circuit.add_capacitor("C1", "n1", "out", c1)
    _add_buffer(circuit, "buf", "n2", "out", gm=buffer_gm)
    spec = TransferSpec(inputs=["vin"], output="out")
    return circuit, spec


def build_tow_thomas_biquad(r=10e3, c=10e-9, q_factor=2.0,
                            integrator_gm=10.0) -> Tuple[Circuit, TransferSpec]:
    """Tow-Thomas two-integrator biquad (low-pass output).

    Each op-amp is modelled as a transconductor of ``integrator_gm`` siemens
    loaded by its feedback network, which approximates the ideal integrator /
    inverter behaviour while staying in admittance form.

    Returns
    -------
    (Circuit, TransferSpec)
    """
    circuit = Circuit("tow-thomas", "Tow-Thomas biquad (low-pass output)")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    rq = q_factor * r

    # First (lossy) integrator: input summing through R, damping through RQ,
    # integration capacitor C around an inverting transconductor.
    circuit.add_resistor("Rin", "in", "x1", r)
    circuit.add_resistor("RQ", "v1", "x1", rq)
    circuit.add_capacitor("C1", "x1", "v1", c)
    circuit.add_vccs("A1.gm", "v1", "0", "x1", "0", integrator_gm)
    circuit.add_conductor("A1.go", "v1", "0", 1e-6)

    # Second integrator.
    circuit.add_resistor("R2", "v1", "x2", r)
    circuit.add_capacitor("C2", "x2", "v2", c)
    circuit.add_vccs("A2.gm", "v2", "0", "x2", "0", integrator_gm)
    circuit.add_conductor("A2.go", "v2", "0", 1e-6)

    # Inverting feedback from the second integrator back to the first summer.
    circuit.add_resistor("R3", "v2", "x3", r)
    circuit.add_vccs("A3.gm", "v3", "0", "x3", "0", integrator_gm)
    circuit.add_conductor("A3.go", "v3", "0", 1e-6)
    circuit.add_resistor("R4", "v3", "x3", r)
    circuit.add_resistor("R5", "v3", "x1", r)

    spec = TransferSpec(inputs=["vin"], output="v2")
    return circuit, spec
