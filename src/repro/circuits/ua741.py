"""µA741 operational amplifier small-signal macro (Tables 2–3, Fig. 2).

The paper's large example is the µA741: its voltage-gain denominator spans
roughly fifty powers of ``s`` with consecutive coefficients 10^6–10^12 apart,
which is what defeats single-interpolation reference generation and motivates
the adaptive scaling algorithm.

This builder reconstructs the classic Fairchild topology (input stage with
lateral-PNP common-base pair and current-mirror load, Widlar bias core,
Darlington-style second stage with the 30 pF Miller compensation capacitor,
V_BE-multiplier-biased class-AB output stage) as a *small-signal* circuit:

* every transistor is expanded into its hybrid-π equivalent (``gm``, ``gpi``,
  ``go``, ``cpi``, ``cmu``, base resistance and collector-substrate
  capacitance) from textbook bias currents,
* supplies are AC ground,
* the exact foundry parameters of the original device are not public, so the
  absolute coefficient values differ from the paper's Table 2/3 — the
  reproduced claim is the *structure* of the problem: a ~40th-order
  denominator whose coefficients span several hundred decades once
  denormalized.

The netlist is written in the library's SPICE-like syntax and parsed with
:func:`repro.netlist.parser.parse_netlist`, so this module also doubles as an
integration test of the parser + device-expansion pipeline.
"""

from __future__ import annotations

from typing import Tuple

from ..netlist.circuit import Circuit
from ..netlist.parser import parse_netlist
from ..nodal.reduce import TransferSpec

__all__ = ["build_ua741", "UA741_NETLIST"]


#: SPICE-like source of the µA741 small-signal macro.  Node 0 is AC ground
#: (both supply rails).  Bias currents are the textbook operating point.
UA741_NETLIST = """
* uA741 operational amplifier - small-signal macro
.model npn  npn (beta=200 va=130 tf=0.35n cje=1p  cmu=0.3p rb=200 ccs=2p)
.model pnp  pnp (beta=50  va=50  tf=30n   cje=0.3p cmu=1p  rb=300 ccs=3p)
.model npnout npn (beta=150 va=100 tf=0.4n cje=2p cmu=0.6p rb=100 ccs=3p)
.model pnpout pnp (beta=50  va=60  tf=20n  cje=1p  cmu=1p  rb=150 ccs=3p)

* differential inputs (antisymmetric drive for the differential gain)
Vip inp 0 ac 0.5
Vim inm 0 ac -0.5

* ---- input stage -------------------------------------------------------
* Q1/Q2: NPN emitter followers, Q3/Q4: lateral PNP common base,
* Q5/Q6/Q7: NPN current-mirror load with emitter degeneration.
Q1 n8   inp  e1   npn ic=9.5u
Q2 n8   inm  e2   npn ic=9.5u
Q3 c3   b34  e1   pnp ic=9.5u
Q4 c4   b34  e2   pnp ic=9.5u
Q5 c3   b56  r1t  npn ic=9.5u
Q6 c4   b56  r2t  npn ic=9.5u
Q7 0    c3   b56  npn ic=10u
R1 r1t 0 1k
R2 r2t 0 1k
R3 b56 0 50k

* ---- bias core ---------------------------------------------------------
* Q8/Q9: PNP mirror feeding the input stage, Q10/Q11: Widlar source,
* Q12/Q13: PNP mirror feeding the second and output stages.
Q8  n8   n8    0   pnp ic=19u
Q9  b34  n8    0   pnp ic=19u
Q10 b34  b1011 r4t npn ic=19u
Q11 b1011 b1011 0  npn ic=730u
Q12 b1213 b1213 0  pnp ic=730u
Q13 b14  b1213 0   pnp ic=550u
R4 r4t 0 5k
R5 b1011 b1213 39k

* ---- second stage ------------------------------------------------------
* Q16: emitter follower, Q17: common-emitter gain device, Cc: 30 pF Miller
* compensation from the stage input (c4) to the stage output (c17).
Q16 0   c4   b17 npn ic=16u
Q17 c17 b17  r8t npn ic=550u
R8 r8t 0 100
R9 b17 0 50k
Cc c4 c17 30p

* ---- output stage ------------------------------------------------------
* Q18/Q19: VBE-multiplier bias chain between the output-stage input nodes,
* Q14/Q20: complementary emitter followers with current-sharing resistors.
Q18 b14 b14 mid npn ic=160u
Q19 mid mid c17 npn ic=160u
Q14 0   b14 r6t npnout ic=170u
Q20 0   c17 r7t pnpout ic=170u
R6 r6t out 27
R7 r7t out 22

* ---- load --------------------------------------------------------------
RL out 0 2k
CL out 0 100p
.end
"""


def build_ua741(load_resistance=2e3,
                load_capacitance=100e-12) -> Tuple[Circuit, TransferSpec]:
    """Build the µA741 small-signal circuit and its differential-gain spec.

    Parameters
    ----------
    load_resistance, load_capacitance:
        Output load; the defaults (2 kΩ, 100 pF) are the datasheet test load.

    Returns
    -------
    (Circuit, TransferSpec)
        The spec describes the differential voltage gain
        ``V(out) / (V(inp) - V(inm))`` with the antisymmetric ±0.5 V drive.
    """
    circuit = parse_netlist(UA741_NETLIST, name="ua741")
    if load_resistance != 2e3:
        circuit.replace(type(circuit["RL"])("RL", "out", "0", load_resistance))
    if load_capacitance != 100e-12:
        circuit.replace(type(circuit["CL"])("CL", "out", "0", load_capacitance))
    spec = TransferSpec(inputs=["Vip", "Vim"], output="out")
    return circuit, spec
