"""µA741 operational amplifier small-signal macro (Tables 2–3, Fig. 2).

The paper's large example is the µA741: its voltage-gain denominator spans
roughly fifty powers of ``s`` with consecutive coefficients 10^6–10^12 apart,
which is what defeats single-interpolation reference generation and motivates
the adaptive scaling algorithm.

This builder reconstructs the classic Fairchild topology (input stage with
lateral-PNP common-base pair and current-mirror load, Widlar bias core,
Darlington-style second stage with the 30 pF Miller compensation capacitor,
V_BE-multiplier-biased class-AB output stage) as a *small-signal* circuit:

* every transistor is expanded into its hybrid-π equivalent (``gm``, ``gpi``,
  ``go``, ``cpi``, ``cmu``, base resistance and collector-substrate
  capacitance) from textbook bias currents,
* supplies are AC ground,
* the exact foundry parameters of the original device are not public, so the
  absolute coefficient values differ from the paper's Table 2/3 — the
  reproduced claim is the *structure* of the problem: a ~40th-order
  denominator whose coefficients span several hundred decades once
  denormalized.

The netlist is written in the library's SPICE-like syntax and parsed with
:func:`repro.netlist.parser.parse_netlist`, so this module also doubles as an
integration test of the parser + device-expansion pipeline.
"""

from __future__ import annotations

from typing import Tuple

from ..netlist.circuit import Circuit
from ..netlist.parser import parse_netlist
from ..nodal.reduce import TransferSpec

__all__ = ["build_ua741", "build_ua741_macro", "UA741_NETLIST"]


#: SPICE-like source of the µA741 small-signal macro.  Node 0 is AC ground
#: (both supply rails).  Bias currents are the textbook operating point.
UA741_NETLIST = """
* uA741 operational amplifier - small-signal macro
.model npn  npn (beta=200 va=130 tf=0.35n cje=1p  cmu=0.3p rb=200 ccs=2p)
.model pnp  pnp (beta=50  va=50  tf=30n   cje=0.3p cmu=1p  rb=300 ccs=3p)
.model npnout npn (beta=150 va=100 tf=0.4n cje=2p cmu=0.6p rb=100 ccs=3p)
.model pnpout pnp (beta=50  va=60  tf=20n  cje=1p  cmu=1p  rb=150 ccs=3p)

* differential inputs (antisymmetric drive for the differential gain)
Vip inp 0 ac 0.5
Vim inm 0 ac -0.5

* ---- input stage -------------------------------------------------------
* Q1/Q2: NPN emitter followers, Q3/Q4: lateral PNP common base,
* Q5/Q6/Q7: NPN current-mirror load with emitter degeneration.
Q1 n8   inp  e1   npn ic=9.5u
Q2 n8   inm  e2   npn ic=9.5u
Q3 c3   b34  e1   pnp ic=9.5u
Q4 c4   b34  e2   pnp ic=9.5u
Q5 c3   b56  r1t  npn ic=9.5u
Q6 c4   b56  r2t  npn ic=9.5u
Q7 0    c3   b56  npn ic=10u
R1 r1t 0 1k
R2 r2t 0 1k
R3 b56 0 50k

* ---- bias core ---------------------------------------------------------
* Q8/Q9: PNP mirror feeding the input stage, Q10/Q11: Widlar source,
* Q12/Q13: PNP mirror feeding the second and output stages.
Q8  n8   n8    0   pnp ic=19u
Q9  b34  n8    0   pnp ic=19u
Q10 b34  b1011 r4t npn ic=19u
Q11 b1011 b1011 0  npn ic=730u
Q12 b1213 b1213 0  pnp ic=730u
Q13 b14  b1213 0   pnp ic=550u
R4 r4t 0 5k
R5 b1011 b1213 39k

* ---- second stage ------------------------------------------------------
* Q16: emitter follower, Q17: common-emitter gain device, Cc: 30 pF Miller
* compensation from the stage input (c4) to the stage output (c17).
Q16 0   c4   b17 npn ic=16u
Q17 c17 b17  r8t npn ic=550u
R8 r8t 0 100
R9 b17 0 50k
Cc c4 c17 30p

* ---- output stage ------------------------------------------------------
* Q18/Q19: VBE-multiplier bias chain between the output-stage input nodes,
* Q14/Q20: complementary emitter followers with current-sharing resistors.
Q18 b14 b14 mid npn ic=160u
Q19 mid mid c17 npn ic=160u
Q14 0   b14 r6t npnout ic=170u
Q20 0   c17 r7t pnpout ic=170u
R6 r6t out 27
R7 r7t out 22

* ---- load --------------------------------------------------------------
RL out 0 2k
CL out 0 100p
.end
"""


def build_ua741(load_resistance=2e3,
                load_capacitance=100e-12) -> Tuple[Circuit, TransferSpec]:
    """Build the µA741 small-signal circuit and its differential-gain spec.

    Parameters
    ----------
    load_resistance, load_capacitance:
        Output load; the defaults (2 kΩ, 100 pF) are the datasheet test load.

    Returns
    -------
    (Circuit, TransferSpec)
        The spec describes the differential voltage gain
        ``V(out) / (V(inp) - V(inm))`` with the antisymmetric ±0.5 V drive.
    """
    circuit = parse_netlist(UA741_NETLIST, name="ua741")
    if load_resistance != 2e3:
        circuit.replace(type(circuit["RL"])("RL", "out", "0", load_resistance))
    if load_capacitance != 100e-12:
        circuit.replace(type(circuit["CL"])("CL", "out", "0", load_capacitance))
    spec = TransferSpec(inputs=["Vip", "Vim"], output="out")
    return circuit, spec


#: The macro elements that carry tolerance metadata by default: the twelve
#: axes that dominate the closed-loop response spread (input stage, mirror
#: pole, compensation network, output stage and load).  Exactly twelve so
#: corner analysis still runs its full 2^12 factorial
#: (:data:`repro.montecarlo.space._FULL_FACTORIAL_LIMIT`).
UA741_MACRO_TOLERANCED = ("Rb1", "Rb2", "Cdm", "Rt", "Rdm", "Cc",
                          "Rz", "Rc2", "Rout", "RL", "CL", "G1")


def build_ua741_macro(tolerance=0.05, distribution="gaussian", *,
                      toleranced=True) -> Tuple[Circuit, TransferSpec]:
    """Behavioral µA741 macromodel: the symbolic-analysis-scale twin.

    The transistor-level macro of :func:`build_ua741` has a 39-unknown nodal
    matrix whose *flat* determinant is astronomically large — exactly the
    situation the paper's SDG/SBG error control exists for, and far beyond any
    exact sum-of-products expansion.  This builder provides the classic
    three-stage behavioral macromodel of the same amplifier (Boyle-style:
    differential input stage with mirror pole and common-mode tail, emitter
    follower interstage, Miller-compensated second stage with nulling
    resistor, resistive output stage into the datasheet load) at the size
    symbolic network functions are actually generated at — ten unknown
    nodes, every element value distinct so term magnitudes never tie exactly.

    It is the workload of the symbolic-kernel benchmark: large enough that
    the legacy flat expansion takes seconds, small enough that it completes,
    so the interned/legacy A/B is measurable.

    Parameters
    ----------
    tolerance, distribution:
        :class:`~repro.netlist.elements.Tolerance` metadata attached to the
        :data:`UA741_MACRO_TOLERANCED` elements (±5 % gaussian by default),
        so Monte Carlo / compiled-model workloads get a ready
        tolerance-annotated symbolic circuit without hand-decorating.
        Metadata only — the design-point numerics are unchanged.
    toleranced:
        Pass ``False`` to opt out (no tolerance metadata; matches the
        pre-tolerance fingerprint).

    Returns
    -------
    (Circuit, TransferSpec)
        Differential voltage gain ``V(out) / (V(inp) - V(inm))`` with the
        antisymmetric ±0.5 V drive, like :func:`build_ua741`.
    """
    circuit = Circuit("ua741-macro", "uA741 behavioral macromodel")
    circuit.add_voltage_source("Vip", "inp", "0", +0.5)
    circuit.add_voltage_source("Vim", "inm", "0", -0.5)

    # Input stage: base spreading resistances, input capacitances, the
    # differential capacitance, and the common-mode tail node.
    circuit.add_resistor("Rb1", "inp", "b1", 200.0)
    circuit.add_resistor("Rb2", "inm", "b2", 205.0)
    circuit.add_capacitor("Cb1", "b1", "0", 1.4e-12)
    circuit.add_capacitor("Cb2", "b2", "0", 1.5e-12)
    circuit.add_capacitor("Cdm", "b1", "b2", 0.7e-12)
    circuit.add_capacitor("Ce1", "b1", "t", 0.9e-12)
    circuit.add_capacitor("Ce2", "b2", "t", 1.0e-12)
    circuit.add_resistor("Rt", "t", "0", 1.8e6)
    circuit.add_capacitor("Ct", "t", "0", 2.3e-12)

    # Differential transconductance into the first-stage output d1, with the
    # current-mirror pole modelled on its own node dm.
    circuit.add_vccs("G1", "d1", "0", "b1", "b2", 190e-6)
    circuit.add_vccs("Gmir", "dm", "0", "b2", "b1", 92e-6)
    circuit.add_resistor("Rdm", "dm", "0", 2.4e4)
    circuit.add_capacitor("Cdm2", "dm", "0", 4.3e-12)
    circuit.add_vccs("Gm2", "d1", "0", "dm", "0", 96e-6)
    circuit.add_resistor("Rd1", "d1", "0", 6.7e6)
    circuit.add_capacitor("Cd1", "d1", "0", 1.8e-12)

    # Emitter-follower interstage into the second-stage input m1.
    circuit.add_resistor("Rf", "d1", "m1", 2.6e4)
    circuit.add_resistor("Rm1", "m1", "0", 4.9e6)
    circuit.add_capacitor("Cm1", "m1", "0", 2.6e-12)

    # Second stage with the 30 pF Miller compensation through the nulling
    # resistor node x.
    circuit.add_vccs("G2", "c2", "0", "m1", "0", 6.5e-3)
    circuit.add_resistor("Rc2", "c2", "0", 4.8e5)
    circuit.add_capacitor("Cc2", "c2", "0", 5.1e-12)
    circuit.add_capacitor("Cc", "m1", "x", 30e-12)
    circuit.add_resistor("Rz", "x", "c2", 60.0)

    # Class-AB output stage: follower drive node e, current-sharing
    # resistance into the datasheet test load.
    circuit.add_vccs("Go", "e", "0", "c2", "e", 38e-3)
    circuit.add_resistor("Ro", "e", "0", 3.3e4)
    circuit.add_capacitor("Co", "c2", "e", 10.5e-12)
    circuit.add_resistor("Rout", "e", "out", 47.0)
    circuit.add_capacitor("Cf2", "c2", "out", 3.2e-12)
    circuit.add_resistor("RL", "out", "0", 2e3)
    circuit.add_capacitor("CL", "out", "0", 100e-12)

    if toleranced:
        for name in UA741_MACRO_TOLERANCED:
            circuit.replace(
                circuit[name].with_tolerance(tolerance, distribution))

    spec = TransferSpec(inputs=["Vip", "Vim"], output="out")
    return circuit, spec
