"""Circuit library used by the tests, examples and paper-reproduction benches.

Every builder returns ``(circuit, spec)`` — a small-signal
:class:`~repro.netlist.circuit.Circuit` plus the
:class:`~repro.nodal.reduce.TransferSpec` of the network function studied in
the corresponding experiment:

* :func:`~repro.circuits.rc_ladder.build_rc_ladder` — RC ladders with
  analytically known coefficients (test oracle),
* :func:`~repro.circuits.ota.build_positive_feedback_ota` — the Fig. 1
  positive-feedback OTA (Table 1 experiments),
* :func:`~repro.circuits.ua741.build_ua741` — the µA741 operational amplifier
  small-signal macro (Tables 2–3 and Fig. 2),
* :func:`~repro.circuits.ua741.build_ua741_macro` — the behavioral µA741
  macromodel at symbolic-analysis scale (the symbolic-kernel benchmark),
* :func:`~repro.circuits.miller_ota.build_miller_ota` — a two-stage Miller
  OTA (SDG / SBG examples),
* :func:`~repro.circuits.cascode.build_cascode_amplifier` — a telescopic
  cascode stage,
* :func:`~repro.circuits.filters.build_sallen_key_lowpass` /
  :func:`~repro.circuits.filters.build_tow_thomas_biquad` — active RC filters
  exercising VCCS-based macromodels,
* :func:`~repro.circuits.generators.build_rc_mesh` /
  :func:`~repro.circuits.generators.build_clock_tree` /
  :func:`~repro.circuits.generators.build_coupled_bus` — seeded post-layout
  scale RC generators (10²–10⁴ unknowns) for the sparse-engine scaling and
  parity harness, with :func:`~repro.circuits.generators.build_generator`
  picking family shapes by target unknown count.
"""

from .rc_ladder import build_rc_ladder, rc_ladder_denominator_coefficients
from .ota import build_positive_feedback_ota
from .ua741 import build_ua741, build_ua741_macro
from .miller_ota import build_miller_ota
from .cascode import build_cascode_amplifier
from .filters import build_sallen_key_lowpass, build_tow_thomas_biquad
from .generators import (GENERATOR_FAMILIES, build_clock_tree,
                         build_coupled_bus, build_generator, build_rc_mesh)

__all__ = [
    "build_rc_ladder",
    "rc_ladder_denominator_coefficients",
    "build_positive_feedback_ota",
    "build_ua741",
    "build_ua741_macro",
    "build_miller_ota",
    "build_cascode_amplifier",
    "build_sallen_key_lowpass",
    "build_tow_thomas_biquad",
    "build_rc_mesh",
    "build_clock_tree",
    "build_coupled_bus",
    "build_generator",
    "GENERATOR_FAMILIES",
]
