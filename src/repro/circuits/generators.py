"""Parameterized post-layout-scale circuit generators.

The paper's workloads top out at the 43-unknown µA741; extracted post-layout
parasitic networks run to 10³–10⁴ unknowns.  This module closes that gap with
three families of deterministic, seeded RC networks shaped like the structures
layout extractors actually emit:

* :func:`build_rc_mesh` — a 2-D resistor grid with grounded node capacitors
  (power-grid / substrate extraction shape; structurally a 5-point stencil),
* :func:`build_clock_tree` — a balanced fanout tree of wire RC segments with
  leaf load capacitors (clock-distribution shape; long sparse paths),
* :func:`build_coupled_bus` — parallel RC lines with inter-line coupling
  capacitors, one driven aggressor and terminated victims (bus / crosstalk
  shape; banded with off-band coupling).

Every builder returns the library's usual ``(circuit, spec)`` pair, drives the
network from a grounded unit source ``Vin``, jitters element values from a
seeded :class:`numpy.random.Generator` (same seed, same circuit — CI-stable),
and attaches :class:`~repro.netlist.elements.Tolerance` metadata to every
passive, so one generated circuit serves as benchmark input, property-test
fixture and Monte Carlo workload alike.  :func:`build_generator` picks family
shape parameters to hit a requested unknown count.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..errors import NetlistError
from ..netlist.circuit import Circuit
from ..netlist.elements import Capacitor, Resistor
from ..nodal.reduce import TransferSpec

__all__ = ["build_rc_mesh", "build_clock_tree", "build_coupled_bus",
           "build_generator", "GENERATOR_FAMILIES"]


def _jittered(rng, nominal, jitter):
    """One positive value, ``nominal`` scaled uniformly by ``1 ± jitter``."""
    return float(nominal * (1.0 + jitter * rng.uniform(-1.0, 1.0)))


def _add_resistor(circuit, rng, name, pos, neg, nominal, jitter, tolerance):
    element = Resistor(name, pos, neg, _jittered(rng, nominal, jitter))
    if tolerance:
        element = element.with_tolerance(tolerance)
    circuit.add(element)


def _add_capacitor(circuit, rng, name, pos, neg, nominal, jitter, tolerance):
    element = Capacitor(name, pos, neg, _jittered(rng, nominal, jitter))
    if tolerance:
        element = element.with_tolerance(tolerance)
    circuit.add(element)


def build_rc_mesh(rows, cols=None, *, seed=0, resistance=200.0,
                  capacitance=1e-13, driver_resistance=50.0, jitter=0.2,
                  tolerance=0.05,
                  name=None) -> Tuple[Circuit, TransferSpec]:
    """An ``rows × cols`` RC mesh — the power-grid extraction shape.

    Grid nodes are joined to their horizontal and vertical neighbors by
    resistors and to ground by capacitors; ``Vin`` drives corner ``(0, 0)``
    through a driver resistance and the transfer function is observed at the
    opposite corner.  The MNA dimension is ``rows·cols + 2`` (grid nodes, the
    driven ``in`` node, one source branch current).

    Parameters
    ----------
    rows, cols:
        Grid shape (``cols`` defaults to ``rows``); both ≥ 1.
    seed:
        Seed of the value-jitter stream — same seed, same circuit.
    resistance, capacitance:
        Nominal segment resistance and node-to-ground capacitance.
    driver_resistance:
        Source driver resistance into the near corner.
    jitter:
        Half-width of the uniform per-element value spread (``0.2`` = ±20%).
    tolerance:
        :class:`~repro.netlist.elements.Tolerance` fraction attached to every
        passive (``None`` / ``0`` disables).

    Returns
    -------
    (Circuit, TransferSpec)
    """
    rows = int(rows)
    cols = int(rows if cols is None else cols)
    if rows < 1 or cols < 1:
        raise NetlistError("an RC mesh needs at least a 1x1 grid")
    rng = np.random.default_rng(seed)
    circuit = Circuit(name or f"rc-mesh-{rows}x{cols}-s{seed}")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)

    def node(row, col):
        return f"m{row}_{col}"

    _add_resistor(circuit, rng, "Rdrv", "in", node(0, 0), driver_resistance,
                  jitter, tolerance)
    for row in range(rows):
        for col in range(cols):
            here = node(row, col)
            if col + 1 < cols:
                _add_resistor(circuit, rng, f"Rh{row}_{col}", here,
                              node(row, col + 1), resistance, jitter,
                              tolerance)
            if row + 1 < rows:
                _add_resistor(circuit, rng, f"Rv{row}_{col}", here,
                              node(row + 1, col), resistance, jitter,
                              tolerance)
            _add_capacitor(circuit, rng, f"C{row}_{col}", here, "0",
                           capacitance, jitter, tolerance)
    output = node(rows - 1, cols - 1)
    return circuit, TransferSpec(inputs=["Vin"], output=output)


def build_clock_tree(levels, *, fanout=2, seed=0, resistance=150.0,
                     capacitance=5e-14, leaf_capacitance=2e-13,
                     driver_resistance=30.0, jitter=0.2, tolerance=0.05,
                     name=None) -> Tuple[Circuit, TransferSpec]:
    """A balanced ``fanout``-ary clock tree of RC wire segments.

    Level-order node ``t<k>`` hangs off its parent through a wire resistor
    and carries a grounded wire capacitor; leaves get an extra load
    capacitor.  ``Vin`` drives the root through the driver resistance and
    the transfer function is observed at the last (deepest) leaf.  With
    ``fanout = f`` the tree has ``(f^(levels+1) − 1) / (f − 1)`` segments and
    MNA dimension ``segments + 2``.

    Parameters are as in :func:`build_rc_mesh`, plus ``levels`` (tree depth,
    ≥ 0: a root-only tree) and ``fanout`` (≥ 2 children per internal node).
    """
    levels = int(levels)
    fanout = int(fanout)
    if levels < 0:
        raise NetlistError("a clock tree needs a non-negative depth")
    if fanout < 2:
        raise NetlistError("a clock tree needs a fanout of at least 2")
    total = (fanout ** (levels + 1) - 1) // (fanout - 1)
    first_leaf = (fanout ** levels - 1) // (fanout - 1)
    rng = np.random.default_rng(seed)
    circuit = Circuit(name or f"clock-tree-d{levels}f{fanout}-s{seed}")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)

    _add_resistor(circuit, rng, "Rdrv", "in", "t0", driver_resistance,
                  jitter, tolerance)
    for index in range(total):
        here = f"t{index}"
        if index > 0:
            parent = f"t{(index - 1) // fanout}"
            _add_resistor(circuit, rng, f"Rw{index}", parent, here,
                          resistance, jitter, tolerance)
        _add_capacitor(circuit, rng, f"Cw{index}", here, "0", capacitance,
                       jitter, tolerance)
        if index >= first_leaf:
            _add_capacitor(circuit, rng, f"Cl{index}", here, "0",
                           leaf_capacitance, jitter, tolerance)
    output = f"t{total - 1}"
    return circuit, TransferSpec(inputs=["Vin"], output=output)


def build_coupled_bus(lines, segments, *, seed=0, resistance=120.0,
                      capacitance=8e-14, coupling=4e-14,
                      termination=1e3, driver_resistance=40.0, jitter=0.2,
                      tolerance=0.05,
                      name=None) -> Tuple[Circuit, TransferSpec]:
    """``lines`` parallel RC lines with inter-line coupling capacitors.

    Line 0 is the aggressor, driven by ``Vin`` through the driver
    resistance; every other line is a victim terminated to ground by
    resistors at both ends.  Each line is a ``segments``-section RC chain
    with grounded segment capacitors, and adjacent lines are coupled by a
    capacitor at every segment — the far-end crosstalk transfer onto the
    nearest victim line (line 1) is the observed output, the standard
    near-victim coupling measurement.  MNA dimension: ``lines·segments + 2``.

    Parameters are as in :func:`build_rc_mesh`, plus ``coupling`` (nominal
    adjacent-line coupling capacitance) and ``termination`` (victim
    termination resistance).
    """
    lines = int(lines)
    segments = int(segments)
    if lines < 2:
        raise NetlistError("a coupled bus needs at least two lines")
    if segments < 1:
        raise NetlistError("a coupled bus needs at least one segment")
    rng = np.random.default_rng(seed)
    circuit = Circuit(name or f"coupled-bus-{lines}x{segments}-s{seed}")
    circuit.add_voltage_source("Vin", "in", "0", 1.0)

    def node(line, segment):
        return f"b{line}_{segment}"

    for line in range(lines):
        if line == 0:
            _add_resistor(circuit, rng, "Rdrv", "in", node(0, 0),
                          driver_resistance, jitter, tolerance)
        else:
            _add_resistor(circuit, rng, f"Rn{line}", node(line, 0), "0",
                          termination, jitter, tolerance)
            _add_resistor(circuit, rng, f"Rf{line}",
                          node(line, segments - 1), "0", termination,
                          jitter, tolerance)
        for segment in range(segments):
            here = node(line, segment)
            if segment + 1 < segments:
                _add_resistor(circuit, rng, f"R{line}_{segment}", here,
                              node(line, segment + 1), resistance, jitter,
                              tolerance)
            _add_capacitor(circuit, rng, f"C{line}_{segment}", here, "0",
                           capacitance, jitter, tolerance)
            if line + 1 < lines:
                _add_capacitor(circuit, rng, f"Cc{line}_{segment}", here,
                               node(line + 1, segment), coupling, jitter,
                               tolerance)
    output = node(1, segments - 1)
    return circuit, TransferSpec(inputs=["Vin"], output=output)


#: Family name → builder, for table-driven tests and benchmarks.
GENERATOR_FAMILIES = {
    "mesh": build_rc_mesh,
    "tree": build_clock_tree,
    "bus": build_coupled_bus,
}


def build_generator(family, target_dimension, seed=0,
                    **overrides) -> Tuple[Circuit, TransferSpec]:
    """Build a ``family`` circuit whose MNA dimension approximates a target.

    Parameters
    ----------
    family:
        ``"mesh"``, ``"tree"`` or ``"bus"``.
    target_dimension:
        Requested unknown count (grid nodes + driven node + source branch);
        the builder picks the closest shape its family supports, so the
        actual dimension can differ by a few unknowns (trees quantize to
        powers of the fanout).
    seed:
        Value-jitter seed, forwarded to the family builder.
    overrides:
        Extra keyword arguments forwarded to the family builder.

    Returns
    -------
    (Circuit, TransferSpec)
    """
    if family not in GENERATOR_FAMILIES:
        raise NetlistError(f"unknown generator family {family!r}")
    target_nodes = max(1, int(target_dimension) - 2)
    if family == "mesh":
        side = max(1, int(round(math.sqrt(target_nodes))))
        cols = max(1, int(round(target_nodes / side)))
        return build_rc_mesh(side, cols, seed=seed, **overrides)
    if family == "tree":
        fanout = int(overrides.pop("fanout", 2))
        best_levels = 0
        best_error: Optional[int] = None
        levels = 0
        while True:
            total = (fanout ** (levels + 1) - 1) // (fanout - 1)
            error = abs(total - target_nodes)
            if best_error is None or error < best_error:
                best_error, best_levels = error, levels
            if total >= target_nodes:
                break
            levels += 1
        return build_clock_tree(best_levels, fanout=fanout, seed=seed,
                                **overrides)
    lines = max(2, min(16, int(round(math.sqrt(target_nodes / 8.0)))))
    segments = max(1, int(round(target_nodes / lines)))
    return build_coupled_bus(lines, segments, seed=seed, **overrides)
