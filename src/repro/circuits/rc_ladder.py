"""RC ladder networks — the analytically tractable test oracle.

An ``N``-stage RC ladder driven by an ideal voltage source::

    vin --R1-- n1 --R2-- n2 -- ... --RN-- nN
               |         |               |
               C1        C2              CN
               |         |               |
              gnd       gnd             gnd

has a transfer function ``V(nN)/V(in) = 1 / D(s)`` whose denominator
coefficients can be computed exactly with a simple polynomial recursion on the
ladder (no matrix round-off involved).  That makes the ladder the perfect
oracle for the interpolation engine: the recovered coefficients can be checked
digit-by-digit, for any ladder length and for element spreads chosen to stress
the adaptive scaling.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import NetlistError
from ..netlist.circuit import Circuit
from ..nodal.reduce import TransferSpec
from ..xfloat import XFloat

__all__ = ["build_rc_ladder", "rc_ladder_denominator_coefficients"]


def _normalize_values(values, count, default):
    if values is None:
        return [default] * count
    if isinstance(values, (int, float)):
        return [float(values)] * count
    values = [float(v) for v in values]
    if len(values) != count:
        raise NetlistError(
            f"expected {count} element values, got {len(values)}"
        )
    return values


def build_rc_ladder(stages, resistances=None, capacitances=None,
                    name=None) -> Tuple[Circuit, TransferSpec]:
    """Build an ``stages``-section RC ladder driven by an ideal voltage source.

    Parameters
    ----------
    stages:
        Number of RC sections (≥ 1); the denominator degree equals ``stages``.
    resistances, capacitances:
        Scalar or per-stage sequences; defaults are 1 kΩ and 1 nF.

    Returns
    -------
    (Circuit, TransferSpec)
        The transfer function is ``V(n<stages>) / V(vin)``.
    """
    stages = int(stages)
    if stages < 1:
        raise NetlistError("an RC ladder needs at least one stage")
    resistances = _normalize_values(resistances, stages, 1e3)
    capacitances = _normalize_values(capacitances, stages, 1e-9)

    circuit = Circuit(name or f"rc-ladder-{stages}")
    circuit.add_voltage_source("vin", "in", "0", 1.0)
    previous = "in"
    for index in range(1, stages + 1):
        node = f"n{index}"
        circuit.add_resistor(f"R{index}", previous, node, resistances[index - 1])
        circuit.add_capacitor(f"C{index}", node, "0", capacitances[index - 1])
        previous = node
    spec = TransferSpec(inputs=["vin"], output=previous)
    return circuit, spec


def rc_ladder_denominator_coefficients(resistances,
                                       capacitances) -> List[float]:
    """Exact denominator coefficients of the ladder's voltage transfer function.

    The transfer function of the ladder above is ``1 / D(s)`` with ``D``
    computed by the standard ladder recursion expressed on polynomials.  Let
    ``A_j(s)`` be the polynomial such that ``V(in) = A_j(s) · V(n_j_rightmost)``
    when only the right-most ``j`` sections are considered; walking from the
    output back to the source:

    * ``A(s) = 1`` and the running "current polynomial" ``B(s) = 0``
      (current flowing right of the last node, scaled by ``V(out)``),
    * at each section: ``B += s C_j · A`` then ``A += R_j · B``.

    After processing all sections ``A(s)`` is exactly ``D(s)`` and the
    numerator is 1.

    Returns
    -------
    list of float
        ``[d_0, d_1, …, d_N]`` in ascending powers of ``s`` (``d_0`` is 1).
    """
    resistances = [float(r) for r in resistances]
    capacitances = [float(c) for c in capacitances]
    if len(resistances) != len(capacitances):
        raise NetlistError("resistance and capacitance lists differ in length")

    # Polynomials in ascending powers of s.
    voltage_poly = [1.0]          # A(s)
    current_poly: List[float] = []  # B(s), one degree behind after the sC step

    def poly_add(target, source, offset=0, factor=1.0):
        while len(target) < len(source) + offset:
            target.append(0.0)
        for power, value in enumerate(source):
            target[power + offset] += factor * value
        return target

    for resistance, capacitance in zip(reversed(resistances),
                                       reversed(capacitances)):
        # B(s) += s * C * A(s)
        current_poly = poly_add(list(current_poly), voltage_poly, offset=1,
                                factor=capacitance)
        # A(s) += R * B(s)
        voltage_poly = poly_add(list(voltage_poly), current_poly, offset=0,
                                factor=resistance)
    return voltage_poly
