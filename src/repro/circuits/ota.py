"""The positive-feedback OTA of Fig. 1 (Table 1 experiments).

The paper's first example is a CMOS operational transconductance amplifier
with a cross-coupled (positive feedback) load, analysed for its differential
voltage gain; the upper bound on the polynomial order estimated for it is 9.

The exact device sizes of the original design are not public, so this builder
constructs a structurally equivalent small-signal circuit — differential pair,
diode-connected plus cross-coupled load devices, cascoded current-mirror
output branches and a tail current source — with typical 1990s CMOS
small-signal parameters.  The resulting network has nine internal nodes, so
the denominator order estimate is 9 exactly as in the paper, and the
coefficient spread between consecutive powers of ``s`` is the 10^6–10^12 range
that makes the unscaled interpolation of Table 1a fail.
"""

from __future__ import annotations

from typing import Tuple

from ..devices.expand import expand_mosfet
from ..devices.mosfet import MosfetSmallSignal
from ..netlist.circuit import Circuit
from ..nodal.reduce import TransferSpec

__all__ = ["build_positive_feedback_ota"]


def _nmos(gm, gds, cgs, cgd, cdb, csb=0.0):
    return MosfetSmallSignal(gm=gm, gds=gds, cgs=cgs, cgd=cgd, cdb=cdb,
                             csb=csb, polarity="nmos")


def _pmos(gm, gds, cgs, cgd, cdb, csb=0.0):
    return MosfetSmallSignal(gm=gm, gds=gds, cgs=cgs, cgd=cgd, cdb=cdb,
                             csb=csb, polarity="pmos")


def build_positive_feedback_ota(load_capacitance=1e-12,
                                feedback_ratio=0.8) -> Tuple[Circuit, TransferSpec]:
    """Build the positive-feedback OTA small-signal circuit.

    Parameters
    ----------
    load_capacitance:
        Single-ended load capacitance at the output node (farads).
    feedback_ratio:
        Ratio of the cross-coupled (positive feedback) transconductance to the
        diode-connected load transconductance; values below 1 keep the circuit
        stable while providing the gain boost of the topology.

    Returns
    -------
    (Circuit, TransferSpec)
        The spec describes the differential voltage gain: antisymmetric drive
        of ``vip`` (+0.5 V) and ``vim`` (−0.5 V), output at ``vo``.

    Notes
    -----
    Internal nodes (9 unknowns → 9th-order denominator bound): the two
    differential-pair drains ``d1`` / ``d2``, the tail and tail-cascode nodes,
    the two mirror gate nodes ``m1`` / ``m2``, the two output-cascode source
    nodes ``x1`` / ``x2`` and the output ``vo``.
    """
    circuit = Circuit("positive-feedback-ota", "Fig. 1 positive feedback OTA")

    # Differential inputs (supply rails are AC ground, node "0").
    circuit.add_voltage_source("vip", "inp", "0", +0.5)
    circuit.add_voltage_source("vim", "inm", "0", -0.5)

    # Device small-signal parameters (typical 1 µm CMOS at ~10 µA/branch).
    pair = _nmos(gm=120e-6, gds=2.0e-6, cgs=60e-15, cgd=6e-15, cdb=25e-15,
                 csb=25e-15)
    load = _pmos(gm=80e-6, gds=1.5e-6, cgs=45e-15, cgd=5e-15, cdb=20e-15)
    cross = _pmos(gm=feedback_ratio * 80e-6, gds=1.5e-6, cgs=45e-15, cgd=5e-15,
                  cdb=20e-15)
    mirror_in = _nmos(gm=100e-6, gds=2.0e-6, cgs=55e-15, cgd=6e-15, cdb=22e-15)
    mirror_out = _nmos(gm=100e-6, gds=2.0e-6, cgs=55e-15, cgd=6e-15, cdb=22e-15,
                       csb=22e-15)
    cascode = _pmos(gm=90e-6, gds=1.8e-6, cgs=50e-15, cgd=5e-15, cdb=20e-15,
                    csb=20e-15)
    tail = _nmos(gm=100e-6, gds=3.0e-6, cgs=50e-15, cgd=5e-15, cdb=30e-15)

    # Input differential pair M1/M2 with common tail node.
    expand_mosfet(circuit, "M1", "d1", "inp", "tail", "0", pair)
    expand_mosfet(circuit, "M2", "d2", "inm", "tail", "0", pair)

    # Diode-connected loads M3/M4 and cross-coupled positive feedback M5/M6.
    expand_mosfet(circuit, "M3", "d1", "d1", "0", "0", load)
    expand_mosfet(circuit, "M4", "d2", "d2", "0", "0", load)
    expand_mosfet(circuit, "M5", "d1", "d2", "0", "0", cross)
    expand_mosfet(circuit, "M6", "d2", "d1", "0", "0", cross)

    # Output current mirrors: M7/M8 copy the d1 branch through the gate node
    # m1 onto the cascode device M9; M10/M11 copy the d2 branch through m2
    # onto the output device M12.
    expand_mosfet(circuit, "M7", "m1", "d1", "0", "0", mirror_in)
    expand_mosfet(circuit, "M8", "m1", "m1", "0", "0", mirror_in)
    expand_mosfet(circuit, "M9", "x1", "m1", "0", "0", mirror_out)
    expand_mosfet(circuit, "M10", "vo", "0", "x1", "0", cascode)

    expand_mosfet(circuit, "M11", "m2", "d2", "0", "0", mirror_in)
    expand_mosfet(circuit, "M12", "m2", "m2", "0", "0", mirror_in)
    expand_mosfet(circuit, "M13", "x2", "m2", "0", "0", mirror_out)
    expand_mosfet(circuit, "M14", "vo", "0", "x2", "0", cascode)

    # Cascoded tail current source (two devices, one internal node).
    expand_mosfet(circuit, "M15", "tc", "0", "0", "0", tail)
    expand_mosfet(circuit, "M16", "tail", "0", "tc", "0", tail)

    # External load capacitance.
    circuit.add_capacitor("CL", "vo", "0", load_capacitance)

    spec = TransferSpec(inputs=["vip", "vim"], output="vo")
    return circuit, spec
