"""Simplification during generation (SDG) using the numerical reference.

SDG techniques (the paper's refs [2]–[4]) generate the ``P`` most significant
terms of every coefficient, stopping as soon as the generated sum represents
the required fraction of the coefficient's total magnitude:

``|h_k(x0) - Σ_{l=1..P} h_kl(x0)| < ε_k |h_k(x0)|``            (Eq. 3)

The total ``h_k(x0)`` must be known *before* the symbolic expression is
available — that is exactly the numerical reference this library generates.

This module provides an SDG driver on top of the library's symbolic engine:
terms of each coefficient are produced in decreasing order of design-point
magnitude and accumulation stops per Eq. (3).  (The term generator enumerates
the determinant terms and orders them — the published SDG algorithms avoid the
full enumeration with dedicated data structures, but the *error control*,
which is what this paper contributes to, is identical.)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import SimplificationError
from ..xfloat import XFloat
from .generation import (
    SymbolicTransferFunction,
    select_significant_terms,
    symbolic_network_function,
)
from .terms import SymbolicExpression

__all__ = ["SDGResult", "simplification_during_generation"]


@dataclasses.dataclass
class SDGCoefficientReport:
    """Per-coefficient accounting of the SDG term selection."""

    kind: str
    power: int
    kept_terms: int
    total_terms: int
    reference_log10: float
    achieved_error: float

    @property
    def compression(self) -> float:
        """Fraction of terms discarded (0 = nothing discarded)."""
        if self.total_terms == 0:
            return 0.0
        return 1.0 - self.kept_terms / self.total_terms


@dataclasses.dataclass
class SDGResult:
    """Outcome of an SDG run: the simplified function plus per-coefficient stats."""

    simplified: SymbolicTransferFunction
    reports: List[SDGCoefficientReport]
    epsilon: float

    def total_terms(self) -> Tuple[int, int]:
        """``(kept, original)`` term totals across both polynomials."""
        kept = sum(report.kept_terms for report in self.reports)
        total = sum(report.total_terms for report in self.reports)
        return kept, total

    def compression(self) -> float:
        """Overall fraction of discarded terms."""
        kept, total = self.total_terms()
        if total == 0:
            return 0.0
        return 1.0 - kept / total

    def summary(self) -> str:
        """One-line human-readable summary."""
        kept, total = self.total_terms()
        return (f"SDG @ ε={self.epsilon:g}: kept {kept} of {total} terms "
                f"({100.0 * self.compression():.1f}% discarded)")


def _coefficient_error(kept_terms, table, reference_value,
                       method="vectorized", valuation=None) -> float:
    if method == "scalar":
        total = XFloat.zero()
        for term in kept_terms:
            total = total + term.value(table)
    elif valuation is not None:
        # The kept terms are exactly the selection-order prefix, so their
        # values are already cached on the coefficient's valuation.
        total = XFloat.zero()
        for index in valuation.order()[:len(kept_terms)]:
            total = total + valuation.value(index)
    else:
        from .kernel import sum_term_values

        total = sum_term_values(kept_terms, table)
    if reference_value.is_zero():
        return 0.0 if total.is_zero() else float("inf")
    return float(abs(reference_value - total) / abs(reference_value))


def simplification_during_generation(circuit, spec, reference, epsilon=0.01,
                                     max_terms=None,
                                     transfer_function=None,
                                     kernel="interned",
                                     session=None) -> SDGResult:
    """Run SDG for a circuit against a previously generated numerical reference.

    Parameters
    ----------
    circuit, spec:
        The circuit and transfer specification (must match the reference).
    reference:
        :class:`~repro.interpolation.reference.NumericalReference` providing
        the coefficient totals ``h_k(x0)``.
    epsilon:
        Relative error budget ``ε_k`` applied to every coefficient.
    transfer_function:
        Optionally reuse an already generated
        :class:`~repro.symbolic.generation.SymbolicTransferFunction`.
    kernel:
        ``"interned"`` (default) runs the minor-memoized expansion and the
        vectorized term valuation; ``"legacy"`` reproduces the complete
        pre-kernel path — flat cofactor expansion (skipped when
        ``transfer_function`` is given) *and* scalar per-term valuation — as
        the benchmark's A/B arm.
    session:
        Optional :class:`~repro.engine.session.AnalysisSession` — the
        generated transfer function (and its determinant engine) is then
        cached under the circuit fingerprint.

    Returns
    -------
    SDGResult
    """
    if epsilon < 0.0:
        raise SimplificationError("epsilon must be non-negative")
    if max_terms is None:
        from .determinant import DEFAULT_MAX_TERMS

        max_terms = DEFAULT_MAX_TERMS
    if transfer_function is None:
        transfer_function = symbolic_network_function(
            circuit, spec, max_terms=max_terms, kernel=kernel, session=session)

    method = "scalar" if kernel == "legacy" else "vectorized"
    reports: List[SDGCoefficientReport] = []
    simplified_expressions: Dict[str, SymbolicExpression] = {}
    for kind, expression in (("numerator", transfer_function.numerator),
                             ("denominator", transfer_function.denominator)):
        kept_all = []
        for power in range(expression.max_s_power() + 1):
            if method == "scalar":
                valuation = None
                terms = expression.coefficient_terms(power)
            else:
                valuation = transfer_function.coefficient_valuation(kind, power)
                terms = valuation.terms
            if not terms:
                continue
            reference_value = reference.coefficient(kind, power)
            kept, total = select_significant_terms(
                terms, transfer_function.table, reference_value, epsilon,
                valuation=valuation, method=method)
            achieved = _coefficient_error(kept, transfer_function.table,
                                          reference_value, method=method,
                                          valuation=valuation)
            reports.append(SDGCoefficientReport(
                kind=kind,
                power=power,
                kept_terms=len(kept),
                total_terms=total,
                reference_log10=(reference_value.log10()
                                 if not reference_value.is_zero() else float("-inf")),
                achieved_error=achieved,
            ))
            kept_all.extend(kept)
        simplified_expressions[kind] = SymbolicExpression(kept_all)

    simplified = SymbolicTransferFunction(
        numerator=simplified_expressions["numerator"],
        denominator=simplified_expressions["denominator"],
        table=transfer_function.table,
        spec=transfer_function.spec,
    )
    return SDGResult(simplified=simplified, reports=reports, epsilon=epsilon)
