"""Symbolic nodal admittance matrix construction.

Mirrors :mod:`repro.nodal.admittance`, but instead of numeric stamps every
matrix entry is a :class:`~repro.symbolic.terms.SymbolicExpression` of
single-symbol terms (conductances, transconductances, ``s``-carrying
capacitances).  The same node classification (unknown / forced / ground) as
the numeric formulation is reused so the symbolic and numeric network
functions are guaranteed to describe the same system.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import SymbolicError
from ..netlist.circuit import Circuit
from ..netlist.elements import (
    Capacitor,
    Conductor,
    CurrentSource,
    GROUND,
    Resistor,
    VCCS,
    VoltageSource,
)
from ..nodal.admittance import build_nodal_formulation
from ..nodal.reduce import TransferSpec
from .symbols import build_symbol_table
from .terms import SymbolicExpression, Term

__all__ = ["SymbolicNodal", "build_symbolic_nodal"]


@dataclasses.dataclass
class SymbolicNodal:
    """Symbolic counterpart of :class:`~repro.nodal.admittance.NodalFormulation`.

    Attributes
    ----------
    unknown_nodes:
        Node names in matrix order.
    entries:
        ``{(row, col): SymbolicExpression}`` over the unknowns.
    rhs:
        ``{row: SymbolicExpression}`` excitation per unit drive (symbols times
        the forced-node voltages, or constant current-injection terms).
    table:
        Symbol table (name → :class:`~repro.symbolic.symbols.CircuitSymbol`).
    drive_kind:
        ``"voltage"`` or ``"current"``.
    output_pos, output_neg:
        Output node names (``output_neg`` may be None).
    """

    unknown_nodes: List[str]
    entries: Dict[Tuple[int, int], SymbolicExpression]
    rhs: Dict[int, SymbolicExpression]
    table: Dict[str, object]
    drive_kind: str
    output_pos: str
    output_neg: Optional[str]

    @property
    def dimension(self):
        """Number of unknowns."""
        return len(self.unknown_nodes)

    def index_of(self, node):
        """Matrix index of an unknown node."""
        try:
            return self.unknown_nodes.index(node)
        except ValueError as exc:
            raise SymbolicError(f"node {node!r} is not an unknown") from exc

    def entry(self, row, col) -> SymbolicExpression:
        """Entry expression (zero expression for structural zeros)."""
        return self.entries.get((row, col), SymbolicExpression.zero())

    def nnz(self):
        """Number of structurally non-zero entries."""
        return len(self.entries)

    def determinant_engine(self, max_terms=None):
        """A :class:`~repro.symbolic.kernel.DeterminantEngine` over this
        matrix, plus the registered excitation-column id.

        The engine's columns ``0..dimension-1`` mirror :attr:`entries` and the
        extra column carries :attr:`rhs`, so the denominator and every Cramer
        numerator expand against one shared minor memo.
        """
        from .kernel import (DEFAULT_MAX_TERMS, DeterminantEngine,
                             SymbolInterner)

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        engine = DeterminantEngine.from_entries(
            self.entries, self.dimension,
            interner=SymbolInterner(self.table.keys()),
            max_terms=max_terms)
        excitation = engine.add_column(
            {row: expression for row, expression in self.rhs.items()
             if expression.terms})
        return engine, excitation


def build_symbolic_nodal(circuit, spec) -> SymbolicNodal:
    """Build the symbolic nodal matrix for an admittance-form circuit."""
    formulation = build_nodal_formulation(circuit, spec)
    table = build_symbol_table(circuit)
    index = {node: i for i, node in enumerate(formulation.unknown_nodes)}
    forced = formulation.forced

    entries: Dict[Tuple[int, int], SymbolicExpression] = {}
    rhs: Dict[int, SymbolicExpression] = {}

    def add_entry(row_node, col_node, symbol_name, s_power, sign):
        """Route one symbolic admittance contribution."""
        if row_node == GROUND or row_node in forced:
            return
        row = index[row_node]
        term = Term(symbols=(symbol_name,), s_power=s_power, coefficient=sign)
        if col_node == GROUND:
            return
        if col_node in forced:
            voltage = forced[col_node]
            if voltage == 0.0:
                return
            # Moves to the right-hand side with the opposite sign, times the
            # forced voltage (per unit drive).
            flipped = Term(symbols=(symbol_name,), s_power=s_power,
                           coefficient=-sign * voltage)
            rhs.setdefault(row, SymbolicExpression.zero()).terms.append(flipped)
            return
        col = index[col_node]
        entries.setdefault((row, col), SymbolicExpression.zero()).terms.append(term)

    def add_admittance(node_a, node_b, symbol_name, s_power):
        add_entry(node_a, node_a, symbol_name, s_power, +1.0)
        add_entry(node_b, node_b, symbol_name, s_power, +1.0)
        add_entry(node_a, node_b, symbol_name, s_power, -1.0)
        add_entry(node_b, node_a, symbol_name, s_power, -1.0)

    for element in circuit:
        if isinstance(element, (Resistor, Conductor)):
            add_admittance(element.node_pos, element.node_neg, element.name, 0)
        elif isinstance(element, Capacitor):
            add_admittance(element.node_pos, element.node_neg, element.name, 1)
        elif isinstance(element, VCCS):
            for row_node, sign in ((element.node_pos, +1.0),
                                   (element.node_neg, -1.0)):
                add_entry(row_node, element.ctrl_pos, element.name, 0, sign)
                add_entry(row_node, element.ctrl_neg, element.name, 0, -sign)
        elif isinstance(element, CurrentSource):
            if element.value == 0.0:
                continue
            for node, sign in ((element.node_pos, -1.0), (element.node_neg, +1.0)):
                if node == GROUND or node in forced:
                    continue
                constant = Term(symbols=(), s_power=0,
                                coefficient=sign * element.value)
                rhs.setdefault(index[node],
                               SymbolicExpression.zero()).terms.append(constant)
        elif isinstance(element, VoltageSource):
            continue
        else:
            raise SymbolicError(
                f"element {element.name!r} is not admittance-form; transform "
                "the circuit before symbolic analysis"
            )

    output_pos, output_neg = spec.output_nodes()
    return SymbolicNodal(
        unknown_nodes=list(formulation.unknown_nodes),
        entries=entries,
        rhs=rhs,
        table=table,
        drive_kind=formulation.drive_kind,
        output_pos=output_pos,
        output_neg=output_neg,
    )
