"""Circuit symbols: the variables of the symbolic network function.

Every admittance-form element contributes one symbol whose value at the design
point is its admittance parameter:

* resistors / conductors → a conductance symbol (``1/R`` or ``G``),
* VCCS elements → a transconductance symbol (may be negative for
  cross-coupled devices),
* capacitors → a capacitance symbol (each occurrence carries one power of
  ``s``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import SymbolicError
from ..netlist.circuit import Circuit
from ..netlist.elements import Capacitor, Conductor, CurrentSource, Resistor, VCCS, VoltageSource

__all__ = ["CircuitSymbol", "build_symbol_table"]


@dataclasses.dataclass(frozen=True)
class CircuitSymbol:
    """A named symbolic circuit parameter and its design-point value.

    ``kind`` is ``"conductance"`` or ``"capacitance"`` — capacitance symbols
    carry one power of ``s`` each time they appear in a term.
    """

    name: str
    kind: str
    value: float

    def __post_init__(self):
        if self.kind not in ("conductance", "capacitance"):
            raise SymbolicError(f"unknown symbol kind {self.kind!r}")

    @property
    def is_capacitance(self):
        """True for capacitance symbols."""
        return self.kind == "capacitance"


def build_symbol_table(circuit) -> Dict[str, CircuitSymbol]:
    """Map element name → :class:`CircuitSymbol` for an admittance-form circuit.

    Independent sources carry no symbol (they only select the excitation).

    Raises
    ------
    SymbolicError
        For element types outside the admittance form.
    """
    table: Dict[str, CircuitSymbol] = {}
    for element in circuit:
        if isinstance(element, Resistor):
            table[element.name] = CircuitSymbol(element.name, "conductance",
                                                1.0 / element.value)
        elif isinstance(element, Conductor):
            table[element.name] = CircuitSymbol(element.name, "conductance",
                                                element.value)
        elif isinstance(element, VCCS):
            table[element.name] = CircuitSymbol(element.name, "conductance",
                                                element.gm)
        elif isinstance(element, Capacitor):
            table[element.name] = CircuitSymbol(element.name, "capacitance",
                                                element.value)
        elif isinstance(element, (VoltageSource, CurrentSource)):
            continue
        else:
            raise SymbolicError(
                f"element {element.name!r} of type {type(element).__name__} "
                "has no admittance-form symbol; transform the circuit first"
            )
    return table
