"""Simplification before generation (SBG) using the numerical reference.

SBG removes from the *circuit* those elements whose contribution to the
network function is negligible, replacing them with opens (zero admittance) —
the reduced circuit is then cheap to analyse symbolically.  The error control
compares the response of the candidate reduced circuit with the numerical
reference of the full circuit over a frequency grid, exactly the "numerical
estimate of the complete (exact) expression" the paper says SBG needs.

The driver is greedy: elements are ranked by their individual removal error
(least influential first) and removed one at a time while the accumulated
deviation from the reference stays below the error budget.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.ac import ACAnalysis
from ..analysis.sensitivity import element_sensitivities
from ..errors import (FormulationError, SimplificationError,
                      SingularMatrixError)
from ..netlist.circuit import Circuit
from ..netlist.elements import Capacitor, Conductor, Resistor, VCCS

__all__ = ["SBGResult", "simplification_before_generation"]


@dataclasses.dataclass
class SBGRemoval:
    """One accepted element removal and the deviation after it."""

    element: str
    individual_error: float
    accumulated_error: float


@dataclasses.dataclass
class SBGResult:
    """Outcome of the SBG circuit reduction."""

    original: Circuit
    reduced: Circuit
    removals: List[SBGRemoval]
    rejected: List[str]
    final_error: float
    epsilon: float
    frequencies: np.ndarray

    @property
    def removed_names(self) -> List[str]:
        """Names of every removed element."""
        return [removal.element for removal in self.removals]

    def element_reduction(self) -> float:
        """Fraction of candidate elements removed."""
        total = len(self.removals) + len(self.rejected)
        original_count = len(self.original)
        if original_count == 0:
            return 0.0
        return len(self.removals) / original_count

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"SBG @ ε={self.epsilon:g}: removed {len(self.removals)} of "
            f"{len(self.original)} elements (final deviation "
            f"{self.final_error:.3g})"
        )

    def generate_symbolic(self, spec, max_terms=None, kernel="interned",
                          session=None):
        """Symbolic network function of the *reduced* circuit.

        This is the second half of the paper's SBG workflow: reduce first,
        then generate — the reduced circuit's determinant fits term budgets
        the full circuit would blow.  Runs on the interned minor-memoized
        kernel by default; pass ``session`` to cache the result (and its
        determinant engine) under the reduced circuit's fingerprint.
        """
        from .determinant import DEFAULT_MAX_TERMS
        from .generation import symbolic_network_function

        if max_terms is None:
            max_terms = DEFAULT_MAX_TERMS
        return symbolic_network_function(self.reduced, spec,
                                         max_terms=max_terms, kernel=kernel,
                                         session=session)


def _reference_response(reference, frequencies):
    return reference.frequency_response(frequencies)


def _relative_deviation(reference_response, candidate_response) -> float:
    scale = np.maximum(np.abs(reference_response), np.finfo(float).tiny)
    return float(np.max(np.abs(candidate_response - reference_response) / scale))


def simplification_before_generation(circuit, spec, reference, epsilon=0.05,
                                     frequencies=None, candidates=None,
                                     session=None) -> SBGResult:
    """Reduce ``circuit`` against its numerical reference.

    Parameters
    ----------
    circuit, spec:
        The full circuit and the transfer specification used for the reference.
    reference:
        :class:`~repro.interpolation.reference.NumericalReference` of the full
        circuit.
    epsilon:
        Maximum allowed relative deviation of the reduced circuit's response
        from the reference over the frequency grid.
    frequencies:
        Frequency grid in hertz (default: 30 points per decade from 1 Hz to
        1 GHz).
    candidates:
        Element names eligible for removal (default: all passive admittances
        and VCCS elements that are not input sources).
    session:
        Optional :class:`~repro.engine.session.AnalysisSession`.  The
        element screening and the full-circuit baseline then reuse whatever
        an earlier stage (Bode, sensitivity) already built — in a chained
        workload the expensive baseline factorization happens exactly once.
        Candidate (reduced) circuits are evaluated outside the session: each
        is visited once, so caching them would only grow memory.

    Returns
    -------
    SBGResult
    """
    if epsilon <= 0.0:
        raise SimplificationError("epsilon must be positive")
    if frequencies is None:
        frequencies = np.logspace(0, 9, 46)
    frequencies = np.asarray(frequencies, dtype=float)
    output_pos, output_neg = spec.output_nodes()
    output = output_pos if output_neg is None else (output_pos, output_neg)

    reference_response = _reference_response(reference, frequencies)

    influences = element_sensitivities(circuit, output, frequencies,
                                       elements=candidates, session=session)
    current = circuit.copy(f"{circuit.name}-sbg")
    removals: List[SBGRemoval] = []
    rejected: List[str] = []
    final_error = _relative_deviation(
        reference_response,
        ACAnalysis(current, output,
                   session=session).frequency_response(frequencies),
    )

    for influence in influences:
        if influence.removal_error == math.inf:
            rejected.append(influence.name)
            continue
        candidate = current.with_element_removed(influence.name)
        try:
            candidate_response = ACAnalysis(candidate, output).frequency_response(
                frequencies)
        except (FormulationError, SingularMatrixError):
            # Only "this reduced circuit cannot be solved" disqualifies the
            # removal; anything else (bad element names, plain bugs) must
            # propagate instead of silently shrinking the search space.
            rejected.append(influence.name)
            continue
        deviation = _relative_deviation(reference_response, candidate_response)
        if deviation <= epsilon:
            current = candidate
            final_error = deviation
            removals.append(SBGRemoval(
                element=influence.name,
                individual_error=influence.removal_error,
                accumulated_error=deviation,
            ))
        else:
            rejected.append(influence.name)

    return SBGResult(
        original=circuit,
        reduced=current,
        removals=removals,
        rejected=rejected,
        final_error=final_error,
        epsilon=epsilon,
        frequencies=frequencies,
    )
