"""Compile symbolic transfer functions into servable coefficient-tensor models.

The logical endpoint of the interpolation/SDG pipeline: the paper's compact
symbolic network functions exist so that downstream evaluation is *cheap*,
yet the term-list consumers still walk every interned term per evaluation
and the sweep engines pay a matrix solve per (sample, frequency) point.
:func:`compile_transfer_model` lowers a
:class:`~repro.symbolic.generation.SymbolicTransferFunction` once into a
:class:`CompiledTransferModel` that serves whole ``(M samples × F
frequencies)`` grids as pure numpy broadcasts — no term walks, no solves.

The lowering is a **partial evaluation** against a declared *free-symbol*
set (typically the tolerance axes of a
:class:`~repro.montecarlo.space.ParameterSpace`):

* terms are grouped by ``(s power, multiplicity pattern over the free
  symbols)`` — the sparse term × symbol-multiplicity incidence program;
* each group's *bound* symbols and integer coefficients fold into one
  ``(log10 magnitude, sign)`` constant at compile time, in the same
  log-domain peak-extracted accumulation discipline as
  :class:`~repro.symbolic.kernel.TermValuation` (the huge dynamic ranges
  that forced :class:`~repro.xfloat.XFloat` never overflow);
* at serve time the free values enter through one ``(M, S) @ (S, G)``
  log-incidence product, fold per power of ``s`` into complex polynomial
  coefficients, and the grid is evaluated by a vectorized Horner recursion
  over the unit circle with per-point decimal peaks factored out.

For the µA741 behavioral macro (864 + 102 864 terms) a twelve-axis free set
collapses the program to a few thousand groups, which is what buys the
matrix-solve-free Monte Carlo path its order-of-magnitude headroom.

The module also hosts :func:`log_polynomial_grid`, the shared
coefficient-grid kernel behind
:meth:`~repro.interpolation.polynomial.Polynomial.evaluate_many` — the
exact batched log-magnitude arithmetic of the interpolation layer, compiled
once per polynomial instead of being re-broadcast per call.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Tuple

import numpy as np

from ..errors import SingularEvaluationError, SymbolicError

__all__ = [
    "CompiledPolynomial",
    "CompiledTransferModel",
    "compile_polynomial",
    "compile_transfer_model",
    "log_polynomial_grid",
]

#: Decimal decades below the per-point peak beyond which a term cannot
#: affect a double-precision sum (the discipline shared with
#: :meth:`~repro.interpolation.polynomial.Polynomial.evaluate` and
#: :meth:`~repro.interpolation.rational.RationalFunction.evaluate_many`).
_DROP_DECADES = 300.0


# --------------------------------------------------------------------------- #
# the shared coefficient-grid kernel (interpolation-layer consumers)
# --------------------------------------------------------------------------- #


def log_polynomial_grid(powers, log_coefficients, phases, s):
    """Batched log-domain polynomial evaluation over nonzero grid points.

    Exactly the arithmetic of the scalar
    :meth:`~repro.interpolation.polynomial.Polynomial.evaluate` loop,
    vectorized: per-term ``log10`` magnitudes and phases form a
    ``(terms, K)`` matrix, the common decimal exponent is factored out per
    point, and terms more than 300 decades below the peak are dropped.

    Parameters
    ----------
    powers, log_coefficients, phases:
        The compiled nonzero-coefficient arrays (ascending powers): the
        power as a float, ``log10`` of the coefficient magnitude, and the
        coefficient phase (0 or π).
    s:
        1-D array of *nonzero* complex points.

    Returns
    -------
    (mantissas, exponents)
        Complex mantissas and integer decimal exponents per point; the
        value is ``mantissa * 10**exponent``.
    """
    log_s = np.log10(np.abs(s))
    arg_s = np.angle(s)
    log_magnitude = (log_coefficients[:, None]
                     + powers[:, None] * log_s[None, :])
    phase = (phases[:, None]
             + powers[:, None] * arg_s[None, :])
    peak = log_magnitude.max(axis=0)
    exponent = np.floor(peak).astype(np.int64)
    shift = log_magnitude - exponent[None, :]
    # Terms more than 300 decades below the peak cannot affect the
    # double-precision sum (mirrors the scalar path).
    terms = np.where(shift < -_DROP_DECADES, 0.0, 10.0**shift)
    mantissas = (terms * np.exp(1j * phase)).sum(axis=0)
    return mantissas, exponent


@dataclasses.dataclass(frozen=True)
class CompiledPolynomial:
    """The nonzero-coefficient arrays of one extended-range polynomial.

    Built once per :class:`~repro.interpolation.polynomial.Polynomial` (its
    coefficients are immutable in practice — every algebraic operation
    returns a new instance) and served through :func:`log_polynomial_grid`
    on every ``evaluate_many`` call.
    """

    powers: np.ndarray
    log_coefficients: np.ndarray
    phases: np.ndarray

    def grid(self, s):
        """``(mantissas, exponents)`` over nonzero complex points ``s``."""
        return log_polynomial_grid(self.powers, self.log_coefficients,
                                   self.phases, s)


def compile_polynomial(coefficients) -> CompiledPolynomial:
    """Compile ascending-power extended-range coefficients for the grid kernel.

    ``coefficients`` is any sequence of :class:`~repro.xfloat.XFloat`-like
    values (``is_zero`` / ``log10`` / ``sign``); zero coefficients are
    skipped, matching the scalar evaluation loop.
    """
    powers = np.array([power for power, coefficient in enumerate(coefficients)
                       if not coefficient.is_zero()], dtype=float)
    log_coefficients = np.array([
        coefficient.log10() for coefficient in coefficients
        if not coefficient.is_zero()
    ])
    phases = np.array([
        0.0 if coefficient.sign() > 0 else math.pi
        for coefficient in coefficients
        if not coefficient.is_zero()
    ])
    return CompiledPolynomial(powers, log_coefficients, phases)


# --------------------------------------------------------------------------- #
# the transfer-model compiler
# --------------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class _CoefficientProgram:
    """One side's (numerator or denominator) folded incidence program.

    Groups are stored power-contiguously: ``offsets[k] : offsets[k + 1]``
    slices the groups of ``s**k``.  ``incidence[g, j]`` is the multiplicity
    of free symbol ``j`` in group ``g``; ``const_logs`` / ``const_signs``
    carry the compile-time fold of every bound factor and coefficient.
    """

    max_power: int
    offsets: np.ndarray        # (max_power + 2,) group-slice boundaries
    const_logs: np.ndarray     # (G,) log10 |folded group constant|
    const_signs: np.ndarray    # (G,) sign of the folded group constant
    incidence: np.ndarray      # (G, S) free-symbol multiplicities
    odd_incidence: np.ndarray  # (G, S) multiplicity parity (sign tracking)
    presence: np.ndarray       # (G, S) 0/1 occupancy (zero-value kill)
    num_terms: int             # source terms folded into this program

    @property
    def num_groups(self) -> int:
        """Number of folded (power, multiplicity-pattern) groups."""
        return self.const_logs.shape[0]


def _compile_expression(expression, table, slot) -> _CoefficientProgram:
    """Fold one sum-of-products expression against the free-symbol slots."""
    num_slots = len(slot)
    group_ids: Dict[Tuple[int, bytes], int] = {}
    patterns: List[bytes] = []
    group_powers: List[int] = []
    term_groups: List[int] = []
    term_logs: List[float] = []
    term_signs: List[float] = []

    bound_logs: Dict[str, float] = {}
    bound_signs: Dict[str, float] = {}

    def bound_log(name):
        log = bound_logs.get(name)
        if log is None:
            symbol = table.get(name)
            if symbol is None:
                raise SymbolicError(f"symbol {name!r} missing from the table")
            value = symbol.value
            if value == 0.0:
                log = -math.inf
                bound_signs[name] = 0.0
            else:
                log = math.log10(abs(value))
                bound_signs[name] = 1.0 if value > 0.0 else -1.0
            bound_logs[name] = log
        return log

    for term in expression.terms:
        coefficient = term.coefficient
        if coefficient == 0.0:
            continue
        log = math.log10(abs(coefficient))
        sign = 1.0 if coefficient > 0.0 else -1.0
        counts = [0] * num_slots
        dead = False
        for name in term.symbols:
            index = slot.get(name)
            if index is not None:
                counts[index] += 1
                continue
            log += bound_log(name)
            factor_sign = bound_signs[name]
            if factor_sign == 0.0:
                dead = True     # a bound symbol valued 0 kills the term
                break
            sign *= factor_sign
        if dead:
            continue
        key = (term.s_power, bytes(counts))
        group = group_ids.get(key)
        if group is None:
            group = group_ids[key] = len(patterns)
            patterns.append(key[1])
            group_powers.append(term.s_power)
        term_groups.append(group)
        term_logs.append(log)
        term_signs.append(sign)

    num_terms = len(term_logs)
    if num_terms == 0:
        empty = np.empty((0, num_slots))
        return _CoefficientProgram(
            max_power=0, offsets=np.zeros(2, dtype=np.int64),
            const_logs=np.empty(0), const_signs=np.empty(0),
            incidence=empty, odd_incidence=empty.copy(),
            presence=empty.copy(), num_terms=0)

    # Fold each group's terms into one (log10, sign) constant: extract the
    # group peak, sum signed peak-normalized mantissas (the TermValuation
    # accumulation discipline), re-attach the peak.
    gids = np.asarray(term_groups, dtype=np.int64)
    logs = np.asarray(term_logs)
    signs = np.asarray(term_signs)
    order = np.argsort(gids, kind="stable")
    gids, logs, signs = gids[order], logs[order], signs[order]
    starts = np.flatnonzero(np.diff(gids, prepend=-1))
    peaks = np.maximum.reduceat(logs, starts)
    spread = logs - np.repeat(peaks, np.diff(starts, append=len(gids)))
    mantissas = np.add.reduceat(
        signs * np.where(spread < -_DROP_DECADES, 0.0, 10.0**spread), starts)

    kept = mantissas != 0.0          # exact in-group cancellation drops out
    folded_logs = np.log10(np.abs(mantissas[kept])) + peaks[kept]
    folded_signs = np.sign(mantissas[kept])
    kept_groups = gids[starts][kept]

    # Power-contiguous layout: sort kept groups by s power, record offsets.
    powers = np.asarray(group_powers, dtype=np.int64)[kept_groups]
    layout = np.argsort(powers, kind="stable")
    powers = powers[layout]
    max_power = int(powers[-1]) if powers.size else 0
    offsets = np.searchsorted(powers, np.arange(max_power + 2))

    incidence = np.frombuffer(
        b"".join(patterns[group] for group in kept_groups[layout]),
        dtype=np.uint8).reshape(-1, num_slots).astype(float) \
        if num_slots else np.empty((kept_groups.size, 0))
    return _CoefficientProgram(
        max_power=max_power,
        offsets=offsets.astype(np.int64),
        const_logs=folded_logs[layout],
        const_signs=folded_signs[layout],
        incidence=incidence,
        odd_incidence=np.mod(incidence, 2.0),
        presence=(incidence > 0.0).astype(float),
        num_terms=num_terms,
    )


_LN10 = math.log(10.0)


def _pow10_dropped(spread):
    """``10**spread`` with sub-peak terms dropped, denormal-free.

    ``spread`` is relative to a local peak (all entries ≤ 0, possibly
    ``-inf``).  Entries more than 300 decades down are flushed to exact
    zero *before* the exponential: they cannot affect a double-precision
    sum, and routing them through ``np.exp`` would produce denormals and
    ``-inf`` specials that knock the ufunc off its vectorized path (a
    measured ~15x slowdown on the serve fold).
    """
    kept = spread > -_DROP_DECADES
    values = np.exp(_LN10 * np.where(kept, spread, 0.0))
    values *= kept
    return values


#: Per-sample decade budgets for the scaled direct-evaluation fast path.
#: With the per-sample midpoint normalization, a polynomial whose grid peak
#: spans at most 2 × 140 decades keeps every Horner intermediate within
#: ``1e±280`` and every mantissa ratio representable; coefficients within
#: 300 decades of the normalizer never flush to zero.
_FAST_RANGE = 140.0
_FAST_COEFF = 300.0


def _coefficient_tensors(program, safe_logs, negative, zeroed):
    """Fold free values into per-power ``(log10, sign)`` coefficient tensors.

    The serve-side hot fold: one ``(M, S) @ (S, G)`` log-incidence product,
    one exponential over the group matrix (peak-extracted per (sample,
    power) so nothing overflows), and segmented sums back down to ``(M,
    max_power + 1)``.  Returns ``(clogs, csigns)``; a zero coefficient is
    ``(-inf, 0)``.
    """
    num_samples = safe_logs.shape[0]
    width = program.max_power + 1
    if program.num_groups == 0:
        return (np.full((num_samples, width), -np.inf),
                np.zeros((num_samples, width)))

    term_logs = safe_logs @ program.incidence.T
    term_logs += program.const_logs
    if negative.any():
        parity = np.rint(
            negative @ program.odd_incidence.T).astype(np.int64) & 1
        term_signs = np.where(parity == 1, -program.const_signs[None, :],
                              program.const_signs[None, :])
    else:
        term_signs = program.const_signs
    any_dead = bool(zeroed.any())
    if any_dead:
        dead = (zeroed @ program.presence.T) > 0.5
        term_logs[dead] = -np.inf

    # Segment boundaries per power; empty powers are dropped from the
    # reduceat index list (reduceat misreads zero-length segments) and
    # their columns stay identically zero / -inf.
    offsets = program.offsets
    counts = np.diff(offsets)
    nonempty = counts > 0
    starts = offsets[:-1][nonempty]

    row_peak = term_logs.max(axis=1)
    if not any_dead and \
            float((row_peak - term_logs.min(axis=1)).max()) <= 280.0:
        # Hot path: every group in a sample fits within the normal double
        # range under one per-sample normalizer, so the whole fold runs as
        # four fused in-place passes (the per-coefficient sums keep full
        # relative precision regardless of the shared scale).
        np.subtract(term_logs, row_peak[:, None], out=term_logs)
        np.multiply(term_logs, _LN10, out=term_logs)
        np.exp(term_logs, out=term_logs)
        np.multiply(term_logs, term_signs, out=term_logs)
        peak_safe = row_peak[:, None]
    else:
        # General path: per-(sample, power) peak extraction handles dead
        # groups and arbitrary dynamic range.
        peaks = np.full((num_samples, width), -np.inf)
        peaks[:, nonempty] = np.maximum.reduceat(term_logs, starts, axis=1)
        peak_safe = np.where(peaks > -np.inf, peaks, 0.0)
        term_logs -= np.repeat(peak_safe, counts, axis=1)
        term_logs = term_signs * _pow10_dropped(term_logs)

    mantissa = np.zeros((num_samples, width))
    mantissa[:, nonempty] = np.add.reduceat(term_logs, starts, axis=1)
    with np.errstate(divide="ignore"):
        clogs = np.log10(np.abs(mantissa)) + peak_safe
    return clogs, np.sign(mantissa)


def _direct_horner(scaled_coefficients, s):
    """Plain complex Horner of per-sample scaled coefficients over ``s``."""
    num_samples, width = scaled_coefficients.shape
    accumulator = np.empty((num_samples, s.shape[0]), dtype=complex)
    accumulator[:] = scaled_coefficients[:, width - 1][:, None]
    for power in range(width - 2, -1, -1):
        accumulator *= s[None, :]
        accumulator += scaled_coefficients[:, power][:, None]
    return accumulator


def _log_horner_grid(clogs, csigns, log_abs_s, unit):
    """Exact log-domain Horner over the grid (the fallback arm).

    ``Σ_k csign_k 10**clog_k s**k`` is evaluated as ``10**peak · Σ_k
    scaled_k z**k`` with ``z`` on the unit circle and the per-(sample,
    point) decimal peak factored out, so no intermediate ever overflows
    regardless of coefficient dynamic range.

    Returns ``(mantissas, peaks)`` of shape ``(M, F)``; an identically-zero
    side yields mantissa 0 with peak ``-inf``.
    """
    num_samples, width = clogs.shape
    powers = np.arange(width, dtype=float)
    logs = clogs[:, :, None] + powers[None, :, None] * log_abs_s[None, None, :]
    peak = logs.max(axis=1)                           # (M, F)
    alive = peak > -np.inf
    spread = logs - np.where(alive, peak, 0.0)[:, None, :]
    scaled = csigns[:, :, None] * _pow10_dropped(spread)
    accumulator = scaled[:, width - 1, :].astype(complex)
    for power in range(width - 2, -1, -1):
        accumulator = accumulator * unit[None, :] + scaled[:, power, :]
    return accumulator, np.where(alive, peak, -np.inf)


def _grid_side(clogs, csigns, s, log_abs_s, unit):
    """One side's ``(mantissas, peaks)`` over the nonzero-``s`` grid.

    Routes each sample through the scaled direct path when its grid peak —
    which is monotone in ``log|s|`` because every slope ``k`` is
    non-negative, so the endpoints bound it — and coefficient spread fit
    the decade budgets; everything else takes the per-point log-domain
    fallback.  Both arms return the same mantissa × ``10**peak``
    representation (the direct arm's peak is its per-sample normalizer, a
    constant row).
    """
    num_samples, width = clogs.shape
    ls_min = float(log_abs_s.min())
    ls_max = float(log_abs_s.max())
    slopes = np.arange(width, dtype=float)
    peak_low = (clogs + slopes[None, :] * ls_min).max(axis=1)
    peak_high = (clogs + slopes[None, :] * ls_max).max(axis=1)
    normalizer = 0.5 * (peak_low + peak_high)
    live = clogs > -np.inf
    least_live = np.where(live, clogs, np.inf).min(axis=1)
    # Horner intermediates divide the tail by up to s**width, which only
    # grows the exponent when |s| < 1.
    margin = width * max(0.0, -ls_min)
    finite = np.isfinite(normalizer)
    # An identically-zero side has -inf peaks; the guards' inf − inf is
    # masked out by `finite` but must not warn.
    with np.errstate(invalid="ignore"):
        fast = (finite
                & (peak_high - normalizer + margin <= _FAST_RANGE)
                & (normalizer - peak_low <= _FAST_RANGE)
                & (normalizer - least_live <= _FAST_COEFF))

    if fast.all():
        # Constant-per-row peaks: return them as an (M, 1) column so the
        # N/D combine collapses to a per-sample scale factor.
        scaled = csigns * np.exp(_LN10 * (clogs - normalizer[:, None]))
        return _direct_horner(scaled, s), normalizer[:, None]

    mantissas = np.zeros((num_samples, s.shape[0]), dtype=complex)
    peaks = np.full((num_samples, s.shape[0]), -np.inf)
    if fast.any():
        scaled = (csigns[fast]
                  * np.exp(_LN10 * (clogs[fast] - normalizer[fast][:, None])))
        mantissas[fast] = _direct_horner(scaled, s)
        peaks[fast] = normalizer[fast][:, None]
    slow = ~fast & finite
    if slow.any():
        mantissas[slow], peaks[slow] = _log_horner_grid(
            clogs[slow], csigns[slow], log_abs_s, unit)
    return mantissas, peaks


def _combine_sides(n_mantissas, n_peaks, d_mantissas, d_peaks, describe):
    """``N/D`` with the exponent-cancelling rule of RationalFunction.

    The peak arrays may be ``(M, F)`` or per-sample ``(M, 1)`` columns (the
    all-fast-path case); everything broadcasts, so the decimal shift then
    costs one scalar per sample instead of one per grid point.
    """
    zero_d = d_mantissas == 0
    if zero_d.any():
        raise SingularEvaluationError(
            f"compiled denominator evaluates to zero at {describe(zero_d)}")
    ratio = n_mantissas / d_mantissas
    shift = n_peaks - d_peaks
    with np.errstate(invalid="ignore"):
        values = ratio * 10.0 ** np.clip(shift, -_DROP_DECADES, _DROP_DECADES)
    overflow = shift > _DROP_DECADES
    if overflow.any():
        values = np.where(overflow, ratio * math.inf, values)
    vanished = shift < -_DROP_DECADES
    if vanished.any():
        values = np.where(vanished, 0.0 + 0.0j, values)
    zero_n = n_mantissas == 0
    if zero_n.any():
        values[zero_n] = 0.0 + 0.0j
    return values


@dataclasses.dataclass(frozen=True)
class CompiledTransferModel:
    """A symbolic transfer function lowered to coefficient-tensor form.

    Serves ``H(s; x)`` over whole ``(M samples × F frequencies)`` grids
    with :meth:`evaluate` — no per-term walks, no matrix solves.  Build one
    with :func:`compile_transfer_model` or
    :meth:`~repro.symbolic.generation.SymbolicTransferFunction.compile`
    (session-cached via
    :meth:`~repro.engine.session.AnalysisSession.compiled_transfer`).
    """

    free_names: Tuple[str, ...]
    nominal_values: np.ndarray
    numerator: _CoefficientProgram
    denominator: _CoefficientProgram

    @property
    def num_free(self) -> int:
        """Number of free symbol slots."""
        return len(self.free_names)

    def term_count(self) -> Tuple[int, int]:
        """Source ``(numerator, denominator)`` terms folded at compile time."""
        return self.numerator.num_terms, self.denominator.num_terms

    def group_count(self) -> Tuple[int, int]:
        """Folded ``(numerator, denominator)`` incidence-program groups."""
        return self.numerator.num_groups, self.denominator.num_groups

    def slot_index(self, name) -> int:
        """Column of free symbol ``name`` in a value matrix."""
        try:
            return self.free_names.index(str(name))
        except ValueError:
            raise SymbolicError(
                f"symbol {name!r} is not a free slot of this compiled model "
                f"(free symbols: {list(self.free_names)})") from None

    def _values_matrix(self, values) -> Tuple[np.ndarray, bool]:
        values = np.asarray(values, dtype=float)
        single = values.ndim == 1
        if single:
            values = values[None, :]
        if values.ndim != 2 or values.shape[1] != self.num_free:
            raise SymbolicError(
                f"values must be (M, {self.num_free}) over free symbols "
                f"{list(self.free_names)}, got shape {values.shape}")
        return values, single

    def coefficient_tensors(self, values, kind="denominator"):
        """Per-power ``(log10 magnitude, sign)`` tensors of one side.

        The ``(M, max_power + 1)`` fold the grid evaluation runs on —
        exposed for tests and for consumers that want raw coefficients
        (e.g. DC gain without a grid).
        """
        values, single = self._values_matrix(values)
        program = (self.numerator if kind.startswith("n")
                   else self.denominator)
        clogs, csigns = _coefficient_tensors(program, *_fold_inputs(values))
        if single:
            return clogs[0], csigns[0]
        return clogs, csigns

    def evaluate(self, values, s_grid) -> np.ndarray:
        """``H(s; x)`` over an ``(M samples × F points)`` grid.

        Parameters
        ----------
        values:
            ``(M, S)`` free-symbol values in :attr:`free_names` order (or a
            single ``(S,)`` vector).  Zero values kill every term the
            symbol appears in; negative values (cross-coupled
            transconductances) are tracked through multiplicity parity.
        s_grid:
            Complex frequency points (any 1-D array-like, or a scalar).

        Returns
        -------
        numpy.ndarray
            ``(M, F)`` complex responses (axes with singleton inputs are
            squeezed: ``(F,)`` for vector values, ``(M,)`` for scalar
            ``s``, a scalar for both).

        Raises
        ------
        SingularEvaluationError
            When the denominator evaluates to zero at some (sample, point).
        """
        values, single = self._values_matrix(values)
        s = np.atleast_1d(np.asarray(s_grid, dtype=complex))
        scalar_s = np.ndim(s_grid) == 0
        fold = _fold_inputs(values)
        n_clogs, n_csigns = _coefficient_tensors(self.numerator, *fold)
        d_clogs, d_csigns = _coefficient_tensors(self.denominator, *fold)

        responses = np.zeros((values.shape[0], s.shape[0]), dtype=complex)
        live = s != 0
        if live.any():
            s_live = s[live]
            log_abs_s = np.log10(np.abs(s_live))
            unit = np.exp(1j * np.angle(s_live))
            n_mant, n_peak = _grid_side(n_clogs, n_csigns, s_live,
                                        log_abs_s, unit)
            d_mant, d_peak = _grid_side(d_clogs, d_csigns, s_live,
                                        log_abs_s, unit)

            def describe(mask):
                sample, point = np.unravel_index(int(np.argmax(mask)),
                                                 mask.shape)
                return (f"s={complex(s_live[point])!r} "
                        f"(sample {int(sample)})")

            responses[:, live] = _combine_sides(n_mant, n_peak, d_mant,
                                                d_peak, describe)
        if (~live).any():
            # DC branch: the s**0 coefficient tensors combine directly.
            d_zero = d_csigns[:, 0] == 0.0
            if d_zero.any():
                raise SingularEvaluationError(
                    "compiled denominator evaluates to zero at s=0 "
                    f"(sample {int(np.argmax(d_zero))})")
            dc = _combine_sides(
                n_csigns[:, :1].astype(complex), n_clogs[:, :1],
                d_csigns[:, :1].astype(complex), d_clogs[:, :1],
                lambda mask: "s=0")
            responses[:, ~live] = dc
        if single:
            responses = responses[0]
        if scalar_s:
            responses = responses[..., 0]
        return responses

    def frequency_response(self, values, frequencies) -> np.ndarray:
        """:meth:`evaluate` at ``s = 2jπf`` over frequencies in hertz."""
        frequencies = np.asarray(frequencies, dtype=float)
        return self.evaluate(values, 2j * math.pi * frequencies)

    def evaluate_nominal(self, s_grid) -> np.ndarray:
        """:meth:`evaluate` at the design point (table values)."""
        return self.evaluate(self.nominal_values, s_grid)

    def __repr__(self):
        n_terms, d_terms = self.term_count()
        n_groups, d_groups = self.group_count()
        return (f"CompiledTransferModel(free={self.num_free}, "
                f"terms={n_terms}+{d_terms}, groups={n_groups}+{d_groups})")


def _fold_inputs(values):
    """``(safe_logs, negative, zeroed)`` float matrices of a value matrix."""
    magnitude = np.abs(values)
    zero = magnitude == 0.0
    safe_logs = np.log10(np.where(zero, 1.0, magnitude))
    return safe_logs, (values < 0.0).astype(float), zero.astype(float)


def compile_transfer_model(transfer, free_symbols=None) -> CompiledTransferModel:
    """Lower a symbolic transfer function to a :class:`CompiledTransferModel`.

    Parameters
    ----------
    transfer:
        A :class:`~repro.symbolic.generation.SymbolicTransferFunction`
        (exact or SAG/SDG-simplified).
    free_symbols:
        Names of the symbols that remain runtime inputs, in slot order.
        Every other symbol is *bound* and folds into the group constants at
        its design-point table value.  Default: every table symbol stays
        free (maximum generality, minimum collapse) — pass the tolerance
        axes actually varied to get the compile-time folding that makes
        serving cheap.

    Raises
    ------
    SymbolicError
        For unknown or duplicated free symbols, or a transfer function
        whose denominator has no terms.
    """
    table = transfer.table
    if free_symbols is None:
        free_names = tuple(sorted(table))
    else:
        free_names = tuple(str(name) for name in free_symbols)
        if len(set(free_names)) != len(free_names):
            raise SymbolicError(
                f"duplicate free symbols in {list(free_names)}")
        for name in free_names:
            if name not in table:
                raise SymbolicError(
                    f"free symbol {name!r} missing from the transfer "
                    "function's symbol table")
    if not transfer.denominator.terms:
        raise SymbolicError(
            "cannot compile a transfer function with an empty denominator")
    slot = {name: index for index, name in enumerate(free_names)}
    nominal = np.array([table[name].value for name in free_names])
    return CompiledTransferModel(
        free_names=free_names,
        nominal_values=nominal,
        numerator=_compile_expression(transfer.numerator, table, slot),
        denominator=_compile_expression(transfer.denominator, table, slot),
    )
