"""Sparse symbolic determinant expansion.

The determinant of the symbolic nodal matrix is expanded recursively along the
structurally sparsest column of the remaining submatrix (a standard trick that
keeps the intermediate term count close to the final one for circuit
matrices).  The result is a flat sum-of-products
:class:`~repro.symbolic.terms.SymbolicExpression`.

Two kernels implement the expansion:

* ``kernel="interned"`` (the default) runs on
  :class:`~repro.symbolic.kernel.DeterminantEngine`: monomials are hash-consed
  integer tuples, every structural minor ``expand(active_rows, active_cols)``
  is memoized and combined once, and the ``max_terms`` budget is charged on
  *distinct* work — a minor reused from the memo costs nothing, so circuits
  whose cofactor tree repeats minors fit budgets their flat expansion would
  blow.
* ``kernel="legacy"`` is the original per-cofactor re-expansion, kept for A/B
  benchmarking (and for ``combine=False``, whose uncombined flat output only
  the legacy path produces).

The expansion is exact and therefore exponential in the worst case; the
``max_terms`` guard raises :class:`~repro.errors.SymbolicError` before memory
is exhausted, directing users of larger circuits towards SBG reduction first
(which is precisely the paper's motivation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SymbolicError
from .kernel import DEFAULT_MAX_TERMS
from .terms import SymbolicExpression, Term

__all__ = ["symbolic_determinant", "DEFAULT_MAX_TERMS"]

#: The default ``max_terms`` (one source: :data:`repro.symbolic.kernel.DEFAULT_MAX_TERMS`)
#: is charged on distinct (memoized) work by the interned kernel and on flat
#: expanded terms by the legacy kernel.


def symbolic_determinant(entries, size, max_terms=DEFAULT_MAX_TERMS,
                         combine=True, kernel="interned") -> SymbolicExpression:
    """Determinant of a ``size``×``size`` symbolic matrix.

    Parameters
    ----------
    entries:
        ``{(row, col): SymbolicExpression}`` of the structurally non-zero
        entries.
    size:
        Matrix dimension.
    max_terms:
        Upper bound on the number of terms produced (raises above it).  With
        the interned kernel the bound applies to *distinct* terms retained
        across memoized minors; the overflow error reports both the distinct
        and the expanded counts.
    combine:
        Combine like terms in the final expression (recommended — determinant
        terms of nodal matrices frequently cancel pairwise).  The interned
        kernel combines inherently; ``combine=False`` therefore always runs
        the legacy expansion.
    kernel:
        ``"interned"`` (minor-memoized engine, default) or ``"legacy"``.
    """
    if kernel not in ("interned", "legacy"):
        raise SymbolicError(f"unknown symbolic kernel {kernel!r}")
    if size == 0:
        return SymbolicExpression.one()
    if kernel == "interned" and combine:
        from .kernel import DeterminantEngine

        engine = DeterminantEngine.from_entries(entries, size,
                                                max_terms=max_terms)
        indices = tuple(range(size))
        return engine.to_expression(engine.determinant_terms(indices, indices))
    expression = SymbolicExpression(
        _legacy_expand_determinant(entries, size, max_terms))
    if combine:
        expression = expression.combined()
    return expression


def _legacy_expand_determinant(entries, size, max_terms) -> List[Term]:
    """The pre-kernel flat cofactor expansion (every subtree re-expanded)."""
    # Row-wise structural view for fast column counting.
    rows_of_column: List[List[int]] = [[] for __ in range(size)]
    for (row, col), expression in entries.items():
        if expression.terms:
            rows_of_column[col].append(row)

    term_budget = [max_terms]

    def expand(active_rows: Tuple[int, ...], active_cols: Tuple[int, ...]) -> List[Term]:
        if not active_rows:
            return [Term(symbols=(), s_power=0, coefficient=1.0)]
        # Pick the active column with the fewest entries in the active rows.
        best_col = None
        best_rows: List[int] = []
        for col_position, col in enumerate(active_cols):
            rows_here = [row for row in rows_of_column[col] if row in active_rows]
            if best_col is None or len(rows_here) < len(best_rows):
                best_col = col
                best_rows = rows_here
                if len(rows_here) <= 1:
                    break
        if best_col is None or not best_rows:
            return []  # structurally singular in this branch
        col_position = active_cols.index(best_col)
        remaining_cols = tuple(c for c in active_cols if c != best_col)

        result: List[Term] = []
        for row in best_rows:
            row_position = active_rows.index(row)
            sign = -1.0 if (row_position + col_position) % 2 else 1.0
            entry = entries[(row, best_col)]
            remaining_rows = tuple(r for r in active_rows if r != row)
            minor_terms = expand(remaining_rows, remaining_cols)
            if not minor_terms:
                continue
            for entry_term in entry.terms:
                scaled_entry = Term(entry_term.symbols, entry_term.s_power,
                                    entry_term.coefficient * sign)
                for minor_term in minor_terms:
                    result.append(minor_term.multiply(scaled_entry))
                    if len(result) > term_budget[0]:
                        raise SymbolicError(
                            "symbolic determinant exceeded the term budget "
                            f"({max_terms} expanded terms, legacy kernel); "
                            "reduce the circuit (SBG) first"
                        )
        return result

    return expand(tuple(range(size)), tuple(range(size)))
