"""Sum-of-products symbolic expressions.

A :class:`Term` is a signed product of circuit symbols times a power of ``s``
(the power always equals the number of capacitance symbols in the product, but
it is stored explicitly so that expressions remain meaningful after symbol
substitution).  A :class:`SymbolicExpression` is a list of terms — the
canonical sum-of-products form used by approximation-based symbolic analysis.

Term values at the design point are computed in log space and returned as
:class:`~repro.xfloat.XFloat`, because products of dozens of admittances
underflow IEEE doubles long before they stop being meaningful.
"""

from __future__ import annotations

import dataclasses
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SymbolicError
from ..xfloat import XFloat
from .symbols import CircuitSymbol

__all__ = ["Term", "SymbolicExpression", "evaluate_polynomial"]


def evaluate_polynomial(coefficient_of, max_power, s) -> complex:
    """``Σ_k coefficient_of(k) · s**k`` with XFloat coefficients.

    Evaluated per coefficient to limit cancellation noise across powers;
    zero coefficients are skipped.  Shared by
    :meth:`SymbolicExpression.evaluate` and the valuation-cached
    :meth:`~repro.symbolic.generation.SymbolicTransferFunction.evaluate`.
    """
    total = 0.0 + 0.0j
    for power in range(max_power + 1):
        coefficient = coefficient_of(power)
        if coefficient.is_zero():
            continue
        total += float(coefficient) * complex(s)**power
    return total


def _merge_sorted(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
    """Merge two sorted tuples into one sorted tuple (with repetition)."""
    if not a:
        return b
    if not b:
        return a
    out = []
    i = j = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        x, y = a[i], b[j]
        if x <= y:
            out.append(x)
            i += 1
        else:
            out.append(y)
            j += 1
    out.extend(a[i:] if i < len_a else b[j:])
    return tuple(out)


@dataclasses.dataclass(frozen=True)
class Term:
    """A signed product of symbols times ``s**s_power``.

    Attributes
    ----------
    symbols:
        Sorted tuple of symbol names (with repetition for squared factors).
    s_power:
        Power of the complex frequency carried by the term.
    coefficient:
        Integer (or float) multiplier, usually ±1 from determinant expansion.
    """

    symbols: Tuple[str, ...]
    s_power: int
    coefficient: float = 1.0

    def __post_init__(self):
        # Establish the sorted-tuple invariant, but only pay for a sort when
        # the input actually violates it — terms produced by multiply() (an
        # O(k) merge of two canonical terms) arrive already sorted.
        symbols = self.symbols
        if isinstance(symbols, tuple):
            for i in range(len(symbols) - 1):
                if symbols[i] > symbols[i + 1]:
                    object.__setattr__(self, "symbols", tuple(sorted(symbols)))
                    return
        else:
            object.__setattr__(self, "symbols", tuple(sorted(symbols)))

    @classmethod
    def from_sorted(cls, symbols, s_power, coefficient=1.0):
        """Construct from an already *sorted* symbol tuple.

        Skips the dataclass invariant scan — the bulk-construction fast path
        used by the kernel boundary, where monomials decode sorted by design.
        """
        term = object.__new__(cls)
        object.__setattr__(term, "symbols", symbols)
        object.__setattr__(term, "s_power", s_power)
        object.__setattr__(term, "coefficient", coefficient)
        return term

    def degree(self):
        """Number of symbol factors."""
        return len(self.symbols)

    def multiply(self, other: "Term") -> "Term":
        """Product of two terms (sorted tuples merge in O(k), no re-sort)."""
        return Term(
            symbols=_merge_sorted(self.symbols, other.symbols),
            s_power=self.s_power + other.s_power,
            coefficient=self.coefficient * other.coefficient,
        )

    def negated(self) -> "Term":
        """Term with the opposite sign."""
        return Term(self.symbols, self.s_power, -self.coefficient)

    def value(self, table: Dict[str, CircuitSymbol]) -> XFloat:
        """Design-point value of the term as an :class:`XFloat`."""
        if self.coefficient == 0.0:
            return XFloat.zero()
        log_magnitude = math.log10(abs(self.coefficient))
        sign = 1.0 if self.coefficient > 0 else -1.0
        for name in self.symbols:
            symbol = table.get(name)
            if symbol is None:
                raise SymbolicError(f"symbol {name!r} missing from the table")
            if symbol.value == 0.0:
                return XFloat.zero()
            log_magnitude += math.log10(abs(symbol.value))
            if symbol.value < 0.0:
                sign = -sign
        return XFloat.from_log10(log_magnitude, sign)

    def key(self) -> Tuple[Tuple[str, ...], int]:
        """Grouping key (symbols, power) used to combine like terms."""
        return (self.symbols, self.s_power)

    def __str__(self):
        body = "*".join(self.symbols) if self.symbols else "1"
        prefix = "" if self.coefficient == 1.0 else (
            "-" if self.coefficient == -1.0 else f"{self.coefficient:g}*")
        if self.s_power:
            return f"{prefix}{body}*s^{self.s_power}"
        return f"{prefix}{body}"


class SymbolicExpression:
    """A sum of :class:`Term` objects."""

    def __init__(self, terms: Optional[Iterable[Term]] = None):
        self.terms: List[Term] = list(terms or [])

    # -- construction -------------------------------------------------------

    @classmethod
    def zero(cls) -> "SymbolicExpression":
        """The empty (zero) expression."""
        return cls([])

    @classmethod
    def one(cls) -> "SymbolicExpression":
        """The constant 1."""
        return cls([Term(symbols=(), s_power=0, coefficient=1.0)])

    def copy(self) -> "SymbolicExpression":
        """Shallow copy (terms are immutable)."""
        return SymbolicExpression(list(self.terms))

    # -- algebra --------------------------------------------------------------

    def add(self, other: "SymbolicExpression") -> "SymbolicExpression":
        """Sum of two expressions (no like-term combination)."""
        return SymbolicExpression(self.terms + other.terms)

    def subtract(self, other: "SymbolicExpression") -> "SymbolicExpression":
        """Difference of two expressions."""
        return SymbolicExpression(
            self.terms + [term.negated() for term in other.terms]
        )

    def multiply_term(self, term: Term) -> "SymbolicExpression":
        """Multiply every term by ``term``."""
        return SymbolicExpression([t.multiply(term) for t in self.terms])

    def scaled(self, coefficient) -> "SymbolicExpression":
        """Multiply every term's coefficient by ``coefficient``."""
        return SymbolicExpression([
            Term(t.symbols, t.s_power, t.coefficient * coefficient)
            for t in self.terms
        ])

    def combined(self) -> "SymbolicExpression":
        """Combine like terms (identical symbol multiset and power)."""
        groups: Dict[Tuple[Tuple[str, ...], int], float] = defaultdict(float)
        for term in self.terms:
            groups[term.key()] += term.coefficient
        combined = [Term(symbols, power, coefficient)
                    for (symbols, power), coefficient in groups.items()
                    if coefficient != 0.0]
        return SymbolicExpression(combined)

    # -- queries ----------------------------------------------------------------

    def __len__(self):
        return len(self.terms)

    def __iter__(self):
        return iter(self.terms)

    def is_zero(self):
        """True when there are no terms (after combination)."""
        return not self.combined().terms

    def max_s_power(self):
        """Largest power of ``s`` appearing in the expression (0 if empty)."""
        if not self.terms:
            return 0
        return max(term.s_power for term in self.terms)

    def coefficient_terms(self, power) -> List[Term]:
        """All terms contributing to the coefficient of ``s**power``."""
        return [term for term in self.terms if term.s_power == power]

    def grouped_by_power(self) -> Dict[int, List[Term]]:
        """All terms bucketed by their power of ``s`` in one pass.

        The shared grouping hook behind per-coefficient valuation and
        transfer-model compilation — one expression scan instead of one
        :meth:`coefficient_terms` scan per power.
        """
        groups: Dict[int, List[Term]] = {}
        for term in self.terms:
            groups.setdefault(term.s_power, []).append(term)
        return groups

    def coefficient_value(self, power, table) -> XFloat:
        """Design-point value of the coefficient of ``s**power``.

        Runs on the kernel's vectorized log-space valuation; the accumulation
        order matches the per-term loop, so results are bit-identical to
        summing :meth:`Term.value` sequentially.
        """
        from .kernel import sum_term_values

        return sum_term_values(self.coefficient_terms(power), table)

    def evaluate(self, table, s) -> complex:
        """Numeric value of the expression at complex frequency ``s``."""
        return evaluate_polynomial(
            lambda power: self.coefficient_value(power, table),
            self.max_s_power(), s)

    def term_count_by_power(self) -> Dict[int, int]:
        """Histogram of term counts per power of ``s``."""
        counts: Dict[int, int] = defaultdict(int)
        for term in self.terms:
            counts[term.s_power] += 1
        return dict(counts)

    def __str__(self):
        if not self.terms:
            return "0"
        parts = [str(term) for term in self.terms[:12]]
        if len(self.terms) > 12:
            parts.append(f"… (+{len(self.terms) - 12} terms)")
        return " + ".join(parts)
