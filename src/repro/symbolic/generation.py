"""Exact symbolic network functions and simplification after generation (SAG).

The numerator is obtained with Cramer's rule: replacing the output column of
the symbolic nodal matrix by the excitation column yields a determinant whose
expansion is ``N(s, x)``; the plain determinant is ``D(s, x)``.  Differential
outputs are the difference of two column-replaced determinants.

With the default ``kernel="interned"`` both expansions run on one
:class:`~repro.symbolic.kernel.DeterminantEngine`: the Cramer numerator
differs from the denominator in a single column, so nearly every numerator
minor is answered by the memo the denominator expansion already filled (the
per-phase hit/miss accounting lands in
:attr:`SymbolicTransferFunction.kernel_stats`).

:func:`simplify_after_generation` then prunes each coefficient's terms against
the *numerical reference*, which is the role the paper's algorithm plays in
the SAG/SDG tool chain: terms are dropped (smallest first) for as long as the
accumulated discarded magnitude stays below ``ε_k |h_k(x_0)|``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import SingularEvaluationError, SymbolicError
from ..netlist.transform import to_admittance_form
from ..nodal.reduce import TransferSpec
from ..xfloat import XFloat
from .determinant import DEFAULT_MAX_TERMS, symbolic_determinant
from .kernel import EngineStats, TermValuation
from .matrix import SymbolicNodal, build_symbolic_nodal
from .terms import SymbolicExpression, Term, evaluate_polynomial

__all__ = [
    "SymbolicTransferFunction",
    "symbolic_network_function",
    "select_significant_terms",
    "simplify_after_generation",
]


@dataclasses.dataclass
class SymbolicTransferFunction:
    """Exact (or simplified) symbolic network function ``N(s,x)/D(s,x)``.

    The numerator/denominator expressions are treated as immutable once the
    transfer function exists: coefficient valuations and per-power term
    groups are cached on first use, so mutating ``numerator.terms`` /
    ``denominator.terms`` in place afterwards would serve stale values.
    Build a new ``SymbolicTransferFunction`` instead of mutating one.
    """

    numerator: SymbolicExpression
    denominator: SymbolicExpression
    table: Dict[str, object]
    spec: TransferSpec
    #: Minor-memo accounting of the generating engine (None for the legacy
    #: kernel and for simplified functions derived from another transfer).
    kernel_stats: Optional[EngineStats] = None
    _valuations: Dict[Tuple[str, int], TermValuation] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)
    _power_groups: Dict[str, Dict[int, List[Term]]] = dataclasses.field(
        default_factory=dict, repr=False, compare=False)
    _compiled_models: Dict[Optional[Tuple[str, ...]], object] = \
        dataclasses.field(default_factory=dict, repr=False, compare=False)

    def term_count(self) -> Tuple[int, int]:
        """``(numerator terms, denominator terms)``."""
        return len(self.numerator), len(self.denominator)

    def _expression(self, kind) -> SymbolicExpression:
        return self.numerator if kind.startswith("n") else self.denominator

    def coefficient_valuation(self, kind, power) -> TermValuation:
        """Cached bulk valuation of one coefficient's terms.

        SDG/SAG selection, achieved-error accounting and repeated evaluation
        all share the one vectorized log-space pass per coefficient.
        """
        kind = "numerator" if kind.startswith("n") else "denominator"
        key = (kind, power)
        valuation = self._valuations.get(key)
        if valuation is None:
            groups = self._power_groups.get(kind)
            if groups is None:
                # One pass groups every coefficient's terms, instead of a
                # full-expression scan per power.
                groups = self._expression(kind).grouped_by_power()
                self._power_groups[kind] = groups
            valuation = TermValuation(groups.get(power, ()), self.table)
            self._valuations[key] = valuation
        return valuation

    def compile(self, free_symbols=None):
        """Lower this transfer into a cached :class:`CompiledTransferModel`.

        One model is kept per distinct free-symbol tuple (the expressions
        are immutable by the contract above, so reuse is always valid).
        See :func:`repro.symbolic.compile.compile_transfer_model`.
        """
        key = None if free_symbols is None else \
            tuple(str(name) for name in free_symbols)
        model = self._compiled_models.get(key)
        if model is None:
            from .compile import compile_transfer_model

            model = compile_transfer_model(self, free_symbols=key)
            self._compiled_models[key] = model
        return model

    def coefficient_value(self, kind, power) -> XFloat:
        """Design-point value of one coefficient (numeric, extended range)."""
        return self.coefficient_valuation(kind, power).total()

    def _polynomial_value(self, kind, s) -> complex:
        return evaluate_polynomial(
            lambda power: self.coefficient_valuation(kind, power).total(),
            self._expression(kind).max_s_power(), s)

    def evaluate(self, s) -> complex:
        """Numeric value of the transfer function at complex ``s``."""
        denominator = self._polynomial_value("denominator", s)
        if denominator == 0:
            raise SingularEvaluationError(
                "symbolic denominator evaluates to zero: the system matrix "
                f"is singular at s={complex(s)!r}")
        return self._polynomial_value("numerator", s) / denominator

    def summary(self) -> str:
        """One-line term-count summary."""
        n_terms, d_terms = self.term_count()
        return (f"symbolic H(s): {n_terms} numerator terms, "
                f"{d_terms} denominator terms")


def _replace_column(nodal: SymbolicNodal, column: int) -> Dict[Tuple[int, int], SymbolicExpression]:
    """Matrix entries with ``column`` replaced by the excitation vector."""
    entries: Dict[Tuple[int, int], SymbolicExpression] = {}
    for (row, col), expression in nodal.entries.items():
        if col == column:
            continue
        entries[(row, col)] = expression
    for row, expression in nodal.rhs.items():
        if expression.terms:
            entries[(row, column)] = expression
    return entries


def _cramer_terms(engine, excitation, size, column):
    """Internal terms (and parity sign) of the column-replaced determinant.

    The excitation column is appended *last* instead of being substituted in
    place, so every minor key stays a sorted id tuple shared with the plain
    determinant; moving it from position ``column`` to the end contributes the
    parity factor ``(-1)**(size - 1 - column)``.
    """
    cols = tuple(c for c in range(size) if c != column) + (excitation,)
    terms = engine.determinant_terms(tuple(range(size)), cols)
    sign = -1.0 if (size - 1 - column) % 2 else 1.0
    return terms, sign


def _transfer_from_nodal(nodal, spec, max_terms=DEFAULT_MAX_TERMS,
                         kernel="interned", engine=None,
                         excitation=None) -> SymbolicTransferFunction:
    """Generate the transfer function from a built symbolic nodal matrix."""
    if kernel == "legacy":
        denominator = symbolic_determinant(nodal.entries, nodal.dimension,
                                           max_terms, kernel="legacy")

        def column_determinant(node):
            column = nodal.index_of(node)
            replaced = _replace_column(nodal, column)
            return symbolic_determinant(replaced, nodal.dimension, max_terms,
                                        kernel="legacy")

        numerator = column_determinant(nodal.output_pos)
        if nodal.output_neg is not None and nodal.output_neg != "0":
            numerator = numerator.subtract(column_determinant(nodal.output_neg))
            numerator = numerator.combined()
        return SymbolicTransferFunction(
            numerator=numerator,
            denominator=denominator,
            table=nodal.table,
            spec=spec,
        )

    if engine is None:
        engine, excitation = nodal.determinant_engine(max_terms=max_terms)
    size = nodal.dimension
    indices = tuple(range(size))
    with engine.phase("denominator"):
        denominator = engine.to_expression(
            engine.determinant_terms(indices, indices))

    with engine.phase(f"numerator:{nodal.output_pos}"):
        positive_terms, positive_sign = _cramer_terms(
            engine, excitation, size, nodal.index_of(nodal.output_pos))
    if nodal.output_neg is not None and nodal.output_neg != "0":
        with engine.phase(f"numerator:{nodal.output_neg}"):
            negative_terms, negative_sign = _cramer_terms(
                engine, excitation, size, nodal.index_of(nodal.output_neg))
        accumulated: Dict[Tuple, float] = {}
        for terms, scale in ((positive_terms, positive_sign),
                             (negative_terms, -negative_sign)):
            for mono, power, coefficient in terms:
                group = (mono, power)
                accumulated[group] = accumulated.get(group, 0.0) \
                    + coefficient * scale
        numerator = engine.to_expression(tuple(
            (mono, power, coefficient)
            for (mono, power), coefficient in accumulated.items()
            if coefficient != 0.0))
    else:
        numerator = engine.to_expression(positive_terms, scale=positive_sign)

    return SymbolicTransferFunction(
        numerator=numerator,
        denominator=denominator,
        table=nodal.table,
        spec=spec,
        kernel_stats=engine.stats,
    )


def symbolic_network_function(circuit, spec, max_terms=DEFAULT_MAX_TERMS,
                              admittance_transform=True, kernel="interned",
                              session=None) -> SymbolicTransferFunction:
    """Generate the complete symbolic network function of a circuit.

    The output nodes named by ``spec`` must be unknown nodes (not forced, not
    ground) — the usual case for amplifier outputs.

    Parameters
    ----------
    kernel:
        ``"interned"`` (minor-memoized engine shared between numerator and
        denominator, the default) or ``"legacy"`` (per-cofactor
        re-expansion, kept for A/B benchmarking).  Both produce the same term
        multisets.
    session:
        Optional :class:`~repro.engine.session.AnalysisSession`: the symbolic
        nodal matrix, the determinant engine (with its minor memo) and the
        finished transfer function are then cached under the circuit
        fingerprint and shared with later symbolic stages.

    Raises
    ------
    SymbolicError
        When the expansion exceeds ``max_terms`` or the output is not an
        unknown node.
    """
    if kernel not in ("interned", "legacy"):
        raise SymbolicError(f"unknown symbolic kernel {kernel!r}")
    if session is not None:
        return session.symbolic_transfer(
            circuit, spec, max_terms=max_terms, kernel=kernel,
            admittance_transform=admittance_transform)
    if admittance_transform:
        circuit = to_admittance_form(circuit)
    nodal = build_symbolic_nodal(circuit, spec)
    return _transfer_from_nodal(nodal, spec, max_terms=max_terms, kernel=kernel)


def _select_significant_terms_scalar(terms, table, reference_value,
                                     epsilon) -> Tuple[List[Term], int]:
    """The pre-kernel selection: per-term ``Term.value`` calls and an XFloat
    sort.  Kept as the ``kernel="legacy"`` arm of the SDG A/B benchmark.
    Exact-magnitude ties use the same deterministic ``(s_power, symbols)``
    key as the vectorized path (tie policy is not a performance property),
    so both arms keep identical term sets."""
    valued = [(term, term.value(table)) for term in terms]
    valued.sort(key=lambda item: (
        (-item[1].log10() if not item[1].is_zero() else float("inf")),
        item[0].s_power, item[0].symbols))
    if isinstance(reference_value, (int, float)):
        reference_value = XFloat(float(reference_value), 0)
    target = abs(reference_value)
    if target.is_zero():
        return [], len(valued)

    kept: List[Term] = []
    accumulated = XFloat.zero()
    for term, value in valued:
        error = abs(reference_value - accumulated)
        if error < target * epsilon:
            break
        kept.append(term)
        accumulated = accumulated + value
    return kept, len(valued)


def select_significant_terms(terms, table, reference_value, epsilon,
                             valuation=None,
                             method="vectorized") -> Tuple[List[Term], int]:
    """Keep the largest terms of one coefficient until Eq. (3) is satisfied.

    Terms are accumulated in decreasing order of design-point magnitude until
    ``|h_k(x0) - Σ kept| < ε |h_k(x0)|`` where ``h_k(x0)`` is the *reference*
    value (not the sum of the generated terms — that is the whole point of the
    numerical reference).  Magnitudes come from one vectorized
    :class:`~repro.symbolic.kernel.TermValuation` pass (pass ``valuation`` to
    reuse a cached one); exact magnitude ties order deterministically on
    ``(s_power, symbols)``, so the selection is independent of the
    term-generation order.  ``method="scalar"`` runs the pre-kernel per-term
    loop instead (the legacy benchmark arm).

    Returns
    -------
    (kept_terms, total_terms)
    """
    if epsilon < 0.0:
        raise SymbolicError("epsilon must be non-negative")
    if method not in ("vectorized", "scalar"):
        raise SymbolicError(f"unknown selection method {method!r}")
    if method == "scalar":
        return _select_significant_terms_scalar(terms, table, reference_value,
                                                epsilon)
    if valuation is None:
        valuation = TermValuation(terms, table)
    elif valuation.terms is not terms and valuation.terms != list(terms):
        raise SymbolicError(
            "valuation was built for a different term list; pass the "
            "valuation's own terms (valuation.terms) or omit it")
    terms = valuation.terms
    if isinstance(reference_value, (int, float)):
        reference_value = XFloat(float(reference_value), 0)
    target = abs(reference_value)
    if target.is_zero():
        return [], len(terms)

    kept: List[Term] = []
    accumulated = XFloat.zero()
    for index in valuation.order():
        error = abs(reference_value - accumulated)
        if error < target * epsilon:
            break
        kept.append(terms[index])
        accumulated = accumulated + valuation.value(index)
    return kept, len(terms)


def simplify_after_generation(transfer_function, reference, epsilon=0.01) -> "SymbolicTransferFunction":
    """SAG: prune a complete symbolic expression against the numerical reference.

    Parameters
    ----------
    transfer_function:
        A full :class:`SymbolicTransferFunction`.
    reference:
        A :class:`~repro.interpolation.reference.NumericalReference` for the
        same circuit / spec.
    epsilon:
        Per-coefficient relative error budget ``ε_k`` (same for every k).

    Returns
    -------
    SymbolicTransferFunction
        A new transfer function containing only the significant terms.
    """
    simplified: Dict[str, SymbolicExpression] = {}
    for kind, expression in (("numerator", transfer_function.numerator),
                             ("denominator", transfer_function.denominator)):
        kept_terms: List[Term] = []
        for power in range(expression.max_s_power() + 1):
            valuation = transfer_function.coefficient_valuation(kind, power)
            if not len(valuation):
                continue
            reference_value = reference.coefficient(kind, power)
            kept, __ = select_significant_terms(
                valuation.terms, transfer_function.table, reference_value,
                epsilon, valuation=valuation)
            kept_terms.extend(kept)
        simplified[kind] = SymbolicExpression(kept_terms)
    return SymbolicTransferFunction(
        numerator=simplified["numerator"],
        denominator=simplified["denominator"],
        table=transfer_function.table,
        spec=transfer_function.spec,
    )
