"""Exact symbolic network functions and simplification after generation (SAG).

The numerator is obtained with Cramer's rule: replacing the output column of
the symbolic nodal matrix by the excitation column yields a determinant whose
expansion is ``N(s, x)``; the plain determinant is ``D(s, x)``.  Differential
outputs are the difference of two column-replaced determinants.

:func:`simplify_after_generation` then prunes each coefficient's terms against
the *numerical reference*, which is the role the paper's algorithm plays in
the SAG/SDG tool chain: terms are dropped (smallest first) for as long as the
accumulated discarded magnitude stays below ``ε_k |h_k(x_0)|``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import SymbolicError
from ..netlist.transform import to_admittance_form
from ..nodal.reduce import TransferSpec
from ..xfloat import XFloat
from .determinant import DEFAULT_MAX_TERMS, symbolic_determinant
from .matrix import SymbolicNodal, build_symbolic_nodal
from .terms import SymbolicExpression, Term

__all__ = [
    "SymbolicTransferFunction",
    "symbolic_network_function",
    "select_significant_terms",
    "simplify_after_generation",
]


@dataclasses.dataclass
class SymbolicTransferFunction:
    """Exact (or simplified) symbolic network function ``N(s,x)/D(s,x)``."""

    numerator: SymbolicExpression
    denominator: SymbolicExpression
    table: Dict[str, object]
    spec: TransferSpec

    def term_count(self) -> Tuple[int, int]:
        """``(numerator terms, denominator terms)``."""
        return len(self.numerator), len(self.denominator)

    def coefficient_value(self, kind, power) -> XFloat:
        """Design-point value of one coefficient (numeric, extended range)."""
        expression = self.numerator if kind.startswith("n") else self.denominator
        return expression.coefficient_value(power, self.table)

    def evaluate(self, s) -> complex:
        """Numeric value of the transfer function at complex ``s``."""
        denominator = self.denominator.evaluate(self.table, s)
        if denominator == 0:
            raise ZeroDivisionError("symbolic denominator evaluates to zero")
        return self.numerator.evaluate(self.table, s) / denominator

    def summary(self) -> str:
        """One-line term-count summary."""
        n_terms, d_terms = self.term_count()
        return (f"symbolic H(s): {n_terms} numerator terms, "
                f"{d_terms} denominator terms")


def _replace_column(nodal: SymbolicNodal, column: int) -> Dict[Tuple[int, int], SymbolicExpression]:
    """Matrix entries with ``column`` replaced by the excitation vector."""
    entries: Dict[Tuple[int, int], SymbolicExpression] = {}
    for (row, col), expression in nodal.entries.items():
        if col == column:
            continue
        entries[(row, col)] = expression
    for row, expression in nodal.rhs.items():
        if expression.terms:
            entries[(row, column)] = expression
    return entries


def symbolic_network_function(circuit, spec, max_terms=DEFAULT_MAX_TERMS,
                              admittance_transform=True) -> SymbolicTransferFunction:
    """Generate the complete symbolic network function of a circuit.

    The output nodes named by ``spec`` must be unknown nodes (not forced, not
    ground) — the usual case for amplifier outputs.

    Raises
    ------
    SymbolicError
        When the expansion exceeds ``max_terms`` or the output is not an
        unknown node.
    """
    if admittance_transform:
        circuit = to_admittance_form(circuit)
    nodal = build_symbolic_nodal(circuit, spec)
    denominator = symbolic_determinant(nodal.entries, nodal.dimension, max_terms)

    def column_determinant(node):
        column = nodal.index_of(node)
        replaced = _replace_column(nodal, column)
        return symbolic_determinant(replaced, nodal.dimension, max_terms)

    numerator = column_determinant(nodal.output_pos)
    if nodal.output_neg is not None and nodal.output_neg != "0":
        numerator = numerator.subtract(column_determinant(nodal.output_neg))
        numerator = numerator.combined()

    return SymbolicTransferFunction(
        numerator=numerator,
        denominator=denominator,
        table=nodal.table,
        spec=spec,
    )


def select_significant_terms(terms, table, reference_value, epsilon) -> Tuple[List[Term], int]:
    """Keep the largest terms of one coefficient until Eq. (3) is satisfied.

    Terms are accumulated in decreasing order of design-point magnitude until
    ``|h_k(x0) - Σ kept| < ε |h_k(x0)|`` where ``h_k(x0)`` is the *reference*
    value (not the sum of the generated terms — that is the whole point of the
    numerical reference).

    Returns
    -------
    (kept_terms, total_terms)
    """
    if epsilon < 0.0:
        raise SymbolicError("epsilon must be non-negative")
    valued = [(term, term.value(table)) for term in terms]
    valued.sort(key=lambda item: (-item[1].log10() if not item[1].is_zero()
                                  else float("inf")))
    if isinstance(reference_value, (int, float)):
        reference_value = XFloat(float(reference_value), 0)
    target = abs(reference_value)
    if target.is_zero():
        return [], len(valued)

    kept: List[Term] = []
    accumulated = XFloat.zero()
    for term, value in valued:
        error = abs(reference_value - accumulated)
        if error < target * epsilon:
            break
        kept.append(term)
        accumulated = accumulated + value
    return kept, len(valued)


def simplify_after_generation(transfer_function, reference, epsilon=0.01) -> "SymbolicTransferFunction":
    """SAG: prune a complete symbolic expression against the numerical reference.

    Parameters
    ----------
    transfer_function:
        A full :class:`SymbolicTransferFunction`.
    reference:
        A :class:`~repro.interpolation.reference.NumericalReference` for the
        same circuit / spec.
    epsilon:
        Per-coefficient relative error budget ``ε_k`` (same for every k).

    Returns
    -------
    SymbolicTransferFunction
        A new transfer function containing only the significant terms.
    """
    simplified: Dict[str, SymbolicExpression] = {}
    for kind, expression in (("numerator", transfer_function.numerator),
                             ("denominator", transfer_function.denominator)):
        kept_terms: List[Term] = []
        for power in range(expression.max_s_power() + 1):
            terms = expression.coefficient_terms(power)
            if not terms:
                continue
            reference_value = reference.coefficient(kind, power)
            kept, __ = select_significant_terms(terms, transfer_function.table,
                                                reference_value, epsilon)
            kept_terms.extend(kept)
        simplified[kind] = SymbolicExpression(kept_terms)
    return SymbolicTransferFunction(
        numerator=simplified["numerator"],
        denominator=simplified["denominator"],
        table=transfer_function.table,
        spec=transfer_function.spec,
    )
