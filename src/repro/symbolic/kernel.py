"""Interned-monomial symbolic kernel: the fast core of the symbolic layer.

This module is the symbolic counterpart of :mod:`repro.engine` — PRs 1–3 made
the numeric side ride batched/cached kernels, and this kernel does the same
for symbolic network-function generation.  Three ideas, layered:

**Interned monomials.**  A :class:`SymbolInterner` maps symbol names to dense
integer ids (assigned in lexicographic name order, so decoded monomials come
out in the sorted order :class:`~repro.symbolic.terms.Term` requires).
Monomials are *packed integers* — 8 bits of multiplicity per symbol id — so a
term product is a single C bigint addition (multiplicities add), equal
monomials are equal ints, and combining like terms hashes one machine-sized
key instead of a string tuple.  Decoding back to name tuples happens once per
distinct final monomial, through a cache.

**Minor-memoized determinants.**  :class:`DeterminantEngine` expands
determinants recursively along the structurally sparsest column, exactly like
the legacy expansion, but memoizes ``expand(active_rows, active_cols)`` per
*structural minor* and combines like terms per minor.  The cofactor tree of a
circuit matrix revisits the same minors constantly, and the Cramer numerator
differs from the denominator in a single column — so nearly every numerator
minor is a cache hit against the denominator expansion.  The ``max_terms``
budget is charged on *distinct* work (terms retained across memoized minors),
not on the flat legacy term count, and the overflow error reports both.

**Vectorized term valuation.**  :class:`TermValuation` groups terms by degree
into dense terms×factors incidences of factor logs folded column by column —
one vector pass per degree produces every term's design-point ``log10``
magnitude and sign.  The fold is deliberately a manual left-to-right column
loop, NOT ``np.add.reduceat``/``np.sum`` (those use pairwise summation): only
the scalar accumulation order reproduces :meth:`Term.value` bit for bit,
which the SDG A/B equivalence assertions depend on.
:func:`select_significant_terms`, the SDG ``achieved_error`` accounting and
:meth:`SymbolicExpression.coefficient_value` all run on it.

The public results (term multisets, coefficient values) match the legacy
expansion — the legacy path stays reachable through ``kernel="legacy"`` for
A/B benchmarking.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SymbolicError
from ..xfloat import XFloat
from .terms import SymbolicExpression, Term

__all__ = [
    "DEFAULT_MAX_TERMS",
    "SymbolInterner",
    "DeterminantEngine",
    "EngineStats",
    "TermValuation",
    "sum_term_values",
]

#: Default cap on generated determinant terms (re-exported by
#: :mod:`repro.symbolic.determinant` — one tunable, one source).
DEFAULT_MAX_TERMS = 500_000

#: Bits of multiplicity per symbol id in a packed monomial.  A symbol's
#: multiplicity in a determinant term is bounded by the matrix dimension (one
#: factor per row), so 8 bits cover every expansion that could conceivably
#: finish.
_MULTIPLICITY_BITS = 8
_MULTIPLICITY_LIMIT = (1 << _MULTIPLICITY_BITS) - 1

#: Monomials decode in chunks of this many symbol digits (see
#: :meth:`SymbolInterner.decode`).
_CHUNK_SYMBOLS = 16
_CHUNK_BITS = _MULTIPLICITY_BITS * _CHUNK_SYMBOLS
_CHUNK_MASK = (1 << _CHUNK_BITS) - 1


class SymbolInterner:
    """Bidirectional symbol-name ↔ integer-id table with packed monomials.

    Ids are assigned in sorted name order at construction, so a packed
    monomial decodes into a sorted name tuple without re-sorting.  Names
    interned later (rare: symbols that appear in entries but not in the
    initial set) break that ordering, and decoding falls back to an explicit
    sort.

    A monomial — a multiset of symbol ids — is packed into one integer with
    :data:`_MULTIPLICITY_BITS` bits of multiplicity per id.  Multiplying two
    monomials is then a single integer addition, and the packed value is its
    own hash-consed identity.
    """

    __slots__ = ("_names", "_ids", "_decoded", "_chunks", "_ordered")

    def __init__(self, names: Iterable[str] = ()):
        self._names: List[str] = sorted(set(names))
        self._ids: Dict[str, int] = {name: i for i, name in enumerate(self._names)}
        self._decoded: Dict[int, Tuple[str, ...]] = {0: ()}
        #: Per-chunk decode caches, indexed by chunk position.
        self._chunks: List[Dict[int, Tuple[str, ...]]] = []
        self._ordered = True

    def __len__(self):
        return len(self._names)

    @property
    def names(self) -> Tuple[str, ...]:
        """All interned names in id order."""
        return tuple(self._names)

    def id_of(self, name: str) -> int:
        """Id of ``name``, interning it (unordered) when unseen."""
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._names.append(name)
            self._ids[name] = ident
            if ident and name < self._names[ident - 1]:
                self._ordered = False
        return ident

    def encode_names(self, names: Sequence[str]) -> int:
        """Packed monomial of a symbol-name sequence (with repetition)."""
        mono = 0
        for name in names:
            mono += 1 << (_MULTIPLICITY_BITS * self.id_of(name))
        return mono

    def decode(self, monomial: int) -> Tuple[str, ...]:
        """Sorted name tuple of a packed monomial (the Term symbol invariant).

        Decoding splits the monomial into 16-symbol chunks cached
        independently — nearby determinant terms share most of their factor
        structure, so chunk fragments hit constantly even when whole
        monomials are all distinct.  Decoded tuples are also cached per
        monomial, so expressions that share monomials share symbol tuples.
        """
        decoded = self._decoded.get(monomial)
        if decoded is None:
            caches = self._chunks
            position = 0
            rest = monomial
            decoded = ()
            while rest:
                chunk = rest & _CHUNK_MASK
                rest >>= _CHUNK_BITS
                if position == len(caches):
                    caches.append({})
                cache = caches[position]
                names = cache.get(chunk)
                if names is None:
                    names = cache[chunk] = self._decode_chunk(chunk, position)
                if names:
                    decoded = decoded + names if decoded else names
                position += 1
            if not self._ordered:
                decoded = tuple(sorted(decoded))
            self._decoded[monomial] = decoded
        return decoded

    def _decode_chunk(self, chunk: int, position: int) -> Tuple[str, ...]:
        table = self._names
        offset = position * _CHUNK_SYMBOLS
        decoded: List[str] = []
        for index, count in enumerate(chunk.to_bytes(_CHUNK_SYMBOLS, "little")):
            if count:
                decoded.extend([table[offset + index]] * count)
        return tuple(decoded)

    @property
    def decoded_count(self):
        """Number of distinct monomials decoded so far."""
        return len(self._decoded)


#: Internal term representation: (packed monomial, s power, coefficient).
_UNIT = ((0, 0, 1.0),)


@dataclasses.dataclass
class EngineStats:
    """Work accounting of one :class:`DeterminantEngine`.

    ``distinct_terms`` is what the ``max_terms`` budget charges (terms
    retained across distinct memoized minors); ``expanded_products`` counts
    the term products actually formed, and ``minor_hits`` the expansions the
    memo avoided.  ``phases`` maps a label (``"denominator"``,
    ``"numerator:<node>"``) to its ``(hits, misses)`` snapshot — the
    numerator/denominator sharing shows up as a numerator phase whose hits
    dwarf its misses.
    """

    distinct_terms: int = 0
    expanded_products: int = 0
    minor_hits: int = 0
    minor_misses: int = 0
    phases: Dict[str, Tuple[int, int]] = dataclasses.field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        """Fraction of minor lookups answered by the memo."""
        total = self.minor_hits + self.minor_misses
        return self.minor_hits / total if total else 0.0


class DeterminantEngine:
    """Minor-memoized sparse determinant expansion over interned columns.

    The engine owns a *column registry*: the base matrix columns plus any
    number of replacement (excitation) columns.  Every determinant request —
    the plain determinant, or a Cramer numerator with one column replaced —
    runs against the same memo, so structural minors are shared across the
    cofactor tree and across numerator/denominator expansions.

    Parameters
    ----------
    interner:
        Shared :class:`SymbolInterner` (monomials from different engines can
        be compared only when they share an interner).
    size:
        Matrix dimension.
    max_terms:
        Budget on *distinct* work: the total number of terms retained across
        memoized minors.  Reusing a memoized minor charges nothing.
    """

    def __init__(self, interner: SymbolInterner, size: int,
                 max_terms: int = DEFAULT_MAX_TERMS):
        self.interner = interner
        self.size = size
        self.max_terms = max_terms
        #: column id -> {row: tuple of internal terms}
        self._columns: List[Dict[int, Tuple]] = []
        self._memo: Dict[Tuple, Tuple] = {}
        self.stats = EngineStats()

    # ------------------------------------------------------------------ #
    # column registry
    # ------------------------------------------------------------------ #

    def compile_expression(self, expression) -> Tuple:
        """Compile a :class:`SymbolicExpression` into internal terms."""
        encode = self.interner.encode_names
        compiled = []
        for term in expression.terms:
            if len(term.symbols) * max(self.size, 1) > _MULTIPLICITY_LIMIT:
                # One multiplicity digit per symbol: a term of this degree
                # times one factor per row could overflow a digit.  No
                # completable expansion gets near this (dimension 255+).
                raise SymbolicError(
                    "matrix too large for packed monomials "
                    f"(size {self.size}, entry degree {len(term.symbols)})")
            compiled.append((encode(term.symbols), term.s_power,
                             term.coefficient))
        return tuple(compiled)

    def add_column(self, entries_by_row: Dict[int, object]) -> int:
        """Register a column; values are ``SymbolicExpression`` or compiled
        internal term tuples.  Returns the column id."""
        column: Dict[int, Tuple] = {}
        for row, expression in entries_by_row.items():
            compiled = (expression if isinstance(expression, tuple)
                        else self.compile_expression(expression))
            if compiled:
                column[row] = compiled
        self._columns.append(column)
        return len(self._columns) - 1

    @classmethod
    def from_entries(cls, entries, size, interner=None,
                     max_terms=DEFAULT_MAX_TERMS) -> "DeterminantEngine":
        """Build an engine whose columns ``0..size-1`` mirror an
        ``{(row, col): SymbolicExpression}`` entry map."""
        if interner is None:
            names = {name
                     for expression in entries.values()
                     for term in expression.terms
                     for name in term.symbols}
            interner = SymbolInterner(names)
        engine = cls(interner, size, max_terms)
        by_column: List[Dict[int, object]] = [{} for __ in range(size)]
        for (row, col), expression in entries.items():
            if expression.terms:
                by_column[col][row] = expression
        for column in by_column:
            engine.add_column(column)
        return engine

    # ------------------------------------------------------------------ #
    # expansion
    # ------------------------------------------------------------------ #

    def determinant_terms(self, rows: Sequence[int],
                          cols: Sequence[int]) -> Tuple:
        """Internal combined terms of the determinant over ``rows``/``cols``
        (column ids, in matrix-column order)."""
        rows = tuple(rows)
        cols = tuple(cols)
        if len(rows) != len(cols):
            raise SymbolicError("determinant requires as many rows as columns")
        return self._expand(rows, cols)

    def phase(self, label: str):
        """Snapshot hit/miss deltas of the next expansions under ``label``."""
        return _PhaseRecorder(self, label)

    def _budget_error(self, in_flight=0) -> SymbolicError:
        stats = self.stats
        held = (f"{stats.distinct_terms} distinct terms"
                if not in_flight else
                f"{stats.distinct_terms} distinct terms + {in_flight} "
                "in-flight groups")
        return SymbolicError(
            f"symbolic determinant exceeded the term budget ({self.max_terms}): "
            f"{held} across {len(self._memo)} memoized minors "
            f"({stats.expanded_products} expanded term products); "
            "reduce the circuit (SBG) first"
        )

    def _expand(self, rows: Tuple[int, ...], cols: Tuple[int, ...]) -> Tuple:
        memo = self._memo
        key = (rows, cols)
        hit = memo.get(key)
        if hit is not None:
            self.stats.minor_hits += 1
            return hit
        self.stats.minor_misses += 1
        if not rows:
            memo[key] = _UNIT
            return _UNIT

        # Pick the active column with the fewest entries in the active rows
        # (the same pivoting rule as the legacy expansion).
        rows_set = set(rows)
        columns = self._columns
        best_position = None
        best_rows: List[int] = []
        for position, col in enumerate(cols):
            rows_here = [row for row in columns[col] if row in rows_set]
            if best_position is None or len(rows_here) < len(best_rows):
                best_position = position
                best_rows = rows_here
                if len(rows_here) <= 1:
                    break
        if best_position is None or not best_rows:
            # Structurally singular: an active column with no active entries.
            memo[key] = ()
            return ()
        best_col = cols[best_position]
        remaining_cols = cols[:best_position] + cols[best_position + 1:]
        column = columns[best_col]

        # Like terms accumulate per total s-power, keyed directly by the
        # packed monomial: multiplying monomials is one integer addition
        # (multiplicities add), and combining is one integer-keyed dict update.
        buckets: Dict[int, Dict[int, float]] = {}
        stats = self.stats
        for row in best_rows:
            row_position = rows.index(row)
            sign = -1.0 if (row_position + best_position) % 2 else 1.0
            remaining_rows = rows[:row_position] + rows[row_position + 1:]
            minor = self._expand(remaining_rows, remaining_cols)
            if not minor:
                continue
            entry = column[row]
            for entry_mono, entry_power, entry_coeff in entry:
                scaled = entry_coeff * sign
                bucket_base = buckets.get(entry_power)
                for minor_mono, minor_power, minor_coeff in minor:
                    if minor_power:
                        power = entry_power + minor_power
                        bucket = buckets.get(power)
                        if bucket is None:
                            bucket = buckets[power] = {}
                    else:
                        bucket = bucket_base
                        if bucket is None:
                            bucket = bucket_base = buckets[entry_power] = {}
                    merged = entry_mono + minor_mono
                    value = bucket.get(merged)
                    if value is None:
                        bucket[merged] = scaled * minor_coeff
                    else:
                        bucket[merged] = value + scaled * minor_coeff
            stats.expanded_products += len(entry) * len(minor)
            in_flight = sum(map(len, buckets.values()))
            if (stats.distinct_terms + in_flight) > self.max_terms:
                # Live groups count against the budget while the minor is
                # open (they are retained memory), even though some may
                # still cancel before the minor is charged for keeps.
                raise self._budget_error(in_flight)

        result = tuple((mono, power, coefficient)
                       for power, bucket in sorted(buckets.items())
                       for mono, coefficient in bucket.items()
                       if coefficient != 0.0)
        stats.distinct_terms += len(result)
        if stats.distinct_terms > self.max_terms:
            raise self._budget_error()
        memo[key] = result
        return result

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #

    def to_expression(self, internal_terms, scale: float = 1.0) -> SymbolicExpression:
        """Convert internal terms to a public :class:`SymbolicExpression`."""
        decode = self.interner.decode
        from_sorted = Term.from_sorted
        return SymbolicExpression([
            from_sorted(decode(mono), power, coefficient * scale)
            for mono, power, coefficient in internal_terms
        ])

    @property
    def memoized_minors(self):
        """Number of distinct structural minors held by the memo."""
        return len(self._memo)


class _PhaseRecorder:
    """Context manager recording hit/miss deltas into ``stats.phases``."""

    def __init__(self, engine: DeterminantEngine, label: str):
        self._engine = engine
        self._label = label

    def __enter__(self):
        stats = self._engine.stats
        self._hits = stats.minor_hits
        self._misses = stats.minor_misses
        return self

    def __exit__(self, exc_type, exc, tb):
        stats = self._engine.stats
        stats.phases[self._label] = (stats.minor_hits - self._hits,
                                     stats.minor_misses - self._misses)
        return False


# ---------------------------------------------------------------------- #
# vectorized term valuation
# ---------------------------------------------------------------------- #


class TermValuation:
    """Bulk design-point valuation of a term list over one symbol table.

    Terms are grouped by degree; each group becomes a dense
    ``terms×(1+degree)`` incidence of factor logs (the leading column is
    ``log10 |coefficient|``, the rest the symbol logs in sorted-symbol order)
    folded column by column — vectorized across terms, but with exactly the
    left-to-right accumulation order of :meth:`Term.value`, so the
    :class:`~repro.xfloat.XFloat` values materialized from the result are
    bit-identical to the scalar path.
    """

    __slots__ = ("terms", "logs", "signs", "_values", "_order", "_total")

    def __init__(self, terms: Sequence[Term], table: Dict[str, object]):
        self.terms = list(terms)
        count = len(self.terms)
        self._values: List[Optional[XFloat]] = [None] * count
        self._order: Optional[List[int]] = None
        self._total: Optional[XFloat] = None
        self.logs = np.empty(count)
        self.signs = np.empty(count)
        if count == 0:
            return

        symbol_logs: Dict[str, float] = {}
        symbol_signs: Dict[str, float] = {}
        total_factors = sum(len(term.symbols) for term in self.terms)
        # Precompute the whole table only when the term list touches a
        # comparable number of factors; a tiny valuation (one coefficient of
        # a small expression) resolves just the symbols it names.
        precomputed = total_factors >= len(table)
        if precomputed:
            for name, symbol in table.items():
                value = symbol.value
                if value == 0.0:
                    symbol_logs[name] = -math.inf
                    symbol_signs[name] = 0.0
                else:
                    symbol_logs[name] = math.log10(abs(value))
                    symbol_signs[name] = 1.0 if value > 0.0 else -1.0

        coefficient_logs: Dict[float, float] = {0.0: -math.inf}
        coefficient_signs: Dict[float, float] = {0.0: 0.0}

        def coefficient_log(coefficient):
            log = coefficient_logs.get(coefficient)
            if log is None:
                log = math.log10(abs(coefficient))
                coefficient_logs[coefficient] = log
                coefficient_signs[coefficient] = (1.0 if coefficient > 0.0
                                                  else -1.0)
            return log

        by_degree: Dict[int, List[int]] = {}
        for index, term in enumerate(self.terms):
            by_degree.setdefault(len(term.symbols), []).append(index)

        terms_list = self.terms
        for degree, indices in by_degree.items():
            group = [terms_list[index] for index in indices]
            coeff_logs = np.asarray([coefficient_log(term.coefficient)
                                     for term in group])
            coeff_signs = np.asarray([coefficient_signs[term.coefficient]
                                      for term in group])
            if degree == 0:
                self.logs[indices] = coeff_logs
                self.signs[indices] = coeff_signs
                continue
            if precomputed:
                try:
                    flat = [symbol_logs[name]
                            for term in group for name in term.symbols]
                    sign_flat = [symbol_signs[name]
                                 for term in group for name in term.symbols]
                except KeyError as exc:
                    raise SymbolicError(
                        f"symbol {exc.args[0]!r} missing from the table") \
                        from exc
            else:
                flat = []
                sign_flat = []
                for term in group:
                    for name in term.symbols:
                        log = symbol_logs.get(name)
                        if log is None:
                            symbol = table.get(name)
                            if symbol is None:
                                raise SymbolicError(
                                    f"symbol {name!r} missing from the table")
                            value = symbol.value
                            if value == 0.0:
                                log = -math.inf
                                symbol_signs[name] = 0.0
                            else:
                                log = math.log10(abs(value))
                                symbol_signs[name] = (1.0 if value > 0.0
                                                      else -1.0)
                            symbol_logs[name] = log
                        flat.append(log)
                        sign_flat.append(symbol_signs[name])
            block = np.asarray(flat).reshape(len(group), degree)
            # Left-to-right column fold: the same accumulation order as the
            # scalar Term.value loop, vectorized across the group.
            accumulated = coeff_logs
            for column in range(degree):
                accumulated = accumulated + block[:, column]
            self.logs[indices] = accumulated
            self.signs[indices] = coeff_signs * np.prod(
                np.asarray(sign_flat).reshape(len(group), degree), axis=1)
        # Zero factors force the whole term to zero, matching Term.value.
        zero = self.signs == 0.0
        if zero.any():
            self.logs = np.where(zero, -math.inf, self.logs)

    def __len__(self):
        return len(self.terms)

    def is_zero(self, index: int) -> bool:
        """True when term ``index`` has design-point value zero."""
        return self.signs[index] == 0.0

    def value(self, index: int) -> XFloat:
        """The term's value as an :class:`XFloat` (bit-equal to Term.value)."""
        cached = self._values[index]
        if cached is None:
            sign = self.signs[index]
            log = float(self.logs[index])
            if sign == 0.0 or not math.isfinite(log):
                cached = XFloat.zero()
            else:
                # Same float operations as XFloat.from_log10, minus the
                # renormalization pass (10**frac is already in [1, 10)).
                exponent = int(math.floor(log))
                mantissa = 10.0 ** (log - exponent)
                if sign < 0:
                    mantissa = -mantissa
                cached = XFloat._raw(mantissa, exponent)
            self._values[index] = cached
        return cached

    def values(self) -> List[XFloat]:
        """All term values, in term order."""
        return [self.value(i) for i in range(len(self.terms))]

    def order(self) -> List[int]:
        """Indices by decreasing design-point magnitude.

        Ties (exactly equal log magnitudes, e.g. symmetric element values)
        break deterministically on ``(s_power, symbols)`` so the selection is
        independent of the term-generation order — legacy and interned
        expansions produce identical kept-term sets.  (The scalar benchmark
        arm keys on the XFloat mantissa's roundtripped ``log10`` instead of
        the raw folded sum; magnitudes ~1 ulp apart could in principle order
        differently there, but both orderings are deterministic for fixed
        inputs, so the A/B workloads either always agree — as asserted — or
        fail loudly, never flake.)
        """
        if self._order is None:
            logs = self.logs
            terms = self.terms
            order = np.argsort(-logs, kind="stable")
            # Repair exact-magnitude tie runs (rare: symmetric values) with
            # the deterministic (s_power, symbols) key.
            sorted_logs = logs[order]
            ties = np.nonzero(sorted_logs[1:] == sorted_logs[:-1])[0]
            if len(ties):
                order = list(order)
                start = None
                tie_set = set(ties)
                for position in range(len(order)):
                    if position in tie_set:
                        if start is None:
                            start = position
                    elif start is not None:
                        run = order[start:position + 1]
                        run.sort(key=lambda i: (terms[i].s_power,
                                                terms[i].symbols))
                        order[start:position + 1] = run
                        start = None
                self._order = [int(i) for i in order]
            else:
                self._order = order.tolist()
        return self._order

    def total(self) -> XFloat:
        """Sum of every term value, accumulated in term order.

        The accumulation order matches the legacy per-term loop, so totals
        are bit-identical to summing ``Term.value`` results sequentially.
        """
        if self._total is None:
            total = XFloat.zero()
            for index in range(len(self.terms)):
                if self.signs[index] != 0.0:
                    total = total + self.value(index)
            self._total = total
        return self._total


def sum_term_values(terms: Sequence[Term], table: Dict[str, object]) -> XFloat:
    """Design-point sum of a term list (vectorized log pass, exact order)."""
    return TermValuation(terms, table).total()
