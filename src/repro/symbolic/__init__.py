"""Symbolic analysis consumers of the numerical reference (SAG / SDG / SBG).

The whole point of the paper's reference generator is to provide the
comparison values required by approximation-based symbolic analysis:

* **SAG** (simplification after generation) — generate the complete symbolic
  expression, then prune the terms that contribute less than the allowed error
  to each coefficient (the reference supplies the coefficient totals),
* **SDG** (simplification during generation) — accumulate terms of each
  coefficient in decreasing order of magnitude and stop as soon as Eq. (3)
  ``|h_k(x0) - Σ h_kl(x0)| < ε_k |h_k(x0)|`` is satisfied,
* **SBG** (simplification before generation) — remove the circuit elements
  whose influence on the network function (measured against the reference) is
  negligible, then analyse the much smaller circuit.

The symbolic engine itself (symbols, sum-of-products terms, sparse symbolic
determinants of the nodal matrix) lives here too; it is exact but exponential,
so it is meant for the small-to-medium circuits on which symbolic expressions
are useful — exactly the setting of the original SAG/SDG literature.
"""

from .symbols import CircuitSymbol, build_symbol_table
from .terms import Term, SymbolicExpression
from .matrix import SymbolicNodal, build_symbolic_nodal
from .determinant import symbolic_determinant
from .kernel import (DeterminantEngine, EngineStats, SymbolInterner,
                     TermValuation, sum_term_values)
from .generation import SymbolicTransferFunction, symbolic_network_function, simplify_after_generation
from .compile import CompiledTransferModel, compile_transfer_model
from .sdg import SDGResult, simplification_during_generation
from .sbg import SBGResult, simplification_before_generation

__all__ = [
    "CircuitSymbol",
    "build_symbol_table",
    "Term",
    "SymbolicExpression",
    "SymbolicNodal",
    "build_symbolic_nodal",
    "symbolic_determinant",
    "DeterminantEngine",
    "EngineStats",
    "SymbolInterner",
    "TermValuation",
    "sum_term_values",
    "SymbolicTransferFunction",
    "symbolic_network_function",
    "simplify_after_generation",
    "CompiledTransferModel",
    "compile_transfer_model",
    "SDGResult",
    "simplification_during_generation",
    "SBGResult",
    "simplification_before_generation",
]
