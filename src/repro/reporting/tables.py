"""Plain-text table rendering in the paper's layouts."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..xfloat import XFloat

__all__ = [
    "format_table1",
    "format_adaptive_iterations",
    "format_coefficient_table",
    "format_bode_comparison",
    "format_sweep_report",
]


def _complex_cell(value) -> str:
    value = complex(value)
    return f"{value.real:+.4e} {value.imag:+.1e}j"


def format_table1(result) -> str:
    """Render the Table 1 reproduction (unscaled vs scaled OTA coefficients)."""
    lines = [
        "Table 1 — OTA differential gain coefficients",
        f"  (a) interpolation points on the unit circle, no scaling; "
        f"(b) frequency scale factor {result.frequency_scale:g}",
        f"{'s^i':>5} | {'(a) numerator':>26} | {'(a) denominator':>26} | "
        f"{'(b) numerator':>26} | {'(b) denominator':>26}",
    ]
    unscaled_n = result.unscaled_numerator.normalized_complex()
    unscaled_d = result.unscaled_denominator.normalized_complex()
    scaled_n = result.scaled_numerator.normalized_complex()
    scaled_d = result.scaled_denominator.normalized_complex()
    for power in range(result.degree_bound + 1):
        marker_a = "*" if (result.unscaled_denominator.region is not None
                           and result.unscaled_denominator.region.contains(power)) else " "
        marker_b = "*" if (result.scaled_denominator.region is not None
                           and result.scaled_denominator.region.contains(power)) else " "
        lines.append(
            f"{power:>5} | {_complex_cell(unscaled_n[power]):>26} | "
            f"{_complex_cell(unscaled_d[power]):>25}{marker_a} | "
            f"{_complex_cell(scaled_n[power]):>26} | "
            f"{_complex_cell(scaled_d[power]):>25}{marker_b}"
        )
    lines.append("  (* = inside the valid region of the denominator)")
    return "\n".join(lines)


def format_adaptive_iterations(adaptive_result) -> str:
    """Render the Tables 2–3 style iteration sequence of an adaptive run."""
    lines = [
        f"adaptive scaling for the {adaptive_result.kind} "
        f"(degree bound {adaptive_result.degree_bound})",
        f"{'iter':>4} | {'direction':>9} | {'K':>4} | {'valid region':>14} | "
        f"{'new':>4} | {'f':>11} | {'g':>11} | {'time [s]':>8}",
    ]
    for record in adaptive_result.iterations:
        region = ("—" if record.region_start is None
                  else f"[{record.region_start}..{record.region_end}]")
        lines.append(
            f"{record.index:>4} | {record.direction:>9} | {record.num_points:>4} | "
            f"{region:>14} | {len(record.new_indices):>4} | "
            f"{record.factors.frequency:>11.4g} | "
            f"{record.factors.conductance:>11.4g} | "
            f"{record.elapsed_seconds:>8.3f}"
        )
    return "\n".join(lines)


def format_coefficient_table(coefficients: Sequence[XFloat], kind="denominator",
                             status: Optional[Sequence[str]] = None,
                             max_rows: Optional[int] = None) -> str:
    """Render denormalized coefficients (one row per power of ``s``)."""
    lines = [f"{kind} coefficients", f"{'s^i':>5} | {'coefficient':>16} | status"]
    count = len(coefficients) if max_rows is None else min(len(coefficients), max_rows)
    for power in range(count):
        value = coefficients[power]
        label = "" if status is None else status[power]
        cell = "0" if value.is_zero() else value.format()
        lines.append(f"{power:>5} | {cell:>16} | {label}")
    if max_rows is not None and len(coefficients) > max_rows:
        lines.append(f"  … ({len(coefficients) - max_rows} more rows)")
    return "\n".join(lines)


def format_bode_comparison(fig2_result, rows=12) -> str:
    """Render the Fig. 2 overlay as a table of magnitudes / phases."""
    frequencies = fig2_result.frequencies
    interp_mag, sim_mag = fig2_result.magnitude_db()
    interp_phase = np.degrees(np.unwrap(np.angle(fig2_result.interpolated_response)))
    sim_phase = np.degrees(np.unwrap(np.angle(fig2_result.simulated_response)))
    indices = np.linspace(0, len(frequencies) - 1, rows).astype(int)
    lines = [
        "Fig. 2 — µA741 voltage gain: interpolated coefficients vs electrical simulator",
        f"{'f [Hz]':>12} | {'interp [dB]':>12} | {'simul [dB]':>12} | "
        f"{'interp [deg]':>13} | {'simul [deg]':>13}",
    ]
    for index in indices:
        lines.append(
            f"{frequencies[index]:>12.4g} | {interp_mag[index]:>12.3f} | "
            f"{sim_mag[index]:>12.3f} | {interp_phase[index]:>13.2f} | "
            f"{sim_phase[index]:>13.2f}"
        )
    lines.append("  " + fig2_result.comparison.summary())
    return "\n".join(lines)


def format_sweep_report(report, max_rows=20) -> str:
    """Render a resilience :class:`~repro.engine.resilience.SweepReport`.

    One header line (the report's own :meth:`summary`), the accepted-stage
    histogram, then one row per recovery / quarantined failure naming the
    index, the accepted or last stage, and the reason.
    """
    lines = [report.summary()]
    stages = " ".join(f"{stage}={count}"
                      for stage, count in report.stage_counts.items())
    lines.append(f"  accepted per stage: {stages}")
    rows = []
    for record in report.recoveries:
        condition = ("—" if record.condition is None
                     else f"{record.condition:.2e}")
        rows.append(f"{record.index:>6} | {'recovered':>11} | "
                    f"{record.stage:>11} | residual {record.residual:.2e}, "
                    f"condition {condition}")
    for record in report.failures:
        rows.append(f"{record.index:>6} | {'quarantined':>11} | "
                    f"{'—':>11} | {record.reason}")
    for index, condition in report.degraded:
        rows.append(f"{index:>6} | {'degraded':>11} | {'—':>11} | "
                    f"condition estimate {condition:.2e} over limit")
    if rows:
        lines.append(f"{report.kind:>6} | {'outcome':>11} | "
                     f"{'stage':>11} | detail")
        lines.extend(rows[:max_rows])
        if len(rows) > max_rows:
            lines.append(f"  … ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)
